//! `shears` — the command-line face of the latency-shears reproduction.
//!
//! ```text
//! shears headline [--probes N] [--rounds N]   headline numbers vs the paper
//! shears country CC [CC...]                   per-country reachability report
//! shears trace CC                             traceroute a country's probe to its nearest region
//! shears serve [--addr HOST:PORT]             run the Atlas-style HTTP API
//! shears dataset OUT_DIR                      export a campaign dataset (JSONL + metadata)
//! ```
//!
//! Argument parsing is hand-rolled: the surface is five subcommands and
//! three flags, which does not justify a dependency.

use std::process::ExitCode;

use latency_shears::analysis::headline::headline_numbers;
use latency_shears::analysis::report::{ms, pct, Table};
use latency_shears::analysis::stats::Summary;
use latency_shears::api::{ApiServer, AtlasService};
use latency_shears::netsim::queue::DiurnalLoad;
use latency_shears::netsim::stochastic::SimRng;
use latency_shears::netsim::TracerouteProber;
use latency_shears::prelude::*;

struct Options {
    probes: usize,
    rounds: u32,
    addr: String,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        probes: 800,
        rounds: 12,
        addr: "127.0.0.1:8780".to_string(),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--probes" => {
                opts.probes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--probes needs an integer")?;
            }
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--rounds needs an integer")?;
            }
            "--addr" => {
                opts.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            positional => opts.positional.push(positional.to_string()),
        }
    }
    Ok(opts)
}

fn build(opts: &Options) -> Platform {
    eprintln!("building platform ({} probes)...", opts.probes);
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: opts.probes,
            seed: 42,
        },
        ..PlatformConfig::default()
    })
}

fn run_campaign(platform: &Platform, opts: &Options) -> ResultStore {
    eprintln!("running campaign ({} rounds)...", opts.rounds);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    Campaign::new(
        platform,
        CampaignConfig {
            rounds: opts.rounds,
            ..CampaignConfig::paper_scale()
        },
    )
    .run_parallel(threads)
    .expect("default configs carry unlimited credits")
}

fn cmd_headline(opts: &Options) -> ExitCode {
    let platform = build(opts);
    let store = run_campaign(&platform, opts);
    let data = CampaignData::new(&platform, &store);
    let h = headline_numbers(&data);
    let mut t = Table::new(vec!["statistic", "paper", "measured"]);
    t.row(vec!["countries < 10 ms".into(), "32".into(), h.countries_under_10ms.to_string()]);
    t.row(vec!["countries 10-20 ms".into(), "21".into(), h.countries_10_to_20ms.to_string()]);
    t.row(vec!["countries above PL".into(), "16".into(), h.countries_above_pl.to_string()]);
    t.row(vec!["EU within MTP".into(), "~80%".into(), pct(h.eu_probes_within_mtp)]);
    t.row(vec!["NA within MTP".into(), "~80%".into(), pct(h.na_probes_within_mtp)]);
    t.row(vec!["Africa within PL".into(), "~75%".into(), pct(h.africa_within_pl)]);
    t.row(vec![
        "wireless/wired".into(),
        "~2.5x".into(),
        h.wireless_ratio.map(|r| format!("{r:.2}x")).unwrap_or_else(|| "-".into()),
    ]);
    print!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_country(opts: &Options) -> ExitCode {
    if opts.positional.is_empty() {
        eprintln!("usage: shears country CC [CC...]");
        return ExitCode::FAILURE;
    }
    let platform = build(opts);
    let store = run_campaign(&platform, opts);
    let data = CampaignData::new(&platform, &store);
    for code in &opts.positional {
        let code = code.to_uppercase();
        let Some(country) = platform.countries().by_code(&code) else {
            eprintln!("unknown country code {code}");
            continue;
        };
        let rtts: Vec<f64> = data
            .filtered_responded()
            .filter(|(p, _)| p.country == code)
            .map(|(_, s)| f64::from(s.min_ms))
            .collect();
        match Summary::of(&rtts) {
            Some(s) => println!(
                "{} ({}): n={} min={} median={} p95={} — nearest region: {}",
                country.name,
                country.continent,
                s.n,
                ms(s.min),
                ms(s.median),
                ms(s.p95),
                platform
                    .catalog()
                    .nearest(country.centroid, 1)
                    .first()
                    .map(|r| r.label())
                    .unwrap_or_default(),
            ),
            None => println!("{}: no samples", country.name),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace(opts: &Options) -> ExitCode {
    let Some(code) = opts.positional.first().map(|c| c.to_uppercase()) else {
        eprintln!("usage: shears trace CC");
        return ExitCode::FAILURE;
    };
    let platform = build(opts);
    let Some(probe) = platform.probes().iter().find(|p| p.country == code && !p.is_privileged())
    else {
        eprintln!("no probe in {code}");
        return ExitCode::FAILURE;
    };
    let Some(&target) = platform.targets_for(probe, 1, 1).first() else {
        eprintln!("no reachable region for {code}");
        return ExitCode::FAILURE;
    };
    let region = platform.region(target as usize);
    println!(
        "traceroute from probe #{} ({}, {}) to {}:",
        probe.id.0,
        code,
        probe.access.tech.atlas_tag(),
        region.label()
    );
    let mut prober = TracerouteProber::new(platform.topology());
    let mut rng = SimRng::new(0x7ace);
    let Some(out) = prober.trace(
        platform.probe_node(probe.id),
        platform.dc_node(target as usize),
        Some(probe.access),
        DiurnalLoad::residential(),
        SimTime::from_hours(2),
        &mut rng,
    ) else {
        eprintln!("disconnected");
        return ExitCode::FAILURE;
    };
    for hop in &out.hops {
        println!(
            "  {:>2}  {:<14} {}",
            hop.ttl,
            format!("{:?}", hop.kind),
            hop.rtt_ms.map(ms).unwrap_or_else(|| "*".into())
        );
    }
    ExitCode::SUCCESS
}

fn cmd_serve(opts: &Options) -> ExitCode {
    let platform = build(opts);
    let server = match ApiServer::spawn(opts.addr.as_str(), AtlasService::new(platform)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("Atlas-style API listening on http://{}", server.local_addr());
    println!("endpoints: /api/v2/probes /api/v2/regions /api/v2/measurements /api/v2/traceroutes /api/v2/credits");
    println!("press Ctrl-C to stop.");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_dataset(opts: &Options) -> ExitCode {
    let Some(out_dir) = opts.positional.first() else {
        eprintln!("usage: shears dataset OUT_DIR");
        return ExitCode::FAILURE;
    };
    let platform = build(opts);
    let store = run_campaign(&platform, opts);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let path = std::path::Path::new(out_dir).join("samples.jsonl");
    if let Err(e) = std::fs::write(&path, store.to_jsonl()) {
        eprintln!("write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} samples to {}", store.len(), path.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!(
            "usage: shears <headline|country|trace|serve|dataset> [args]\n\
             flags: --probes N   fleet size (default 800)\n\
             \x20      --rounds N   campaign rounds (default 12)\n\
             \x20      --addr A     serve address (default 127.0.0.1:8780)"
        );
        return ExitCode::FAILURE;
    };
    let opts = match parse_args(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "headline" => cmd_headline(&opts),
        "country" => cmd_country(&opts),
        "trace" => cmd_trace(&opts),
        "serve" => cmd_serve(&opts),
        "dataset" => cmd_dataset(&opts),
        other => {
            eprintln!("unknown command {other}");
            ExitCode::FAILURE
        }
    }
}
