//! # latency-shears
//!
//! A full reproduction of *Pruning Edge Research with Latency Shears*
//! (Mohan et al., HotNets 2020) as a Rust workspace: a synthetic — but
//! carefully calibrated — RIPE-Atlas-style measurement platform over a
//! discrete-event Internet simulator, plus the paper's complete
//! analysis pipeline and every figure's regeneration harness.
//!
//! This crate is the facade: it re-exports the workspace crates under
//! stable names so applications can depend on one crate.
//!
//! ```
//! use latency_shears::prelude::*;
//!
//! // Build the world, run a small campaign, compute a headline number.
//! let platform = Platform::build(&PlatformConfig::quick(7));
//! let store = Campaign::new(&platform, CampaignConfig { rounds: 2, ..CampaignConfig::quick() })
//!     .run()
//!     .expect("enough credits");
//! let data = CampaignData::new(&platform, &store);
//! let fig4 = country_min_report(&data);
//! assert!(fig4.countries_measured() > 100);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`geo`] | `shears-geo` | geodesy, country atlas, spatial index |
//! | [`netsim`] | `shears-netsim` | event engine, topology, routing, ping/TCP |
//! | [`cloud`] | `shears-cloud` | the 101-region, 7-provider catalogue |
//! | [`atlas`] | `shears-atlas` | probes, tags, credits, campaign |
//! | [`api`] | `shears-api` | Atlas-style HTTP API (server + client) |
//! | [`dist`] | `shears-dist` | fault-tolerant distributed campaign execution |
//! | [`apps`] | `shears-apps` | application envelopes, quadrants, FZ |
//! | [`trends`] | `shears-trends` | Fig. 1 era series & changepoints |
//! | [`analysis`] | `shears-analysis` | the paper's analysis pipeline |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shears_analysis as analysis;
pub use shears_api as api;
pub use shears_apps as apps;
pub use shears_atlas as atlas;
pub use shears_cloud as cloud;
pub use shears_dist as dist;
pub use shears_geo as geo;
pub use shears_netsim as netsim;
pub use shears_trends as trends;

/// The names most applications need, in one import.
pub mod prelude {
    pub use shears_analysis::data::CampaignData;
    pub use shears_analysis::distribution::all_samples_cdfs;
    pub use shears_analysis::frame::CampaignFrame;
    pub use shears_analysis::headline::headline_numbers;
    pub use shears_analysis::lastmile::last_mile_report;
    pub use shears_analysis::proximity::{country_min_report, probe_min_cdfs};
    pub use shears_analysis::stats::{Ecdf, Summary};
    pub use shears_apps::{FeasibilityZone, Quadrant};
    pub use shears_atlas::{
        Campaign, CampaignConfig, CampaignError, DurabilityConfig, DurableOutcome, FleetBuilder,
        FleetConfig, JournalError, Platform, PlatformConfig, Probe, ProbeId, ResultStore,
        RetryPolicy, RttSample, TagFilter,
    };
    pub use shears_cloud::{Catalog, Provider, Region};
    pub use shears_geo::{Continent, Country, CountryAtlas, GeoPoint};
    pub use shears_netsim::{FaultConfig, FaultPlan, SimTime, Topology};
}
