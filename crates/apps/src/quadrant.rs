//! The quadrant grouping of §3.
//!
//! The paper divides Figure 2's plane into four quadrants at a latency
//! strictness boundary (the Perceivable Latency threshold — "the core
//! aim of applications in Q1 is … to operate within the PL threshold")
//! and a data-volume boundary of one GB per entity per day (the level
//! at which aggregation at the edge starts saving meaningful backhaul
//! bandwidth, §5).

use serde::{Deserialize, Serialize};

use crate::catalog::Application;
use crate::thresholds::PL_MS;

/// Data-volume boundary between "low" and "high" bandwidth demand,
/// GB per entity per day (§5: "we estimate 1GB/entity data generation
/// to be a fitting threshold").
pub const BANDWIDTH_BOUNDARY_GB_PER_DAY: f64 = 1.0;

/// The four quadrants of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// Strict latency, little data (wearables, health monitoring).
    Q1LowLatencyLowBandwidth,
    /// Strict latency, much data (AR/VR, autonomous vehicles, gaming) —
    /// "popularly heralded as the driving force behind edge computing".
    Q2LowLatencyHighBandwidth,
    /// Relaxed latency, much data (smart city): edge as pre-processor.
    Q3HighLatencyHighBandwidth,
    /// Relaxed latency, little data (smart home, weather monitoring):
    /// "do not offer compelling reasons for deploying edge servers".
    Q4HighLatencyLowBandwidth,
}

impl Quadrant {
    /// All quadrants in numbering order.
    pub const ALL: [Quadrant; 4] = [
        Quadrant::Q1LowLatencyLowBandwidth,
        Quadrant::Q2LowLatencyHighBandwidth,
        Quadrant::Q3HighLatencyHighBandwidth,
        Quadrant::Q4HighLatencyLowBandwidth,
    ];

    /// Short label ("Q1" … "Q4").
    pub fn label(self) -> &'static str {
        match self {
            Quadrant::Q1LowLatencyLowBandwidth => "Q1",
            Quadrant::Q2LowLatencyHighBandwidth => "Q2",
            Quadrant::Q3HighLatencyHighBandwidth => "Q3",
            Quadrant::Q4HighLatencyLowBandwidth => "Q4",
        }
    }

    /// Classifies an application by its envelope centres.
    pub fn classify(app: &Application) -> Quadrant {
        let strict_latency = app.latency_ms.center() <= PL_MS;
        let high_bandwidth = app.data_gb_per_day.center() >= BANDWIDTH_BOUNDARY_GB_PER_DAY;
        match (strict_latency, high_bandwidth) {
            (true, false) => Quadrant::Q1LowLatencyLowBandwidth,
            (true, true) => Quadrant::Q2LowLatencyHighBandwidth,
            (false, true) => Quadrant::Q3HighLatencyHighBandwidth,
            (false, false) => Quadrant::Q4HighLatencyLowBandwidth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::driving_applications;

    fn quadrant_of(name: &str) -> Quadrant {
        let apps = driving_applications();
        Quadrant::classify(apps.iter().find(|a| a.name == name).unwrap())
    }

    #[test]
    fn paper_examples_land_in_their_quadrants() {
        // §3's explicit placements.
        assert_eq!(quadrant_of("Wearables"), Quadrant::Q1LowLatencyLowBandwidth);
        assert_eq!(
            quadrant_of("Health monitoring"),
            Quadrant::Q1LowLatencyLowBandwidth
        );
        assert_eq!(
            quadrant_of("Autonomous vehicles"),
            Quadrant::Q2LowLatencyHighBandwidth
        );
        assert_eq!(quadrant_of("AR/VR"), Quadrant::Q2LowLatencyHighBandwidth);
        assert_eq!(
            quadrant_of("Cloud gaming"),
            Quadrant::Q2LowLatencyHighBandwidth
        );
        assert_eq!(
            quadrant_of("Smart city"),
            Quadrant::Q3HighLatencyHighBandwidth
        );
        assert_eq!(quadrant_of("Smart home"), Quadrant::Q4HighLatencyLowBandwidth);
        assert_eq!(
            quadrant_of("Weather monitoring"),
            Quadrant::Q4HighLatencyLowBandwidth
        );
    }

    #[test]
    fn every_quadrant_is_populated() {
        let apps = driving_applications();
        for q in Quadrant::ALL {
            assert!(
                apps.iter().any(|a| Quadrant::classify(a) == q),
                "{} empty",
                q.label()
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Quadrant::Q1LowLatencyLowBandwidth.label(), "Q1");
        assert_eq!(Quadrant::Q4HighLatencyLowBandwidth.label(), "Q4");
    }
}
