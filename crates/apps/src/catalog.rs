//! The driving-application catalogue (paper Figure 2).
//!
//! Requirement envelopes are drawn from the same published estimates
//! the paper cites (Bailey et al. for HUD latency, Kämäräinen et al.
//! for cloud gaming, Mangiante et al. for 360° VR, Sun et al. for
//! multi-tier streaming, Raaen et al. for perceivable delay), rounded
//! to order-of-magnitude envelopes exactly as the figure's ellipses do.
//! Market sizes are 2025 forecasts in billions of USD (Statista-era
//! numbers; they only drive the relative "market share" comparison).

use serde::{Deserialize, Serialize};

/// A log-space interval `[lo, hi]`; the geometric mean is the envelope's
/// centre (the ellipse midpoint in the figure's log-log plane).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Lower edge (inclusive).
    pub lo: f64,
    /// Upper edge (inclusive).
    pub hi: f64,
}

impl Envelope {
    /// Creates an envelope.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo <= hi, "invalid envelope [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Geometric centre (log-space midpoint).
    pub fn center(&self) -> f64 {
        (self.lo * self.hi).sqrt()
    }

    /// Width in decades (log10 hi − log10 lo); the figure's ellipse
    /// width, i.e. how *unstrict* the requirement is.
    pub fn decades(&self) -> f64 {
        (self.hi / self.lo).log10()
    }

    /// Whether the envelope intersects `[lo, hi]`.
    pub fn intersects(&self, lo: f64, hi: f64) -> bool {
        self.lo <= hi && lo <= self.hi
    }
}

/// A driving application of edge computing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Application {
    /// Display name.
    pub name: &'static str,
    /// End-to-end latency requirement envelope, ms. The centre is what
    /// the application *needs*; the width is how negotiable that is.
    pub latency_ms: Envelope,
    /// Data generated per entity (camera, car, sensor, headset…) per
    /// day, in GB.
    pub data_gb_per_day: Envelope,
    /// Forecast 2025 market size, billions of USD.
    pub market_2025_busd: f64,
    /// Whether the application is human-centric (takes user input and
    /// feeds back to human senses) — most of Figure 2 is.
    pub human_centric: bool,
    /// Fraction of raw per-entity data that still has to travel to the
    /// cloud after edge pre-processing/aggregation (1.0 = edge cannot
    /// reduce the stream, e.g. interactive rendering; 0.01 = edge
    /// forwards only events/metadata). Drives the bandwidth-savings
    /// study behind Figure 8's blue zone.
    pub edge_reduction: f64,
    /// Entities of this kind attached to one metro's aggregation uplink
    /// in a realistic dense deployment (cameras per city, households per
    /// metro, vehicles in motion, …). Sets the aggregate load in the
    /// bandwidth study.
    pub entities_per_metro: f64,
}

/// Row type of the embedded application table: name, latency lo..hi
/// (ms), data lo..hi (GB/day), market (B$), human-centric, edge
/// reduction factor, entities per metro.
type AppRow = (&'static str, f64, f64, f64, f64, f64, bool, f64, f64);

/// The catalogue behind Figure 2.
pub fn driving_applications() -> Vec<Application> {
    let rows: &[AppRow] = &[
        ("AR/VR", 2.5, 20.0, 5.0, 50.0, 160.0, true, 0.9, 5e4),
        ("360-degree streaming", 10.0, 50.0, 10.0, 100.0, 25.0, true, 0.3, 5e4),
        ("Cloud gaming", 40.0, 100.0, 2.0, 20.0, 8.0, true, 1.0, 1e5),
        ("Autonomous vehicles", 1.0, 10.0, 100.0, 5000.0, 60.0, false, 0.01, 2e5),
        ("Teleoperated driving", 10.0, 100.0, 5.0, 50.0, 30.0, true, 0.8, 5e3),
        ("Remote surgery", 100.0, 250.0, 0.2, 2.0, 5.0, true, 1.0, 1e2),
        ("Industrial automation", 1.0, 10.0, 0.1, 1.0, 100.0, false, 0.05, 5e4),
        ("Traffic camera monitoring", 50.0, 250.0, 20.0, 500.0, 30.0, false, 0.02, 2e4),
        ("Drone control", 10.0, 100.0, 1.0, 10.0, 30.0, true, 0.2, 2e3),
        ("Smart city", 1e3, 3.6e6, 1.0, 100.0, 90.0, false, 0.05, 2e5),
        ("Smart parking", 6e4, 3.6e6, 0.001, 0.1, 5.0, false, 0.1, 5e4),
        ("Smart home", 1e3, 6e4, 0.01, 1.0, 80.0, true, 0.2, 5e5),
        ("Smart grid", 100.0, 1e4, 0.1, 1.0, 60.0, false, 0.1, 5e5),
        ("Wearables", 20.0, 100.0, 0.001, 0.1, 70.0, true, 0.5, 1e6),
        ("Health monitoring", 40.0, 200.0, 0.01, 0.5, 30.0, true, 0.3, 2e5),
        ("Weather monitoring", 6e4, 3.6e6, 0.001, 0.01, 3.0, false, 0.2, 1e3),
    ];
    rows.iter()
        .map(
            |&(name, l_lo, l_hi, d_lo, d_hi, market, human, edge_reduction, entities)| {
                Application {
                    name,
                    latency_ms: Envelope::new(l_lo, l_hi),
                    data_gb_per_day: Envelope::new(d_lo, d_hi),
                    market_2025_busd: market,
                    human_centric: human,
                    edge_reduction,
                    entities_per_metro: entities,
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thresholds::{HRT_MS, MTP_MS, PL_MS};

    #[test]
    fn catalogue_has_the_papers_spread() {
        let apps = driving_applications();
        assert!(apps.len() >= 14, "{}", apps.len());
        // Names unique.
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), apps.len());
        // Latency scale spans ms to an hour, as the figure's y-axis does.
        let min = apps.iter().map(|a| a.latency_ms.lo).fold(f64::MAX, f64::min);
        let max = apps.iter().map(|a| a.latency_ms.hi).fold(0.0, f64::max);
        assert!(min <= 2.5 && max >= 3.6e6, "span {min}..{max}");
    }

    #[test]
    fn majority_is_human_centric() {
        // §3: "Majority applications in Figure 2 are human-centric".
        let apps = driving_applications();
        let human = apps.iter().filter(|a| a.human_centric).count();
        assert!(human * 2 > apps.len());
    }

    #[test]
    fn immersive_apps_sit_at_or_below_mtp() {
        let apps = driving_applications();
        let arvr = apps.iter().find(|a| a.name == "AR/VR").unwrap();
        assert!(arvr.latency_ms.hi <= MTP_MS);
        assert!(arvr.latency_ms.lo <= 2.5, "NASA HUD bound included");
    }

    #[test]
    fn gaming_is_within_pl_and_surgery_within_hrt() {
        let apps = driving_applications();
        let gaming = apps.iter().find(|a| a.name == "Cloud gaming").unwrap();
        assert!(gaming.latency_ms.hi <= PL_MS);
        let surgery = apps.iter().find(|a| a.name == "Remote surgery").unwrap();
        assert!(surgery.latency_ms.hi <= HRT_MS);
    }

    #[test]
    fn envelope_math() {
        let e = Envelope::new(10.0, 1000.0);
        assert!((e.center() - 100.0).abs() < 1e-9);
        assert!((e.decades() - 2.0).abs() < 1e-12);
        assert!(e.intersects(500.0, 2000.0));
        assert!(!e.intersects(2000.0, 3000.0));
        assert!(e.intersects(1000.0, 1000.0), "boundary touch counts");
    }

    #[test]
    #[should_panic(expected = "invalid envelope")]
    fn envelope_rejects_inverted_bounds() {
        let _ = Envelope::new(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid envelope")]
    fn envelope_rejects_nonpositive() {
        let _ = Envelope::new(0.0, 1.0);
    }
}
