//! Human-perception latency thresholds (paper §3).
//!
//! These three constants structure every latency argument in the paper:
//! an application is edge-compelling only if its budget falls between
//! what wireless access physically allows and what the cloud already
//! delivers.

/// Motion-to-Photon: total input-to-display budget for immersive
/// applications (AR/VR, 360° streaming), ms. Exceeding it causes motion
/// sickness.
pub const MTP_MS: f64 = 20.0;

/// Of the MTP budget, display technology (refresh, pixel switching)
/// consumes about 13 ms…
pub const MTP_DISPLAY_MS: f64 = 13.0;

/// …leaving ≈7 ms for computing and rendering, *including the RTT to
/// the server*.
pub const MTP_COMPUTE_BUDGET_MS: f64 = MTP_MS - MTP_DISPLAY_MS;

/// NASA head-up-display studies put the compute part of MTP as low as
/// 2.5 ms for the most demanding systems.
pub const MTP_HUD_MS: f64 = 2.5;

/// Perceivable Latency: when delay between input and visual feedback
/// becomes visible (video stutter, gaming input lag), ms.
pub const PL_MS: f64 = 100.0;

/// Human Reaction Time: stimulus-to-motor-response delay; the budget
/// for applications with a human in the loop (teleoperation, remote
/// surgery), ms.
pub const HRT_MS: f64 = 250.0;

/// Classifies an RTT against the three thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdClass {
    /// Below MTP: supports even immersive applications.
    WithinMtp,
    /// Between MTP and PL: interactive but not immersive.
    WithinPl,
    /// Between PL and HRT: human-in-the-loop only.
    WithinHrt,
    /// Above HRT: non-interactive workloads only.
    AboveHrt,
}

/// Classify a round-trip time in milliseconds.
pub fn classify_rtt(rtt_ms: f64) -> ThresholdClass {
    if rtt_ms <= MTP_MS {
        ThresholdClass::WithinMtp
    } else if rtt_ms <= PL_MS {
        ThresholdClass::WithinPl
    } else if rtt_ms <= HRT_MS {
        ThresholdClass::WithinHrt
    } else {
        ThresholdClass::AboveHrt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        // Read through locals so the relationships stay asserted even
        // if the constants become configurable later.
        let thresholds = [MTP_HUD_MS, MTP_COMPUTE_BUDGET_MS, MTP_MS, PL_MS, HRT_MS];
        assert!(thresholds.windows(2).all(|w| w[0] < w[1]), "{thresholds:?}");
    }

    #[test]
    fn compute_budget_is_seven_ms() {
        assert!((MTP_COMPUTE_BUDGET_MS - 7.0).abs() < 1e-12);
    }

    #[test]
    fn classification_boundaries_inclusive() {
        assert_eq!(classify_rtt(20.0), ThresholdClass::WithinMtp);
        assert_eq!(classify_rtt(20.1), ThresholdClass::WithinPl);
        assert_eq!(classify_rtt(100.0), ThresholdClass::WithinPl);
        assert_eq!(classify_rtt(250.0), ThresholdClass::WithinHrt);
        assert_eq!(classify_rtt(251.0), ThresholdClass::AboveHrt);
        assert_eq!(classify_rtt(0.0), ThresholdClass::WithinMtp);
    }
}
