//! The feasibility-zone analysis of §5 / Figure 8.
//!
//! Figure 8 overlays two measured "reality boundaries" on Figure 2:
//!
//! * **latency gain zone** — edge can only help applications whose
//!   requirement sits *between* the wireless last-mile floor (≈10 ms —
//!   below that not even an edge server at the basestation can deliver)
//!   and the human reaction time (above that the cloud already
//!   delivers, almost globally);
//! * **bandwidth gain zone** — aggregation at the edge only pays for
//!   entities generating at least ~1 GB/day.
//!
//! The intersection is the feasibility zone (FZ). The paper's punchline
//! is that the hyped drivers (AR/VR, autonomous vehicles, wearables,
//! smart city) all fall *outside* it, each for a different reason —
//! which is exactly what [`FeasibilityVerdict`] distinguishes.

use serde::{Deserialize, Serialize};

use crate::catalog::Application;
use crate::quadrant::BANDWIDTH_BOUNDARY_GB_PER_DAY;
use crate::thresholds::HRT_MS;

/// Why an application is (not) in the feasibility zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeasibilityVerdict {
    /// In the zone: edge offers both latency and bandwidth gains.
    InZone,
    /// Latency requirement below the wireless floor: "too stringent" —
    /// needs onboard processing (autonomous vehicles, AR/VR render
    /// loops).
    TooStringentLatency,
    /// Latency requirement above the cloud-served bound: "too relaxed" —
    /// the cloud already suffices (smart city).
    TooRelaxedLatency,
    /// Entity data volume too small for aggregation gains (wearables).
    InsufficientBandwidth,
}

impl FeasibilityVerdict {
    /// Whether the verdict is [`FeasibilityVerdict::InZone`].
    pub fn in_zone(self) -> bool {
        self == FeasibilityVerdict::InZone
    }

    /// The figure's annotation for the verdict.
    pub fn reason(self) -> &'static str {
        match self {
            FeasibilityVerdict::InZone => "in feasibility zone",
            FeasibilityVerdict::TooStringentLatency => "latency too stringent (below wireless floor)",
            FeasibilityVerdict::TooRelaxedLatency => "latency too relaxed (cloud suffices)",
            FeasibilityVerdict::InsufficientBandwidth => "too little data for aggregation gains",
        }
    }
}

/// The measured zone boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityZone {
    /// Lower latency bound, ms: the wireless last-mile floor.
    pub latency_floor_ms: f64,
    /// Upper latency bound, ms: what the cloud serves almost globally.
    pub latency_ceiling_ms: f64,
    /// Minimum per-entity daily data volume for bandwidth gains, GB.
    pub bandwidth_gain_gb_per_day: f64,
}

impl FeasibilityZone {
    /// The boundaries the paper states: 10 ms wireless floor, HRT
    /// ceiling, 1 GB/entity/day.
    pub fn paper_defaults() -> Self {
        Self {
            latency_floor_ms: 10.0,
            latency_ceiling_ms: HRT_MS,
            bandwidth_gain_gb_per_day: BANDWIDTH_BOUNDARY_GB_PER_DAY,
        }
    }

    /// Builds a zone from *measured* quantities: the observed wireless
    /// access floor (Fig. 7 analysis) and the RTT the cloud delivers to
    /// most of the world (Fig. 5/6 analysis; the paper uses HRT because
    /// the cloud meets it almost globally). Both inputs come out of the
    /// campaign's indexed frame via `headline_numbers`, so deriving the
    /// zone adds no extra store scan.
    pub fn from_measurements(wireless_floor_ms: f64, cloud_served_ms: f64) -> Self {
        Self {
            latency_floor_ms: wireless_floor_ms,
            latency_ceiling_ms: cloud_served_ms.min(HRT_MS),
            bandwidth_gain_gb_per_day: BANDWIDTH_BOUNDARY_GB_PER_DAY,
        }
    }

    /// Classifies an application by its envelope centre, in priority
    /// order: stringency first (nothing can fix physics), then
    /// relaxedness, then bandwidth.
    pub fn classify(&self, app: &Application) -> FeasibilityVerdict {
        let need = app.latency_ms.center();
        if need < self.latency_floor_ms {
            FeasibilityVerdict::TooStringentLatency
        } else if need > self.latency_ceiling_ms {
            FeasibilityVerdict::TooRelaxedLatency
        } else if app.data_gb_per_day.center() < self.bandwidth_gain_gb_per_day {
            FeasibilityVerdict::InsufficientBandwidth
        } else {
            FeasibilityVerdict::InZone
        }
    }

    /// Total 2025 market (B$) inside and outside the zone — the paper's
    /// "the predicted market share of applications within the edge FZ
    /// pales compared to those for which edge does not provide much
    /// benefit".
    pub fn market_split(&self, apps: &[Application]) -> (f64, f64) {
        apps.iter().fold((0.0, 0.0), |(inside, outside), a| {
            if self.classify(a).in_zone() {
                (inside + a.market_2025_busd, outside)
            } else {
                (inside, outside + a.market_2025_busd)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::driving_applications;

    fn verdict(name: &str) -> FeasibilityVerdict {
        let apps = driving_applications();
        FeasibilityZone::paper_defaults()
            .classify(apps.iter().find(|a| a.name == name).unwrap())
    }

    #[test]
    fn papers_fz_members() {
        // §5: "Applications in this zone, e.g., traffic camera
        // monitoring, cloud gaming, etc., clearly benefit".
        assert!(verdict("Traffic camera monitoring").in_zone());
        assert!(verdict("Cloud gaming").in_zone());
    }

    #[test]
    fn papers_exclusions_with_reasons() {
        assert_eq!(
            verdict("Autonomous vehicles"),
            FeasibilityVerdict::TooStringentLatency
        );
        assert_eq!(verdict("AR/VR"), FeasibilityVerdict::TooStringentLatency);
        assert_eq!(verdict("Smart city"), FeasibilityVerdict::TooRelaxedLatency);
        assert_eq!(
            verdict("Wearables"),
            FeasibilityVerdict::InsufficientBandwidth
        );
        assert_eq!(
            verdict("Smart home"),
            FeasibilityVerdict::TooRelaxedLatency
        );
    }

    #[test]
    fn fz_market_pales_against_outside() {
        let apps = driving_applications();
        let (inside, outside) = FeasibilityZone::paper_defaults().market_split(&apps);
        assert!(inside > 0.0);
        assert!(
            outside > 3.0 * inside,
            "inside {inside} B$, outside {outside} B$"
        );
    }

    #[test]
    fn widening_the_floor_admits_stringent_apps() {
        // With an edge delivering 2 ms access (the 5G promise), AR/VR's
        // envelope centre (~7 ms) enters the zone.
        let zone = FeasibilityZone {
            latency_floor_ms: 2.0,
            ..FeasibilityZone::paper_defaults()
        };
        let apps = driving_applications();
        let arvr = apps.iter().find(|a| a.name == "AR/VR").unwrap();
        assert!(zone.classify(arvr).in_zone());
    }

    #[test]
    fn from_measurements_caps_ceiling_at_hrt() {
        let z = FeasibilityZone::from_measurements(12.0, 400.0);
        assert_eq!(z.latency_ceiling_ms, HRT_MS);
        assert_eq!(z.latency_floor_ms, 12.0);
    }

    #[test]
    fn verdict_reasons_are_informative() {
        for v in [
            FeasibilityVerdict::InZone,
            FeasibilityVerdict::TooStringentLatency,
            FeasibilityVerdict::TooRelaxedLatency,
            FeasibilityVerdict::InsufficientBandwidth,
        ] {
            assert!(!v.reason().is_empty());
        }
    }
}
