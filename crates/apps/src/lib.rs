//! # shears-apps
//!
//! The application-requirement model behind the paper's Figure 2
//! ("Drivers of the edge hype") and Figure 8 ("feasibility zones").
//!
//! Each driving application is an ellipse in the (data-volume, latency)
//! plane — log-space envelopes rather than points, "to overcompensate
//! for any estimation errors" — coloured by its forecast 2025 market
//! size. The module provides:
//!
//! * the human-perception latency thresholds (§3: MTP, PL, HRT) as
//!   constants with their compute budgets ([`thresholds`]),
//! * the application catalogue ([`catalog`]),
//! * the quadrant classification of §3 ([`quadrant`]),
//! * the feasibility-zone test of §5 ([`feasibility`]), parameterised by
//!   *measured* boundaries so the analysis pipeline can feed in what the
//!   campaign actually observed.
//!
//! ```
//! use shears_apps::{catalog, feasibility::FeasibilityZone, quadrant::Quadrant};
//!
//! let apps = catalog::driving_applications();
//! let zone = FeasibilityZone::paper_defaults();
//! let gaming = apps.iter().find(|a| a.name == "Cloud gaming").unwrap();
//! assert_eq!(Quadrant::classify(gaming), Quadrant::Q2LowLatencyHighBandwidth);
//! assert!(zone.classify(gaming).in_zone());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod feasibility;
pub mod quadrant;
pub mod thresholds;

pub use catalog::{Application, Envelope};
pub use feasibility::{FeasibilityVerdict, FeasibilityZone};
pub use quadrant::Quadrant;
