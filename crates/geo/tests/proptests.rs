//! Property-based tests for the geodesy primitives.

use proptest::prelude::*;
use shears_geo::{min_rtt_ms, GeoPoint, SpatialGrid, EARTH_RADIUS_KM};

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_symmetric(a in arb_point(), b in arb_point()) {
        let d1 = a.distance_km(b);
        let d2 = b.distance_km(a);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn distance_nonnegative_and_bounded(a in arb_point(), b in arb_point()) {
        let d = a.distance_km(b);
        prop_assert!(d >= 0.0);
        // No two surface points are farther apart than half the circumference.
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance_km(b);
        let bc = b.distance_km(c);
        let ac = a.distance_km(c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn destination_reaches_requested_distance(
        a in arb_point(),
        bearing in 0.0f64..360.0,
        dist in 0.0f64..15_000.0,
    ) {
        // Skip starts inside the polar caps where bearing is ill-conditioned.
        prop_assume!(a.lat.abs() < 89.0);
        let end = a.destination(bearing, dist);
        let back = a.distance_km(end);
        prop_assert!((back - dist).abs() < 1e-3 * dist.max(1.0), "want {dist} got {back}");
    }

    #[test]
    fn min_rtt_monotone_in_distance(a in arb_point(), b in arb_point(), c in arb_point()) {
        let (d_ab, d_ac) = (a.distance_km(b), a.distance_km(c));
        let (r_ab, r_ac) = (min_rtt_ms(a, b), min_rtt_ms(a, c));
        prop_assert_eq!(d_ab < d_ac, r_ab < r_ac);
    }

    #[test]
    fn canonical_form_is_idempotent(lat in -200.0f64..200.0, lon in -720.0f64..720.0) {
        let p = GeoPoint::new(lat, lon);
        let q = GeoPoint::new(p.lat, p.lon);
        prop_assert_eq!(p, q);
    }

    #[test]
    fn grid_nearest_matches_brute_force(
        pts in proptest::collection::vec(arb_point(), 1..80),
        q in arb_point(),
    ) {
        let mut grid = SpatialGrid::new(5.0);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(*p, i);
        }
        let got = grid.nearest(q).expect("non-empty grid");
        let best = pts
            .iter()
            .map(|p| q.distance_km(*p))
            .fold(f64::INFINITY, f64::min);
        let got_d = q.distance_km(got.point);
        prop_assert!((got_d - best).abs() < 1e-9, "grid {got_d} brute {best}");
    }

    #[test]
    fn grid_within_is_exact(
        pts in proptest::collection::vec(arb_point(), 0..60),
        q in arb_point(),
        radius in 1.0f64..8000.0,
    ) {
        let mut grid = SpatialGrid::new(5.0);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(*p, i);
        }
        let got: std::collections::BTreeSet<usize> =
            grid.within(q, radius).into_iter().map(|(_, e)| e.id).collect();
        let want: std::collections::BTreeSet<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.distance_km(**p) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }
}
