//! A latitude/longitude bucket grid for nearest-neighbour queries.
//!
//! The topology builder needs two queries, both answered here:
//! "which metro PoP is closest to this probe?" and "which datacenters are
//! within R km of this point?". With at most a few thousand indexed
//! points a simple equi-angular bucket grid with ring expansion is both
//! simpler and faster than a k-d tree, and — unlike a k-d tree on raw
//! lat/lon — it handles the antimeridian wrap correctly.

use crate::GeoPoint;

/// An indexed entry: a point plus the caller's payload id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridEntry<T> {
    /// Location of the entry.
    pub point: GeoPoint,
    /// Caller-supplied payload (typically an index or node id).
    pub id: T,
}

/// Fixed-resolution spatial index over `GeoPoint`s.
///
/// Cells are `cell_deg`×`cell_deg` degrees. Queries scan expanding
/// *latitude row bands* (all longitudes of a row at once) and stop via
/// a latitudinal lower bound on great-circle distance — the only bound
/// that stays valid at the poles and across the antimeridian, where
/// per-cell ring bounds break down (see [`SpatialGrid::nearest`]).
#[derive(Debug, Clone)]
pub struct SpatialGrid<T> {
    cell_deg: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<GridEntry<T>>>,
    len: usize,
}

impl<T: Copy> SpatialGrid<T> {
    /// Creates an empty grid with the given cell size in degrees.
    ///
    /// # Panics
    /// Panics if `cell_deg` is not in `(0, 90]`.
    pub fn new(cell_deg: f64) -> Self {
        assert!(
            cell_deg > 0.0 && cell_deg <= 90.0,
            "cell size must be in (0, 90] degrees"
        );
        let cols = (360.0 / cell_deg).ceil() as usize;
        let rows = (180.0 / cell_deg).ceil() as usize;
        Self {
            cell_deg,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: GeoPoint) -> (usize, usize) {
        let col = (((p.lon + 180.0) / self.cell_deg) as usize).min(self.cols - 1);
        let row = (((p.lat + 90.0) / self.cell_deg) as usize).min(self.rows - 1);
        (col, row)
    }

    /// Inserts a point with its payload.
    pub fn insert(&mut self, point: GeoPoint, id: T) {
        let (col, row) = self.cell_of(point);
        self.cells[row * self.cols + col].push(GridEntry { point, id });
        self.len += 1;
    }

    /// Returns the nearest entry to `query`, or `None` if the grid is empty.
    ///
    /// Scans expanding latitude *row bands* (all longitudes of a row at
    /// once) and stops once the latitudinal separation of the next band
    /// alone exceeds the best distance found. The latitudinal separation
    /// is a valid global lower bound on great-circle distance, so this
    /// is exact even at the poles and across the antimeridian, where
    /// per-cell ring bounds break down.
    pub fn nearest(&self, query: GeoPoint) -> Option<GridEntry<T>> {
        if self.is_empty() {
            return None;
        }
        const KM_PER_DEG_LAT: f64 = 111.19;
        let (_, qr) = self.cell_of(query);
        let qr = qr as isize;
        let mut best: Option<(f64, GridEntry<T>)> = None;
        let scan_row = |row: isize, best: &mut Option<(f64, GridEntry<T>)>| {
            if row < 0 || row >= self.rows as isize {
                return;
            }
            let base = row as usize * self.cols;
            for cell in &self.cells[base..base + self.cols] {
                for e in cell {
                    let d = query.distance_km(e.point);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        *best = Some((d, *e));
                    }
                }
            }
        };
        for band in 0..self.rows as isize {
            if let Some((bd, _)) = best {
                // Points in a row `band` rows away differ by at least
                // (band - 1) * cell_deg degrees of latitude.
                let min_possible = (band - 1).max(0) as f64 * self.cell_deg * KM_PER_DEG_LAT;
                if min_possible > bd {
                    break;
                }
            }
            if band == 0 {
                scan_row(qr, &mut best);
            } else {
                scan_row(qr - band, &mut best);
                scan_row(qr + band, &mut best);
            }
        }
        best.map(|(_, e)| e)
    }

    /// Returns all entries within `radius_km` of `query`, sorted by
    /// ascending distance.
    ///
    /// Like [`SpatialGrid::nearest`], this scans whole latitude row
    /// bands: only the latitudinal separation is a globally valid lower
    /// bound on great-circle distance (longitude cells compress towards
    /// the poles), so the band count is derived from the radius in
    /// latitude degrees and every longitude in a band is visited.
    pub fn within(&self, query: GeoPoint, radius_km: f64) -> Vec<(f64, GridEntry<T>)> {
        const KM_PER_DEG_LAT: f64 = 111.19;
        let mut out = Vec::new();
        let bands = (radius_km / (KM_PER_DEG_LAT * self.cell_deg)).ceil() as isize + 1;
        let (_, qr) = self.cell_of(query);
        let qr = qr as isize;
        let lo = (qr - bands).max(0) as usize;
        let hi = ((qr + bands) as usize).min(self.rows - 1);
        for row in lo..=hi {
            let base = row * self.cols;
            for cell in &self.cells[base..base + self.cols] {
                for e in cell {
                    let d = query.distance_km(e.point);
                    if d <= radius_km {
                        out.push((d, *e));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with(points: &[(f64, f64)]) -> SpatialGrid<usize> {
        let mut g = SpatialGrid::new(5.0);
        for (i, &(lat, lon)) in points.iter().enumerate() {
            g.insert(GeoPoint::new(lat, lon), i);
        }
        g
    }

    #[test]
    fn empty_grid_has_no_nearest() {
        let g: SpatialGrid<usize> = SpatialGrid::new(5.0);
        assert!(g.nearest(GeoPoint::new(0.0, 0.0)).is_none());
        assert!(g.within(GeoPoint::new(0.0, 0.0), 1000.0).is_empty());
    }

    #[test]
    fn nearest_single_point() {
        let g = grid_with(&[(48.0, 11.0)]);
        let e = g.nearest(GeoPoint::new(-30.0, -60.0)).unwrap();
        assert_eq!(e.id, 0);
    }

    #[test]
    fn nearest_matches_brute_force() {
        // Deterministic pseudo-random scatter; compare against O(n) scan.
        let mut pts = Vec::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lat = ((x >> 16) % 17000) as f64 / 100.0 - 85.0;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let lon = ((x >> 16) % 36000) as f64 / 100.0 - 180.0;
            pts.push((lat, lon));
        }
        let g = grid_with(&pts);
        for &(qlat, qlon) in pts.iter().step_by(37) {
            let q = GeoPoint::new(qlat + 3.3, qlon - 7.7);
            let got = g.nearest(q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    q.distance_km(GeoPoint::new(a.1 .0, a.1 .1))
                        .total_cmp(&q.distance_km(GeoPoint::new(b.1 .0, b.1 .1)))
                })
                .unwrap()
                .0;
            let d_got = q.distance_km(GeoPoint::new(pts[got.id].0, pts[got.id].1));
            let d_want = q.distance_km(GeoPoint::new(pts[want].0, pts[want].1));
            assert!(
                (d_got - d_want).abs() < 1e-9,
                "grid {d_got} km vs brute {d_want} km"
            );
        }
    }

    #[test]
    fn wraps_across_antimeridian() {
        let g = grid_with(&[(0.0, 179.5), (0.0, 0.0)]);
        let e = g.nearest(GeoPoint::new(0.0, -179.5)).unwrap();
        assert_eq!(e.id, 0, "should find the point just across the dateline");
    }

    #[test]
    fn within_respects_radius_and_order() {
        let g = grid_with(&[(0.0, 0.0), (0.0, 1.0), (0.0, 5.0), (0.0, 60.0)]);
        let hits = g.within(GeoPoint::new(0.0, 0.0), 600.0);
        let ids: Vec<usize> = hits.iter().map(|(_, e)| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(hits.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_bad_cell_size() {
        let _ = SpatialGrid::<usize>::new(0.0);
    }
}
