//! # shears-geo
//!
//! Geodesy primitives, a country atlas and spatial indexing for the
//! latency-shears reproduction of *Pruning Edge Research with Latency
//! Shears* (HotNets '20).
//!
//! The paper's measurement study is fundamentally geographic: RIPE Atlas
//! probes in 166 countries ping cloud datacenters in 21 countries, and
//! every figure groups the resulting RTT samples by country or continent.
//! This crate provides exactly the geographic substrate that pipeline
//! needs and nothing more:
//!
//! * [`GeoPoint`] with great-circle math ([`GeoPoint::distance_km`],
//!   bearings, destination points) — the propagation-delay input of the
//!   network simulator,
//! * a [`CountryAtlas`] of ~170 countries with centroids, population and
//!   an *infrastructure quality index* used to calibrate path inflation
//!   and access-network quality,
//! * a [`SpatialGrid`] nearest-neighbour index used to attach probes to
//!   metro points-of-presence and to find the closest datacenter,
//! * deterministic, seedable point sampling ([`sample`]) for synthesising
//!   probe locations around population centres.
//!
//! Everything is deterministic given a seed; no wall-clock or I/O.
//!
//! ## Quick example
//!
//! ```
//! use shears_geo::{CountryAtlas, GeoPoint};
//!
//! let atlas = CountryAtlas::global();
//! let de = atlas.by_code("DE").unwrap();
//! let us = atlas.by_code("US").unwrap();
//! let km = de.centroid.distance_km(us.centroid);
//! assert!(km > 6000.0 && km < 9000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atlas_data;
mod country;
mod grid;
mod point;
pub mod sample;

pub use country::{Continent, Country, CountryAtlas, InfraTier};
pub use grid::{GridEntry, SpatialGrid};
pub use point::{GeoPoint, EARTH_RADIUS_KM};

/// Speed of light in vacuum, km per millisecond.
pub const LIGHT_SPEED_KM_PER_MS: f64 = 299.792_458;

/// Effective signal propagation speed in optical fibre, km per millisecond.
///
/// Light in glass travels at roughly two thirds of `c`; this is the constant
/// the measurement literature (and the paper's latency reasoning) uses to
/// convert geodesic distance into a propagation-delay lower bound.
pub const FIBER_SPEED_KM_PER_MS: f64 = LIGHT_SPEED_KM_PER_MS * 2.0 / 3.0;

/// Lower bound on the round-trip time between two points, in milliseconds,
/// assuming a great-circle fibre run at [`FIBER_SPEED_KM_PER_MS`].
///
/// Real paths are longer than the great circle; the network simulator
/// multiplies this bound by a region-dependent *path inflation* factor.
///
/// ```
/// use shears_geo::{min_rtt_ms, GeoPoint};
/// let a = GeoPoint::new(48.85, 2.35);   // Paris
/// let b = GeoPoint::new(52.52, 13.40);  // Berlin
/// let rtt = min_rtt_ms(a, b);
/// assert!(rtt > 8.0 && rtt < 11.0);
/// ```
pub fn min_rtt_ms(a: GeoPoint, b: GeoPoint) -> f64 {
    2.0 * a.distance_km(b) / FIBER_SPEED_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_speed_is_two_thirds_c() {
        assert!((FIBER_SPEED_KM_PER_MS - 199.861_638_666).abs() < 1e-6);
    }

    #[test]
    fn min_rtt_zero_for_same_point() {
        let p = GeoPoint::new(10.0, 20.0);
        assert_eq!(min_rtt_ms(p, p), 0.0);
    }

    #[test]
    fn min_rtt_antipodal_is_about_200ms() {
        // Half the Earth's circumference (~20'015 km) and back at 2/3 c
        // is very nearly 200 ms — the classic rule of thumb.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let rtt = min_rtt_ms(a, b);
        assert!((rtt - 200.3).abs() < 1.0, "rtt = {rtt}");
    }
}
