//! Great-circle geodesy on a spherical Earth.
//!
//! A sphere (rather than the WGS-84 ellipsoid) is accurate to ~0.5 % for
//! distance, which is far below the path-inflation uncertainty of any
//! Internet latency model, and keeps the math dependency-free.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG mean radius R1).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is clamped to `[-90, 90]`; longitude is normalised to
/// `(-180, 180]` on construction so that every `GeoPoint` is in canonical
/// form and comparisons behave predictably.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude and wrapping longitude into
    /// canonical range.
    ///
    /// ```
    /// use shears_geo::GeoPoint;
    /// let p = GeoPoint::new(95.0, 200.0);
    /// assert_eq!(p.lat, 90.0);
    /// assert_eq!(p.lon, -160.0);
    /// ```
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        Self { lat, lon }
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(self) -> f64 {
        self.lon.to_radians()
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    ///
    /// The haversine form is numerically stable for small distances, which
    /// matters here: probe-to-PoP hops are often only a few kilometres.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2)
            + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Initial bearing from `self` towards `other`, in degrees `[0, 360)`.
    pub fn initial_bearing_deg(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_km` along the great
    /// circle with the given initial `bearing_deg`.
    pub fn destination(self, bearing_deg: f64, distance_km: f64) -> GeoPoint {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat_rad();
        let lon1 = self.lon_rad();
        let lat2 =
            (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos())
                .atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
    }

    /// The midpoint of the great-circle segment between `self` and `other`.
    pub fn midpoint(self, other: GeoPoint) -> GeoPoint {
        let (lat1, lon1) = (self.lat_rad(), self.lon_rad());
        let (lat2, lon2) = (other.lat_rad(), other.lon_rad());
        let bx = lat2.cos() * (lon2 - lon1).cos();
        let by = lat2.cos() * (lon2 - lon1).sin();
        let lat3 = (lat1.sin() + lat2.sin())
            .atan2(((lat1.cos() + bx).powi(2) + by.powi(2)).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        GeoPoint::new(lat3.to_degrees(), lon3.to_degrees())
    }

    /// The antipode (diametrically opposite point).
    pub fn antipode(self) -> GeoPoint {
        GeoPoint::new(-self.lat, self.lon + 180.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn canonicalises_longitude() {
        assert_eq!(GeoPoint::new(0.0, 540.0).lon, 180.0);
        assert_eq!(GeoPoint::new(0.0, -540.0).lon, 180.0);
        assert_eq!(GeoPoint::new(0.0, -180.0).lon, 180.0);
        assert_eq!(GeoPoint::new(0.0, 181.0).lon, -179.0);
    }

    #[test]
    fn known_distance_london_paris() {
        let london = GeoPoint::new(51.5074, -0.1278);
        let paris = GeoPoint::new(48.8566, 2.3522);
        let d = london.distance_km(paris);
        assert!(close(d, 343.5, 2.0), "d = {d}");
    }

    #[test]
    fn known_distance_sfo_syd() {
        let sfo = GeoPoint::new(37.6188, -122.3756);
        let syd = GeoPoint::new(-33.9399, 151.1753);
        let d = sfo.distance_km(syd);
        assert!(close(d, 11_934.0, 30.0), "d = {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(12.3, 45.6);
        let b = GeoPoint::new(-33.0, 151.0);
        assert!(close(a.distance_km(b), b.distance_km(a), 1e-9));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = GeoPoint::new(60.0, 25.0);
        assert_eq!(a.distance_km(a), 0.0);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(10.0, 20.0);
        let d = a.distance_km(a.antipode());
        assert!(close(d, std::f64::consts::PI * EARTH_RADIUS_KM, 0.5), "d = {d}");
    }

    #[test]
    fn bearing_due_east_on_equator() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 10.0);
        assert!(close(a.initial_bearing_deg(b), 90.0, 1e-9));
        assert!(close(b.initial_bearing_deg(a), 270.0, 1e-9));
    }

    #[test]
    fn destination_round_trips_distance() {
        let start = GeoPoint::new(48.0, 11.0);
        for bearing in [0.0, 45.0, 137.0, 210.5, 359.0] {
            for dist in [0.5, 10.0, 500.0, 4000.0] {
                let end = start.destination(bearing, dist);
                let back = start.distance_km(end);
                assert!(close(back, dist, 1e-6 * dist.max(1.0)), "b={bearing} d={dist} got {back}");
            }
        }
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = GeoPoint::new(51.5, -0.1);
        let b = GeoPoint::new(40.7, -74.0);
        let m = a.midpoint(b);
        assert!(close(a.distance_km(m), b.distance_km(m), 1e-6));
    }
}
