//! Deterministic geographic sampling.
//!
//! The probe-fleet synthesiser places probes around a country's
//! population centroid. We sample uniformly in a great-circle disc
//! (uniform in area, not in radius) with an optional clustering bias
//! towards the centre that mimics metro-area concentration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::GeoPoint;

/// A seedable sampler of points around geographic centres.
///
/// All randomness flows from the seed given at construction, so a fleet
/// built from the same seed is bit-identical across runs and platforms
/// (`SmallRng` with a fixed seed is deterministic).
#[derive(Debug)]
pub struct GeoSampler {
    rng: SmallRng,
}

impl GeoSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples a point uniformly (by area) in the disc of radius
    /// `radius_km` around `center`.
    pub fn in_disc(&mut self, center: GeoPoint, radius_km: f64) -> GeoPoint {
        let bearing = self.rng.gen_range(0.0..360.0);
        // sqrt(u) * R gives an area-uniform radius.
        let r = radius_km * self.rng.gen::<f64>().sqrt();
        center.destination(bearing, r)
    }

    /// Samples a point in the disc with density decaying away from the
    /// centre: `concentration` = 1 is area-uniform; larger values pull
    /// samples towards the centre (radius ∝ u^(c/2) for u ∈ [0,1)).
    ///
    /// # Panics
    /// Panics if `concentration < 1.0`.
    pub fn in_disc_clustered(
        &mut self,
        center: GeoPoint,
        radius_km: f64,
        concentration: f64,
    ) -> GeoPoint {
        assert!(concentration >= 1.0, "concentration must be >= 1");
        let bearing = self.rng.gen_range(0.0..360.0);
        let u: f64 = self.rng.gen();
        let r = radius_km * u.powf(concentration / 2.0);
        center.destination(bearing, r)
    }

    /// Draws a `u64` for seeding a child sampler; lets callers derive
    /// independent deterministic streams per country/probe.
    pub fn fork_seed(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform f64 in `[0, 1)`. Exposed so fleet synthesis can make
    /// auxiliary choices (access technology, tags) from the same stream.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let c = GeoPoint::new(48.1, 11.6);
        let a: Vec<GeoPoint> = {
            let mut s = GeoSampler::new(42);
            (0..10).map(|_| s.in_disc(c, 100.0)).collect()
        };
        let b: Vec<GeoPoint> = {
            let mut s = GeoSampler::new(42);
            (0..10).map(|_| s.in_disc(c, 100.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let c = GeoPoint::new(0.0, 0.0);
        let a = GeoSampler::new(1).in_disc(c, 100.0);
        let b = GeoSampler::new(2).in_disc(c, 100.0);
        assert_ne!(a, b);
    }

    #[test]
    fn stays_within_radius() {
        let c = GeoPoint::new(-33.9, 151.2);
        let mut s = GeoSampler::new(7);
        for _ in 0..1000 {
            let p = s.in_disc(c, 250.0);
            assert!(c.distance_km(p) <= 250.0 + 1e-6);
        }
    }

    #[test]
    fn clustered_pulls_towards_center() {
        let c = GeoPoint::new(10.0, 10.0);
        let mean_r = |conc: f64| {
            let mut s = GeoSampler::new(99);
            (0..2000)
                .map(|_| c.distance_km(s.in_disc_clustered(c, 100.0, conc)))
                .sum::<f64>()
                / 2000.0
        };
        let uniform = mean_r(1.0);
        let clustered = mean_r(4.0);
        assert!(clustered < uniform * 0.7, "{clustered} vs {uniform}");
    }

    #[test]
    fn uniform_disc_mean_radius_is_two_thirds() {
        // E[r] for area-uniform sampling in a disc of radius R is 2R/3.
        let c = GeoPoint::new(0.0, 0.0);
        let mut s = GeoSampler::new(5);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| c.distance_km(s.in_disc(c, 90.0)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn below_and_fork_are_deterministic() {
        let mut a = GeoSampler::new(3);
        let mut b = GeoSampler::new(3);
        for n in [1usize, 2, 10, 1000] {
            let (x, y) = (a.below(n), b.below(n));
            assert_eq!(x, y);
            assert!(x < n);
        }
        assert_eq!(a.fork_seed(), b.fork_seed());
        assert!(a.uniform() >= 0.0 && b.uniform() < 1.0);
    }

    #[test]
    #[should_panic(expected = "concentration")]
    fn rejects_sub_unit_concentration() {
        let mut s = GeoSampler::new(1);
        let _ = s.in_disc_clustered(GeoPoint::new(0.0, 0.0), 10.0, 0.5);
    }
}
