//! Country and continent model.
//!
//! Every RTT sample in the paper is grouped by the probe's country or
//! continent, and the headline results (Fig. 4) are per-country minima.
//! The [`CountryAtlas`] is the single source of truth for that grouping.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::atlas_data::COUNTRY_TABLE;
use crate::GeoPoint;

/// The continent grouping used throughout the paper's figures.
///
/// The paper groups Latin America (South + Central America and the
/// Caribbean) separately from North America (US/Canada), so we follow
/// that convention rather than the plain seven-continent model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    /// United States and Canada ("NA" in the figures).
    NorthAmerica,
    /// Mexico, Central & South America and the Caribbean ("LatAm").
    LatinAmerica,
    /// Europe, including Russia west of the Urals.
    Europe,
    /// Asia, including the Middle East.
    Asia,
    /// Africa.
    Africa,
    /// Australia, New Zealand and the Pacific islands.
    Oceania,
}

impl Continent {
    /// All continents in the display order used by the paper's figures.
    pub const ALL: [Continent; 6] = [
        Continent::NorthAmerica,
        Continent::Europe,
        Continent::Oceania,
        Continent::Asia,
        Continent::LatinAmerica,
        Continent::Africa,
    ];

    /// Position of this continent in [`Continent::ALL`] — a dense
    /// array index for per-continent accumulators, so grouping passes
    /// can use a fixed-size table instead of a hash map.
    pub fn slot(self) -> usize {
        match self {
            Continent::NorthAmerica => 0,
            Continent::Europe => 1,
            Continent::Oceania => 2,
            Continent::Asia => 3,
            Continent::LatinAmerica => 4,
            Continent::Africa => 5,
        }
    }

    /// Short label as used in the figures ("NA", "EU", ...).
    pub fn short(self) -> &'static str {
        match self {
            Continent::NorthAmerica => "NA",
            Continent::LatinAmerica => "LatAm",
            Continent::Europe => "EU",
            Continent::Asia => "Asia",
            Continent::Africa => "Africa",
            Continent::Oceania => "Oceania",
        }
    }

    /// The continents whose probes are additionally measured against
    /// datacenters on *this* continent, per the paper's methodology:
    /// "For probes in continents with low datacenter density, e.g.,
    /// Africa and South America, we also measured latencies to
    /// datacenters in adjacent continents, i.e., Europe and North
    /// America."
    pub fn adjacent_measurement_targets(self) -> &'static [Continent] {
        match self {
            Continent::Africa => &[Continent::Europe],
            Continent::LatinAmerica => &[Continent::NorthAmerica],
            _ => &[],
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// Coarse infrastructure tier derived from the infrastructure-quality
/// index; used for reporting and for selecting model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InfraTier {
    /// Dense fibre, many IXPs, local cloud onramps (quality ≥ 0.75).
    Advanced,
    /// Good national backbone, some direct peering (0.5 ≤ q < 0.75).
    Developed,
    /// Sparse backbone, transit through regional hubs (0.3 ≤ q < 0.5).
    Emerging,
    /// Limited infrastructure, often satellite/one submarine landing (q < 0.3).
    Underserved,
}

impl InfraTier {
    /// Classify a quality index in `[0, 1]`.
    pub fn from_quality(q: f64) -> Self {
        if q >= 0.75 {
            InfraTier::Advanced
        } else if q >= 0.5 {
            InfraTier::Developed
        } else if q >= 0.3 {
            InfraTier::Emerging
        } else {
            InfraTier::Underserved
        }
    }
}

/// A country record in the atlas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code, upper case.
    pub code: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Continent grouping used by the paper.
    pub continent: Continent,
    /// Population-weighted centroid (approximate).
    pub centroid: GeoPoint,
    /// Population in millions (2019-era estimates).
    pub population_m: f64,
    /// Infrastructure-quality index in `[0, 1]`: drives path inflation,
    /// access-network quality and probe density in the synthesiser.
    pub infra_quality: f64,
    /// Whether the country has a direct submarine-cable landing or is a
    /// well-connected landlocked country; countries without one pay an
    /// extra transit penalty to reach their regional hub.
    pub submarine_landing: bool,
}

impl Country {
    /// Coarse infrastructure tier for this country.
    pub fn tier(&self) -> InfraTier {
        InfraTier::from_quality(self.infra_quality)
    }
}

/// The global country atlas: an immutable table of ~170 countries with a
/// code index.
///
/// Construction is cheap (one allocation for the index); callers usually
/// build it once with [`CountryAtlas::global`] and share a reference.
#[derive(Debug, Clone)]
pub struct CountryAtlas {
    countries: Vec<Country>,
    by_code: HashMap<&'static str, usize>,
}

impl CountryAtlas {
    /// Builds the full global atlas from the embedded table.
    pub fn global() -> Self {
        let countries: Vec<Country> = COUNTRY_TABLE
            .iter()
            .map(|row| Country {
                code: row.0,
                name: row.1,
                continent: row.2,
                centroid: GeoPoint::new(row.3, row.4),
                population_m: row.5,
                infra_quality: row.6,
                submarine_landing: row.7,
            })
            .collect();
        let by_code = countries
            .iter()
            .enumerate()
            .map(|(i, c)| (c.code, i))
            .collect();
        Self { countries, by_code }
    }

    /// All countries, in table order (stable across runs).
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// Looks up a country by ISO alpha-2 code (case-sensitive, upper case).
    pub fn by_code(&self, code: &str) -> Option<&Country> {
        self.by_code.get(code).map(|&i| &self.countries[i])
    }

    /// All countries on the given continent.
    pub fn on_continent(&self, continent: Continent) -> impl Iterator<Item = &Country> {
        self.countries.iter().filter(move |c| c.continent == continent)
    }

    /// Number of countries in the atlas.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// Whether the atlas is empty (never true for [`CountryAtlas::global`]).
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// Total world population covered, in millions.
    pub fn total_population_m(&self) -> f64 {
        self.countries.iter().map(|c| c.population_m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_covers_at_least_166_countries() {
        // The paper's probes span 166 countries; our atlas must cover at
        // least that many so the fleet synthesiser can match the spread.
        let atlas = CountryAtlas::global();
        assert!(atlas.len() >= 166, "only {} countries", atlas.len());
    }

    #[test]
    fn codes_are_unique_and_upper() {
        let atlas = CountryAtlas::global();
        let mut seen = std::collections::HashSet::new();
        for c in atlas.countries() {
            assert_eq!(c.code.len(), 2, "{}", c.code);
            assert_eq!(c.code, c.code.to_uppercase(), "{}", c.code);
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
        }
    }

    #[test]
    fn quality_and_population_in_range() {
        let atlas = CountryAtlas::global();
        for c in atlas.countries() {
            assert!(
                (0.0..=1.0).contains(&c.infra_quality),
                "{}: quality {}",
                c.code,
                c.infra_quality
            );
            assert!(c.population_m > 0.0, "{}: population", c.code);
            assert!(c.centroid.lat.abs() <= 90.0);
        }
    }

    #[test]
    fn every_continent_represented() {
        let atlas = CountryAtlas::global();
        for cont in Continent::ALL {
            assert!(
                atlas.on_continent(cont).count() > 0,
                "no countries on {cont}"
            );
        }
    }

    #[test]
    fn world_population_is_plausible() {
        let atlas = CountryAtlas::global();
        let pop = atlas.total_population_m();
        assert!(pop > 6500.0 && pop < 8200.0, "world population {pop} M");
    }

    #[test]
    fn lookup_by_code_round_trips() {
        let atlas = CountryAtlas::global();
        for c in atlas.countries() {
            assert_eq!(atlas.by_code(c.code).unwrap().name, c.name);
        }
        assert!(atlas.by_code("XX").is_none());
    }

    #[test]
    fn tier_classification_boundaries() {
        assert_eq!(InfraTier::from_quality(0.9), InfraTier::Advanced);
        assert_eq!(InfraTier::from_quality(0.75), InfraTier::Advanced);
        assert_eq!(InfraTier::from_quality(0.6), InfraTier::Developed);
        assert_eq!(InfraTier::from_quality(0.4), InfraTier::Emerging);
        assert_eq!(InfraTier::from_quality(0.1), InfraTier::Underserved);
    }

    #[test]
    fn africa_mostly_lower_tier_than_europe() {
        // Sanity check on calibration data: the paper's Fig. 6 depends on
        // Africa being under-served relative to Europe.
        let atlas = CountryAtlas::global();
        let avg = |cont| {
            let v: Vec<f64> = atlas.on_continent(cont).map(|c| c.infra_quality).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(Continent::Europe) > avg(Continent::Africa) + 0.2);
    }

    #[test]
    fn adjacency_follows_methodology() {
        assert_eq!(
            Continent::Africa.adjacent_measurement_targets(),
            &[Continent::Europe]
        );
        assert_eq!(
            Continent::LatinAmerica.adjacent_measurement_targets(),
            &[Continent::NorthAmerica]
        );
        assert!(Continent::Europe.adjacent_measurement_targets().is_empty());
    }
}
