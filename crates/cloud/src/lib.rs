//! # shears-cloud
//!
//! The cloud-provider catalogue of the latency-shears reproduction:
//! 101 compute regions across the seven providers the paper measured
//! (Amazon, Google, Microsoft Azure, Digital Ocean, Linode, Alibaba and
//! Vultr), in 21 countries, with 2019/2020-era city locations and
//! launch years.
//!
//! Besides the static catalogue this crate carries the two provider
//! attributes the paper's methodology distinguishes:
//!
//! * **backbone class** — §4.1: "Some, e.g. Amazon, Google etc. have
//!   installed private, large bandwidth, low latency network backbones
//!   with wide-scale ISP peering, while others, e.g. Linode, largely
//!   rely on the public Internet". [`Provider::has_private_backbone`]
//!   feeds the topology builder's peering decisions.
//! * **expansion timeline** — §4: "Amazon's cloud has increased from 3
//!   to 22 datacenter locations" since 2010. [`Catalog::snapshot`]
//!   filters the catalogue to any year, powering the EXT3 ablation.
//!
//! ```
//! use shears_cloud::{Catalog, Provider};
//!
//! let catalog = Catalog::global();
//! assert_eq!(catalog.regions().len(), 101);
//! assert_eq!(catalog.countries().len(), 21);
//! assert!(Provider::Amazon.has_private_backbone());
//! assert!(!Provider::Linode.has_private_backbone());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod catalog_data;
mod provider;
mod region;

pub use catalog::Catalog;
pub use provider::Provider;
pub use region::Region;
