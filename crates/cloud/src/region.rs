//! A cloud compute region.

use serde::{Deserialize, Serialize};
use shears_geo::GeoPoint;

use crate::Provider;

/// One compute region (the paper's unit: "101 cloud regions with
/// compute datacenters (e.g. ec2)").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Operating provider.
    pub provider: Provider,
    /// Provider's region identifier (e.g. `eu-central-1`).
    pub code: &'static str,
    /// Metro area the datacenter cluster sits in.
    pub city: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// Datacenter location (metro-level precision).
    pub location: GeoPoint,
    /// Year the region went live (for the expansion ablation).
    pub launched: u16,
}

impl Region {
    /// A human-readable label, e.g. `Amazon/eu-central-1 (Frankfurt)`.
    pub fn label(&self) -> String {
        format!("{}/{} ({})", self.provider, self.code, self.city)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_format() {
        let r = Region {
            provider: Provider::Amazon,
            code: "eu-central-1",
            city: "Frankfurt",
            country: "DE",
            location: GeoPoint::new(50.1, 8.7),
            launched: 2014,
        };
        assert_eq!(r.label(), "Amazon/eu-central-1 (Frankfurt)");
    }
}
