//! The seven cloud providers measured by the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A cloud provider in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Amazon Web Services.
    Amazon,
    /// Google Cloud Platform.
    Google,
    /// Microsoft Azure.
    Azure,
    /// Digital Ocean.
    DigitalOcean,
    /// Linode.
    Linode,
    /// Alibaba Cloud.
    Alibaba,
    /// Vultr.
    Vultr,
}

impl Provider {
    /// All providers, in the paper's listing order.
    pub const ALL: [Provider; 7] = [
        Provider::Amazon,
        Provider::Google,
        Provider::Azure,
        Provider::DigitalOcean,
        Provider::Linode,
        Provider::Alibaba,
        Provider::Vultr,
    ];

    /// Whether the provider runs a private wide-area backbone with broad
    /// ISP peering (Amazon, Google, Azure, Alibaba) rather than relying
    /// on public Internet transit (Digital Ocean, Linode, Vultr).
    pub fn has_private_backbone(self) -> bool {
        matches!(
            self,
            Provider::Amazon | Provider::Google | Provider::Azure | Provider::Alibaba
        )
    }

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Provider::Amazon => "Amazon",
            Provider::Google => "Google",
            Provider::Azure => "Microsoft Azure",
            Provider::DigitalOcean => "Digital Ocean",
            Provider::Linode => "Linode",
            Provider::Alibaba => "Alibaba",
            Provider::Vultr => "Vultr",
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_providers() {
        assert_eq!(Provider::ALL.len(), 7);
        let unique: std::collections::HashSet<_> = Provider::ALL.iter().collect();
        assert_eq!(unique.len(), 7);
    }

    #[test]
    fn backbone_split_matches_paper() {
        assert!(Provider::Amazon.has_private_backbone());
        assert!(Provider::Google.has_private_backbone());
        assert!(!Provider::Linode.has_private_backbone());
        assert!(!Provider::Vultr.has_private_backbone());
        assert!(!Provider::DigitalOcean.has_private_backbone());
    }

    #[test]
    fn names_render() {
        assert_eq!(Provider::Azure.to_string(), "Microsoft Azure");
    }
}
