//! Catalogue queries over the embedded region table.

use std::collections::BTreeSet;

use shears_geo::{Continent, CountryAtlas, GeoPoint};

use crate::catalog_data::REGION_TABLE;
use crate::{Provider, Region};

/// The region catalogue: the study's 101 measurement end-points.
#[derive(Debug, Clone)]
pub struct Catalog {
    regions: Vec<Region>,
}

impl Catalog {
    /// The full 2019/2020-era catalogue (101 regions).
    pub fn global() -> Self {
        let regions = REGION_TABLE
            .iter()
            .map(|&(provider, code, city, country, lat, lon, launched)| Region {
                provider,
                code,
                city,
                country,
                location: GeoPoint::new(lat, lon),
                launched,
            })
            .collect();
        Self { regions }
    }

    /// All regions, in table order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Regions operated by `provider`.
    pub fn by_provider(&self, provider: Provider) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(move |r| r.provider == provider)
    }

    /// Regions located in the given country.
    pub fn in_country<'a>(&'a self, country: &'a str) -> impl Iterator<Item = &'a Region> {
        self.regions.iter().filter(move |r| r.country == country)
    }

    /// Regions on the given continent (country membership resolved
    /// through the country atlas).
    pub fn on_continent<'a>(
        &'a self,
        continent: Continent,
        atlas: &'a CountryAtlas,
    ) -> impl Iterator<Item = &'a Region> {
        self.regions.iter().filter(move |r| {
            atlas
                .by_code(r.country)
                .map(|c| c.continent == continent)
                .unwrap_or(false)
        })
    }

    /// The set of countries hosting at least one region.
    pub fn countries(&self) -> BTreeSet<&'static str> {
        self.regions.iter().map(|r| r.country).collect()
    }

    /// A new catalogue restricted to regions launched in or before
    /// `year`, optionally restricted to one provider. This is the
    /// expansion-timeline query behind the EXT3 ablation ("Amazon's
    /// cloud has increased from 3 to 22 datacenter locations").
    pub fn snapshot(&self, year: u16, provider: Option<Provider>) -> Catalog {
        Catalog {
            regions: self
                .regions
                .iter()
                .filter(|r| r.launched <= year && provider.is_none_or(|p| r.provider == p))
                .cloned()
                .collect(),
        }
    }

    /// The `n` regions nearest to `point`, closest first.
    pub fn nearest(&self, point: GeoPoint, n: usize) -> Vec<&Region> {
        let mut v: Vec<&Region> = self.regions.iter().collect();
        v.sort_by(|a, b| {
            point
                .distance_km(a.location)
                .total_cmp(&point.distance_km(b.location))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_101_regions_in_21_countries() {
        let c = Catalog::global();
        assert_eq!(c.regions().len(), 101, "paper: 101 cloud regions");
        assert_eq!(c.countries().len(), 21, "paper: 21 countries");
    }

    #[test]
    fn per_provider_counts_are_plausible() {
        let c = Catalog::global();
        let count = |p| c.by_provider(p).count();
        assert_eq!(count(Provider::Amazon), 20);
        assert_eq!(count(Provider::Google), 18);
        assert_eq!(count(Provider::Azure), 15);
        assert_eq!(count(Provider::DigitalOcean), 8);
        assert_eq!(count(Provider::Linode), 10);
        assert_eq!(count(Provider::Alibaba), 14);
        assert_eq!(count(Provider::Vultr), 16);
        let total: usize = Provider::ALL.iter().map(|&p| count(p)).sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn region_codes_unique_per_provider() {
        let c = Catalog::global();
        let mut seen = std::collections::HashSet::new();
        for r in c.regions() {
            assert!(
                seen.insert((r.provider, r.code)),
                "duplicate {} {}",
                r.provider,
                r.code
            );
        }
    }

    #[test]
    fn all_region_countries_exist_in_atlas() {
        let atlas = CountryAtlas::global();
        let c = Catalog::global();
        for r in c.regions() {
            assert!(
                atlas.by_code(r.country).is_some(),
                "unknown country {} for {}",
                r.country,
                r.label()
            );
        }
    }

    #[test]
    fn exactly_one_african_region() {
        // §4.3: Africa "severely under-served … only one operating region".
        let atlas = CountryAtlas::global();
        let c = Catalog::global();
        let african: Vec<_> = c.on_continent(Continent::Africa, &atlas).collect();
        assert_eq!(african.len(), 1, "{african:?}");
        assert_eq!(african[0].country, "ZA");
    }

    #[test]
    fn aws_expansion_3_in_2010_to_20_plus_by_2020() {
        // §4: "Amazon's cloud has increased from 3 to 22 datacenter
        // locations" — our catalogue carries compute regions only, so
        // 2010 holds the three pre-2010 launches plus Singapore (Apr
        // 2010) and 2020 holds all twenty.
        let c = Catalog::global();
        let aws_2009 = c.snapshot(2009, Some(Provider::Amazon));
        assert_eq!(aws_2009.regions().len(), 3);
        let aws_2020 = c.snapshot(2020, Some(Provider::Amazon));
        assert_eq!(aws_2020.regions().len(), 20);
    }

    #[test]
    fn snapshot_is_monotone_in_year() {
        let c = Catalog::global();
        let mut prev = 0;
        for year in 2003..=2020 {
            let n = c.snapshot(year, None).regions().len();
            assert!(n >= prev, "{year}: {n} < {prev}");
            prev = n;
        }
        assert_eq!(prev, 101);
    }

    #[test]
    fn nearest_returns_sorted_prefix() {
        let c = Catalog::global();
        let munich = GeoPoint::new(48.1, 11.6);
        let top3 = c.nearest(munich, 3);
        assert_eq!(top3.len(), 3);
        // Frankfurt hosts multiple providers; all three nearest should be
        // Frankfurt datacenters (~300 km from Munich).
        for r in &top3 {
            assert_eq!(r.city, "Frankfurt", "{}", r.label());
        }
    }

    #[test]
    fn continental_filters_cover_all_regions() {
        let atlas = CountryAtlas::global();
        let c = Catalog::global();
        let total: usize = Continent::ALL
            .iter()
            .map(|&cont| c.on_continent(cont, &atlas).count())
            .sum();
        assert_eq!(total, 101);
    }
}
