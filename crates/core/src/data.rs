//! The joined campaign-data view every analysis consumes.
//!
//! [`CampaignData`] binds the platform (probe metadata, catalogue,
//! geography) to a result store and applies the paper's global
//! filtering rule — §4.1: "We filter out all the probes that are
//! clearly installed in privileged locations (e.g., datacenters, cloud
//! network) from our measurements using their user-defined tags."

use std::collections::HashMap;

use shears_atlas::{Platform, Probe, ProbeId, ResultStore, RttSample};

/// A joined view over one campaign run.
pub struct CampaignData<'a> {
    platform: &'a Platform,
    store: &'a ResultStore,
}

impl<'a> CampaignData<'a> {
    /// Creates the view.
    pub fn new(platform: &'a Platform, store: &'a ResultStore) -> Self {
        Self { platform, store }
    }

    /// The platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The raw store (unfiltered).
    pub fn store(&self) -> &'a ResultStore {
        self.store
    }

    /// The probe record behind a sample.
    pub fn probe(&self, id: ProbeId) -> &'a Probe {
        &self.platform.probes()[id.index()]
    }

    /// Samples surviving the privileged-probe filter, with their probe
    /// records. This is the iterator every figure consumes.
    pub fn filtered(&self) -> impl Iterator<Item = (&'a Probe, &'a RttSample)> + '_ {
        self.store.samples().iter().filter_map(move |s| {
            let p = self.probe(s.probe);
            if p.is_privileged() {
                None
            } else {
                Some((p, s))
            }
        })
    }

    /// Like [`CampaignData::filtered`], keeping only samples that got a
    /// reply.
    pub fn filtered_responded(&self) -> impl Iterator<Item = (&'a Probe, &'a RttSample)> + '_ {
        self.filtered().filter(|(_, s)| s.responded())
    }

    /// Per-probe minimum RTT (ms) over the whole campaign and all
    /// targets — the probe-level statistic behind Fig. 5. Privileged
    /// probes are absent from the map; probes whose every round was
    /// lost are also absent.
    pub fn per_probe_min(&self) -> HashMap<ProbeId, f64> {
        let mut min: HashMap<ProbeId, f64> = HashMap::new();
        for (p, s) in self.filtered_responded() {
            let v = f64::from(s.min_ms);
            min.entry(p.id)
                .and_modify(|m| *m = m.min(v))
                .or_insert(v);
        }
        min
    }

    /// Per-country minimum RTT (ms): the best probe of each country to
    /// any datacenter — Fig. 4's statistic.
    pub fn per_country_min(&self) -> HashMap<&'a str, f64> {
        let mut min: HashMap<&str, f64> = HashMap::new();
        for (p, s) in self.filtered_responded() {
            let v = f64::from(s.min_ms);
            min.entry(p.country.as_str())
                .and_modify(|m| *m = m.min(v))
                .or_insert(v);
        }
        min
    }

    /// For each probe, the minimum RTT *to its closest datacenter* per
    /// round — Fig. 6's population ("all ping measurements from all
    /// probes to their closest datacenter"). "Closest" is resolved per
    /// probe as the region with the lowest campaign-wide minimum.
    pub fn samples_to_closest_dc(&self) -> Vec<(&'a Probe, f64)> {
        // First pass: per (probe, region) minimum to find each probe's
        // best region.
        let mut best_region: HashMap<ProbeId, (u16, f64)> = HashMap::new();
        for (p, s) in self.filtered_responded() {
            let v = f64::from(s.min_ms);
            best_region
                .entry(p.id)
                .and_modify(|(region, m)| {
                    if v < *m {
                        *region = s.region;
                        *m = v;
                    }
                })
                .or_insert((s.region, v));
        }
        // Second pass: all rounds towards that region.
        self.filtered_responded()
            .filter(|(p, s)| {
                best_region
                    .get(&p.id)
                    .is_some_and(|(region, _)| *region == s.region)
            })
            .map(|(p, s)| (p, f64::from(s.min_ms)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, PlatformConfig};

    fn data() -> (Platform, ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 4,
                targets_per_probe: 2,
                adjacent_targets: 1,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn filtered_excludes_privileged_probes() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        assert!(view
            .filtered()
            .all(|(p, _)| !p.is_privileged()));
        // And the raw store does contain some privileged samples to
        // prove the filter does something (4 % of a decent fleet).
        let privileged_ids: std::collections::HashSet<_> = platform
            .probes()
            .iter()
            .filter(|p| p.is_privileged())
            .map(|p| p.id)
            .collect();
        if !privileged_ids.is_empty() {
            assert!(store
                .samples()
                .iter()
                .any(|s| privileged_ids.contains(&s.probe)));
        }
    }

    #[test]
    fn per_probe_min_is_a_lower_bound() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let mins = view.per_probe_min();
        assert!(!mins.is_empty());
        for (p, s) in view.filtered_responded() {
            assert!(mins[&p.id] <= f64::from(s.min_ms) + 1e-9);
        }
    }

    #[test]
    fn per_country_min_bounds_probe_minima() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let by_country = view.per_country_min();
        let by_probe = view.per_probe_min();
        for (id, v) in &by_probe {
            let country = view.probe(*id).country.as_str();
            assert!(by_country[country] <= *v + 1e-9);
        }
    }

    #[test]
    fn closest_dc_view_uses_one_region_per_probe() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let rows = view.samples_to_closest_dc();
        assert!(!rows.is_empty());
        // Each probe contributes at most `rounds` samples (one region).
        let mut counts: HashMap<ProbeId, usize> = HashMap::new();
        for (p, _) in &rows {
            *counts.entry(p.id).or_default() += 1;
        }
        for (_, c) in counts {
            assert!(c <= 4, "more than one region per probe leaked in: {c}");
        }
    }
}
