//! The joined campaign-data view every analysis consumes.
//!
//! [`CampaignData`] binds the platform (probe metadata, catalogue,
//! geography) to a result store and applies the paper's global
//! filtering rule — §4.1: "We filter out all the probes that are
//! clearly installed in privileged locations (e.g., datacenters, cloud
//! network) from our measurements using their user-defined tags."
//!
//! Since the frame refactor this type is a thin compatibility wrapper:
//! aggregate queries ([`CampaignData::per_probe_min`],
//! [`CampaignData::per_country_min`],
//! [`CampaignData::samples_to_closest_dc`]) delegate to a lazily built,
//! memoized [`CampaignFrame`] — so a full report pays for one store
//! scan instead of one per figure — while the streaming iterators
//! ([`CampaignData::filtered`], [`CampaignData::filtered_responded`])
//! keep their original store-order semantics.

use std::collections::HashMap;
use std::sync::OnceLock;

use shears_atlas::{DurableOutcome, Platform, Probe, ProbeId, Replay, ResultStore, RttSample};

use crate::frame::CampaignFrame;

/// A joined view over one campaign run.
pub struct CampaignData<'a> {
    platform: &'a Platform,
    store: &'a ResultStore,
    frame: OnceLock<CampaignFrame>,
}

impl<'a> CampaignData<'a> {
    /// Creates the view. Cheap: the frame index is built on first use.
    pub fn new(platform: &'a Platform, store: &'a ResultStore) -> Self {
        Self {
            platform,
            store,
            frame: OnceLock::new(),
        }
    }

    /// Views a crash-recovered campaign: the outcome handed back by
    /// `Campaign::resume` (or a completed `run_durable`). Recovered
    /// stores are bit-identical to uninterrupted ones, so every
    /// downstream figure is too.
    pub fn from_recovered(platform: &'a Platform, outcome: &'a DurableOutcome) -> Self {
        Self::new(platform, &outcome.store)
    }

    /// Views the samples replayed straight out of a journal, *without*
    /// re-running the remaining rounds — for reporting on a partially
    /// complete (crashed or still-running) campaign as-is.
    pub fn from_replay(platform: &'a Platform, replay: &'a Replay) -> Self {
        Self::new(platform, &replay.store)
    }

    /// The platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The raw store (unfiltered).
    pub fn store(&self) -> &'a ResultStore {
        self.store
    }

    /// The indexed frame over this campaign, built (in one parallel
    /// columnar store scan) and memoized on first access.
    pub fn frame(&self) -> &CampaignFrame {
        self.frame
            .get_or_init(|| CampaignFrame::build(self.platform, self.store))
    }

    /// The probe record behind a sample.
    pub fn probe(&self, id: ProbeId) -> &'a Probe {
        &self.platform.probes()[id.index()]
    }

    /// Samples surviving the privileged-probe filter, with their probe
    /// records, in store order. This is the streaming path; aggregate
    /// statistics come precomputed from [`CampaignData::frame`].
    /// Samples are materialised by value from the store's columns.
    pub fn filtered(&self) -> impl Iterator<Item = (&'a Probe, RttSample)> + '_ {
        self.store.iter().filter_map(move |s| {
            let p = self.probe(s.probe);
            if p.is_privileged() {
                None
            } else {
                Some((p, s))
            }
        })
    }

    /// Like [`CampaignData::filtered`], keeping only samples that got a
    /// reply.
    pub fn filtered_responded(&self) -> impl Iterator<Item = (&'a Probe, RttSample)> + '_ {
        self.filtered().filter(|(_, s)| s.responded())
    }

    /// Per-probe minimum RTT (ms) over the whole campaign and all
    /// targets — the probe-level statistic behind Fig. 5. Privileged
    /// probes are absent from the map; probes whose every round was
    /// lost are also absent.
    pub fn per_probe_min(&self) -> HashMap<ProbeId, f64> {
        self.frame().probe_minima().collect()
    }

    /// Per-country minimum RTT (ms): the best probe of each country to
    /// any datacenter — Fig. 4's statistic.
    pub fn per_country_min(&self) -> HashMap<&'a str, f64> {
        // The frame interns country codes with its own lifetime; re-key
        // to the platform's strings so callers outlive this borrow.
        let mut canon: HashMap<&str, &'a str> = HashMap::new();
        for p in self.platform.probes() {
            canon.entry(p.country.as_str()).or_insert(p.country.as_str());
        }
        self.frame()
            .country_minima()
            .map(|(c, v)| (canon[c], v))
            .collect()
    }

    /// For each probe, the minimum RTT *to its closest datacenter* per
    /// round — Fig. 6's population ("all ping measurements from all
    /// probes to their closest datacenter"). "Closest" is resolved per
    /// probe as the region with the lowest campaign-wide minimum.
    /// Served from the frame's cached resolution, in store order.
    pub fn samples_to_closest_dc(&self) -> Vec<(&'a Probe, f64)> {
        self.frame()
            .closest_dc(self.platform, self.store)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, PlatformConfig};

    fn data() -> (Platform, ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 4,
                targets_per_probe: 2,
                adjacent_targets: 1,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn filtered_excludes_privileged_probes() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        assert!(view
            .filtered()
            .all(|(p, _)| !p.is_privileged()));
        // And the raw store does contain some privileged samples to
        // prove the filter does something (4 % of a decent fleet).
        let privileged_ids: std::collections::HashSet<_> = platform
            .probes()
            .iter()
            .filter(|p| p.is_privileged())
            .map(|p| p.id)
            .collect();
        if !privileged_ids.is_empty() {
            assert!(store
                .samples()
                .iter()
                .any(|s| privileged_ids.contains(&s.probe)));
        }
    }

    #[test]
    fn per_probe_min_is_a_lower_bound() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let mins = view.per_probe_min();
        assert!(!mins.is_empty());
        for (p, s) in view.filtered_responded() {
            assert!(mins[&p.id] <= f64::from(s.min_ms) + 1e-9);
        }
    }

    #[test]
    fn per_country_min_bounds_probe_minima() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let by_country = view.per_country_min();
        let by_probe = view.per_probe_min();
        for (id, v) in &by_probe {
            let country = view.probe(*id).country.as_str();
            assert!(by_country[country] <= *v + 1e-9);
        }
    }

    #[test]
    fn closest_dc_view_uses_one_region_per_probe() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let rows = view.samples_to_closest_dc();
        assert!(!rows.is_empty());
        // Each probe contributes at most `rounds` samples (one region).
        let mut counts: HashMap<ProbeId, usize> = HashMap::new();
        for (p, _) in &rows {
            *counts.entry(p.id).or_default() += 1;
        }
        for (_, c) in counts {
            assert!(c <= 4, "more than one region per probe leaked in: {c}");
        }
    }

    #[test]
    fn recovered_campaigns_report_identically() {
        use shears_atlas::{Campaign, DurabilityConfig};
        let (platform, store) = data();
        let cfg = CampaignConfig {
            rounds: 4,
            targets_per_probe: 2,
            adjacent_targets: 1,
            ..CampaignConfig::quick()
        };
        let path = std::env::temp_dir().join(format!(
            "shears-core-recovered-{}.journal",
            std::process::id()
        ));
        let mut d = DurabilityConfig::new(&path);
        d.crash_after_round = Some(1);
        assert!(Campaign::new(&platform, cfg).run_durable(2, &d).is_err());
        d.crash_after_round = None;
        let outcome = Campaign::resume(&platform, &d, 2).unwrap();
        let plain = CampaignData::new(&platform, &store);
        let recovered = CampaignData::from_recovered(&platform, &outcome);
        assert_eq!(plain.per_probe_min(), recovered.per_probe_min());
        assert_eq!(plain.per_country_min(), recovered.per_country_min());
        // Replay-only views see exactly the journaled prefix.
        let replay = shears_atlas::journal::replay(&path).unwrap();
        let partial = CampaignData::from_replay(&platform, &replay);
        assert_eq!(partial.store().samples(), outcome.store.samples());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn frame_is_memoized() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let a = view.frame() as *const _;
        let b = view.frame() as *const _;
        assert_eq!(a, b, "frame must be built once and reused");
    }
}
