//! Plain-text report rendering.
//!
//! The figure-regeneration binaries print the series the paper's
//! figures plot; this module gives them one consistent, aligned table
//! format so EXPERIMENTS.md diffs stay readable.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-padded columns and a rule under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim per-line trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// One chart series: label, marker character, `(x, cdf)` points.
type ChartSeries = (String, char, Vec<(f64, f64)>);

/// Renders a set of named CDF curves as a log-x ASCII chart — the
/// terminal rendition of the paper's Figs. 5/6. Each series is drawn
/// with its own marker; rows are CDF levels (100 % at the top), columns
/// are log-spaced RTT values between `x_min` and `x_max`.
pub struct AsciiCdfChart {
    x_min: f64,
    x_max: f64,
    width: usize,
    height: usize,
    series: Vec<ChartSeries>,
}

impl AsciiCdfChart {
    /// Creates a chart for the x-range `[x_min, x_max]` (log scale).
    ///
    /// # Panics
    /// Panics unless `0 < x_min < x_max`.
    pub fn new(x_min: f64, x_max: f64) -> Self {
        assert!(
            x_min > 0.0 && x_min < x_max,
            "need 0 < x_min < x_max for a log axis"
        );
        Self {
            x_min,
            x_max,
            width: 64,
            height: 16,
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, cdf)` points with a marker character.
    pub fn series(&mut self, name: &str, marker: char, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.to_string(), marker, points));
        self
    }

    fn col_of(&self, x: f64) -> Option<usize> {
        if x < self.x_min || x > self.x_max {
            return None;
        }
        let f = (x / self.x_min).ln() / (self.x_max / self.x_min).ln();
        Some(((f * (self.width - 1) as f64).round() as usize).min(self.width - 1))
    }

    /// Renders the chart with axes and a legend.
    pub fn render(&self) -> String {
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (_, marker, points) in &self.series {
            for &(x, y) in points {
                let Some(col) = self.col_of(x) else { continue };
                let y = y.clamp(0.0, 1.0);
                let row = ((1.0 - y) * (self.height - 1) as f64).round() as usize;
                let cell = &mut grid[row.min(self.height - 1)][col];
                // First writer wins; overlaps become '+'.
                *cell = if *cell == ' ' || *cell == *marker {
                    *marker
                } else {
                    '+'
                };
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let level = 100.0 * (1.0 - i as f64 / (self.height - 1) as f64);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("{level:>4.0}% |"),
            );
            out.extend(row.iter());
            // Trim per-row trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out.push_str("      +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "       {:<width$.0}{:>8.0} ms (log scale)\n",
                self.x_min,
                self.x_max,
                width = self.width - 7
            ),
        );
        out.push_str("legend:");
        for (name, marker, _) in &self.series {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(" {marker}={name}"));
        }
        out.push('\n');
        out
    }
}

/// An equirectangular ASCII world map: callers place one character per
/// geographic point (e.g. a Fig. 4 latency-bucket digit at each country
/// centroid) and render a terminal choropleth.
pub struct AsciiWorldMap {
    width: usize,
    height: usize,
    grid: Vec<Vec<char>>,
}

impl Default for AsciiWorldMap {
    fn default() -> Self {
        Self::new()
    }
}

impl AsciiWorldMap {
    /// A 72×24 map (5°/column, 7.5°/row).
    pub fn new() -> Self {
        let (width, height) = (72, 24);
        Self {
            width,
            height,
            grid: vec![vec![' '; width]; height],
        }
    }

    /// Places `marker` at the cell containing `(lat, lon)`. Later
    /// placements overwrite earlier ones in the same cell (callers
    /// should plot small countries first if that matters).
    pub fn place(&mut self, lat: f64, lon: f64, marker: char) -> &mut Self {
        let col = (((lon + 180.0) / 360.0 * self.width as f64) as usize).min(self.width - 1);
        let row = (((90.0 - lat) / 180.0 * self.height as f64) as usize).min(self.height - 1);
        self.grid[row][col] = marker;
        self
    }

    /// Renders the map in a frame.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push_str("+\n");
        for row in &self.grid {
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push_str("+\n");
        out
    }
}

/// Formats a millisecond value for tables (one decimal).
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an optional millisecond value.
pub fn ms_opt(v: Option<f64>) -> String {
    v.map(ms).unwrap_or_else(|| "-".into())
}

/// Formats a fraction as a percentage (one decimal).
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["continent", "median"]);
        t.row(vec!["EU", "17.2"]);
        t.row(vec!["Africa", "212.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("continent  median"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("EU"));
        // Columns align: "median" starts at the same offset everywhere.
        let col = lines[0].find("median").unwrap();
        assert_eq!(&lines[3][col..col + 3], "212");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
        t.row(vec!["x", "y", "z-dropped"]);
        let s = t.render();
        assert!(!s.contains("z-dropped"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ascii_chart_places_points_monotonically() {
        let mut chart = AsciiCdfChart::new(1.0, 1000.0);
        chart.series(
            "EU",
            'e',
            vec![(2.0, 0.1), (10.0, 0.5), (100.0, 0.9), (900.0, 1.0)],
        );
        let s = chart.render();
        let lines: Vec<&str> = s.lines().collect();
        // 16 grid rows + axis + labels + legend.
        assert_eq!(lines.len(), 16 + 3);
        assert!(lines[0].starts_with(" 100% |"));
        assert!(s.contains("e=EU"));
        // The 100% row carries the right-most point, the 10% row an
        // early one: markers appear at both extremes.
        assert!(lines[0].contains('e'), "top row: {}", lines[0]);
        // Row for ~10%: index 14 of 0..16 grid rows ≈ 6.7% -> nearest
        // to 10% is row 14 (level ≈ 6.7) or 13 (13.3): accept either.
        assert!(
            lines[13].contains('e') || lines[14].contains('e'),
            "low rows missing marker"
        );
    }

    #[test]
    fn ascii_chart_marks_overlaps() {
        let mut chart = AsciiCdfChart::new(1.0, 100.0);
        chart.series("a", 'a', vec![(10.0, 0.5)]);
        chart.series("b", 'b', vec![(10.0, 0.5)]);
        let s = chart.render();
        assert!(s.contains('+'), "overlap marker missing:
{s}");
    }

    #[test]
    #[should_panic(expected = "log axis")]
    fn ascii_chart_rejects_bad_range() {
        let _ = AsciiCdfChart::new(0.0, 10.0);
    }

    #[test]
    fn world_map_places_markers_geographically() {
        let mut map = AsciiWorldMap::new();
        map.place(52.5, 13.4, 'B'); // Berlin: north-east quadrant
        map.place(-33.9, 151.2, 'S'); // Sydney: south-east
        map.place(40.7, -74.0, 'N'); // New York: north-west
        let s = map.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 24 + 2);
        let find = |c: char| {
            lines
                .iter()
                .enumerate()
                .find_map(|(r, l)| l.find(c).map(|col| (r, col)))
                .unwrap_or_else(|| panic!("{c} not on map"))
        };
        let (berlin_r, berlin_c) = find('B');
        let (sydney_r, sydney_c) = find('S');
        let (ny_r, ny_c) = find('N');
        assert!(berlin_r < sydney_r, "Berlin north of Sydney");
        assert!(ny_c < berlin_c, "New York west of Berlin");
        assert!(berlin_c < sydney_c, "Berlin west of Sydney");
        assert!(ny_r < sydney_r);
    }

    #[test]
    fn world_map_clamps_extremes() {
        let mut map = AsciiWorldMap::new();
        map.place(90.0, 180.0, 'x');
        map.place(-90.0, -180.0, 'y');
        let s = map.render();
        assert!(s.contains('x') && s.contains('y'));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(12.345), "12.3");
        assert_eq!(ms_opt(None), "-");
        assert_eq!(ms_opt(Some(1.0)), "1.0");
        assert_eq!(pct(0.805), "80.5%");
    }
}
