//! EXT4: the bandwidth side of the edge argument, quantified.
//!
//! The paper's second motivation for edge computing is "saving network
//! bandwidth by aggregating large flows before sending them to the
//! cloud", and §5 fixes the boundary at "1GB/entity data generation".
//! This study derives that boundary from first principles and computes
//! per-application backhaul savings:
//!
//! * a metro uplink is a [`LinkClass::MetroAggregation`] fibre
//!   (100 Gbit/s in the model);
//! * a metro serves on the order of a million attached entities
//!   ([`REFERENCE_ENTITIES_PER_METRO`]);
//! * an application congests the backhaul when its aggregate upstream
//!   rate approaches the uplink capacity — which works out to almost
//!   exactly 1 GB/entity/day, the paper's threshold;
//! * edge pre-processing multiplies each stream by the application's
//!   `edge_reduction` factor, which converts directly into saved
//!   backhaul and extra supportable entities.

use serde::Serialize;
use shears_apps::Application;
use shears_netsim::LinkClass;

/// Entities (cameras, cars, sensors, households…) attached to one
/// metro's aggregation uplink in the reference deployment.
pub const REFERENCE_ENTITIES_PER_METRO: f64 = 1_000_000.0;

/// Converts GB/day into Gbit/s.
pub fn gb_per_day_to_gbps(gb_per_day: f64) -> f64 {
    gb_per_day * 8.0 / 86_400.0
}

/// The per-entity daily volume (GB) at which a full metro's entities
/// saturate the metro uplink — the model-derived version of the paper's
/// "1 GB/entity" boundary.
pub fn derived_bandwidth_boundary_gb_per_day() -> f64 {
    let capacity = LinkClass::MetroAggregation.capacity_gbps();
    capacity * 86_400.0 / 8.0 / REFERENCE_ENTITIES_PER_METRO
}

/// Per-application bandwidth analysis.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthRow {
    /// Application name.
    pub name: &'static str,
    /// Upstream rate per entity, Gbit/s (envelope centre).
    pub per_entity_gbps: f64,
    /// Raw aggregate at the reference metro, Gbit/s.
    pub raw_metro_gbps: f64,
    /// Aggregate after edge pre-processing, Gbit/s.
    pub reduced_metro_gbps: f64,
    /// Fraction of backhaul saved by the edge (`1 − edge_reduction`).
    pub saving_fraction: f64,
    /// Metro-uplink utilisation without edge (can exceed 1 = congested).
    pub raw_utilization: f64,
    /// Utilisation with edge.
    pub reduced_utilization: f64,
    /// Max entities one metro uplink supports without edge.
    pub entities_without_edge: f64,
    /// …and with edge aggregation.
    pub entities_with_edge: f64,
}

impl BandwidthRow {
    /// Whether edge aggregation is *material* for this application:
    /// the raw deployment pushes the uplink past half capacity and the
    /// edge removes a meaningful share of it.
    pub fn edge_materially_helps(&self) -> bool {
        self.raw_utilization > 0.5 && self.saving_fraction > 0.3
    }
}

/// Computes the bandwidth study over an application catalogue.
pub fn bandwidth_study(apps: &[Application]) -> Vec<BandwidthRow> {
    let capacity = LinkClass::MetroAggregation.capacity_gbps();
    apps.iter()
        .map(|app| {
            let per_entity_gbps = gb_per_day_to_gbps(app.data_gb_per_day.center());
            let raw = per_entity_gbps * app.entities_per_metro;
            let reduced = raw * app.edge_reduction;
            BandwidthRow {
                name: app.name,
                per_entity_gbps,
                raw_metro_gbps: raw,
                reduced_metro_gbps: reduced,
                saving_fraction: 1.0 - app.edge_reduction,
                raw_utilization: raw / capacity,
                reduced_utilization: reduced / capacity,
                entities_without_edge: capacity / per_entity_gbps,
                entities_with_edge: capacity / (per_entity_gbps * app.edge_reduction.max(1e-9)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_apps::catalog::driving_applications;

    #[test]
    fn derived_boundary_matches_the_papers_1gb() {
        // 100 Gbit/s ÷ 1 M entities = 100 kbit/s/entity ≈ 1.08 GB/day.
        let boundary = derived_bandwidth_boundary_gb_per_day();
        assert!(
            (0.5..2.0).contains(&boundary),
            "derived boundary {boundary} GB/day should straddle the paper's 1 GB"
        );
    }

    #[test]
    fn unit_conversion() {
        // 10.8 GB/day = 1 Mbit/s.
        let gbps = gb_per_day_to_gbps(10.8);
        assert!((gbps - 0.001).abs() < 1e-9, "{gbps}");
    }

    #[test]
    fn camera_monitoring_congests_and_edge_fixes_it() {
        let apps = driving_applications();
        let study = bandwidth_study(&apps);
        let cameras = study
            .iter()
            .find(|r| r.name == "Traffic camera monitoring")
            .unwrap();
        assert!(
            cameras.raw_utilization > 1.0,
            "a metro of cameras should congest the uplink, got {}",
            cameras.raw_utilization
        );
        assert!(cameras.reduced_utilization < 1.0);
        assert!(cameras.edge_materially_helps());
        assert!(cameras.entities_with_edge > 10.0 * cameras.entities_without_edge);
    }

    #[test]
    fn wearables_never_need_edge_bandwidth() {
        let apps = driving_applications();
        let study = bandwidth_study(&apps);
        let wearables = study.iter().find(|r| r.name == "Wearables").unwrap();
        assert!(
            wearables.raw_utilization < 0.05,
            "wearables at {} of uplink",
            wearables.raw_utilization
        );
        assert!(!wearables.edge_materially_helps());
    }

    #[test]
    fn gaming_gets_no_bandwidth_relief() {
        // Cloud gaming's stream cannot be aggregated away (reduction 1.0):
        // its edge case is latency, not bandwidth — matching Fig. 8 where
        // it sits in the FZ through the latency zone.
        let apps = driving_applications();
        let study = bandwidth_study(&apps);
        let gaming = study.iter().find(|r| r.name == "Cloud gaming").unwrap();
        assert_eq!(gaming.saving_fraction, 0.0);
        assert!((gaming.entities_with_edge - gaming.entities_without_edge).abs() < 1e-6);
    }

    #[test]
    fn study_covers_catalogue_and_is_internally_consistent() {
        let apps = driving_applications();
        let study = bandwidth_study(&apps);
        assert_eq!(study.len(), apps.len());
        for row in &study {
            assert!(row.reduced_metro_gbps <= row.raw_metro_gbps + 1e-12);
            assert!((0.0..=1.0).contains(&row.saving_fraction));
            assert!(row.entities_with_edge >= row.entities_without_edge - 1e-6);
        }
    }
}
