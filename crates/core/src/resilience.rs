//! EXT7: infrastructure-failure studies — what cable cuts and degraded
//! campaigns do to cloud reachability.
//!
//! §6 argues that in under-served regions "gains are more significant"
//! because connectivity hangs on thin infrastructure; the inverse
//! experiment makes that concrete: fail a whole cable corridor (e.g.
//! every transatlantic link) and measure how far cloud latency
//! regresses for the affected populations. Well-connected regions have
//! alternate corridors; regions served by a single landing do not —
//! which is exactly the fragility argument for investing in
//! infrastructure (not edge servers) in those regions.
//!
//! Scenarios are expressed as [`FaultPlan`]s — the same replayable fault
//! schedule the measurement campaign injects — so the what-if study and
//! the chaos campaign share one failure model. [`degradation_report`]
//! closes the loop: given a campaign that ran under a plan, it attributes
//! response-rate loss, retry spend and RTT inflation to each fault class.

use serde::{Deserialize, Serialize};
use shears_atlas::Platform;
use shears_geo::Continent;
use shears_netsim::fault::{FaultClass, FaultPlan};
use shears_netsim::routing::Router;
use shears_netsim::topology::LinkClass;
use shears_netsim::SimTime;

use crate::data::CampaignData;
use crate::kernels;

/// Builds the plan that permanently fails every inter-continental link
/// whose endpoints lie on the two given continents — a whole-corridor
/// cut. Private-backbone spans crossing the corridor go down too:
/// providers lease fibre pairs on the same physical cable systems, so a
/// corridor failure takes out public and private capacity alike.
pub fn corridor_cut(platform: &Platform, a: Continent, b: Continent, name: &str) -> FaultPlan {
    let atlas = platform.countries();
    let continent_of = |country: &str| atlas.by_code(country).map(|c| c.continent);
    let links = platform
        .topology()
        .links()
        .filter(|(_, link)| {
            matches!(
                link.class,
                LinkClass::SubmarineCable | LinkClass::PrivateBackbone
            )
        })
        .filter(|(_, link)| {
            let ca = continent_of(&platform.topology().node(link.a).country);
            let cb = continent_of(&platform.topology().node(link.b).country);
            matches!((ca, cb), (Some(x), Some(y)) if (x == a && y == b) || (x == b && y == a))
        })
        .map(|(id, _)| id)
        .collect();
    FaultPlan::permanent_cut(name, links)
}

/// Per-continent impact of a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Probe continent.
    pub continent: Continent,
    /// Probes measured.
    pub probes: usize,
    /// Median floor RTT to the nearest DC, healthy network, ms.
    pub healthy_median_ms: f64,
    /// Median floor RTT under the failure, ms (`None` if a majority of
    /// probes lost connectivity entirely).
    pub failed_median_ms: Option<f64>,
    /// Fraction of probes whose RTT grew by more than 25 %.
    pub degraded_fraction: f64,
    /// Fraction of probes fully disconnected from their nearest DC.
    pub disconnected_fraction: f64,
}

/// The EXT7 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Scenario name (the plan's label).
    pub scenario: String,
    /// Distinct links the plan fails.
    pub links_cut: usize,
    /// One row per continent.
    pub rows: Vec<ResilienceRow>,
}

impl ResilienceReport {
    /// Row lookup.
    pub fn continent(&self, c: Continent) -> Option<&ResilienceRow> {
        self.rows.iter().find(|r| r.continent == c)
    }
}

/// Runs the failure study over up to `max_probes_per_continent` probes,
/// comparing the healthy topology against the plan's cut set at the
/// start of time (corridor plans from [`corridor_cut`] are permanent, so
/// any instant sees the same cuts).
///
/// With `target_continent = None` every probe measures against its
/// nearest datacenter (the campaign default). Passing `Some(c)` pins
/// the target to the probe's nearest region *on continent `c`* — the
/// right view for corridor cuts, whose victims are the inter-continent
/// flows (a LatAm→NA cut is invisible to LatAm probes using São Paulo).
pub fn failure_study(
    platform: &Platform,
    plan: &FaultPlan,
    max_probes_per_continent: usize,
    target_continent: Option<Continent>,
) -> ResilienceReport {
    let mut healthy = Router::new(platform.topology());
    let disabled = plan.disabled_at(SimTime::ZERO).clone();
    let mut failed = Router::with_disabled(platform.topology(), disabled);
    let mut rows = Vec::new();
    for continent in Continent::ALL {
        let mut healthy_ms = Vec::new();
        let mut failed_ms = Vec::new();
        let mut degraded = 0usize;
        let mut disconnected = 0usize;
        let mut probes = 0usize;
        for probe in platform
            .unprivileged_probes()
            .filter(|p| p.continent == continent)
            .take(max_probes_per_continent)
        {
            let target = match target_continent {
                None => platform.targets_for(probe, 1, 1).first().copied(),
                Some(c) => {
                    let regions = platform.catalog().regions();
                    regions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| platform.region_continent(*i) == c)
                        .min_by(|a, b| {
                            probe
                                .location
                                .distance_km(a.1.location)
                                .total_cmp(&probe.location.distance_km(b.1.location))
                        })
                        .map(|(i, _)| i as u16)
                }
            };
            let Some(target) = target else {
                continue;
            };
            let from = platform.probe_node(probe.id);
            let to = platform.dc_node(target as usize);
            let Some(h) = healthy.path(from, to).map(|p| p.base_one_way_ms * 2.0) else {
                continue;
            };
            probes += 1;
            healthy_ms.push(h);
            match failed.path(from, to).map(|p| p.base_one_way_ms * 2.0) {
                Some(f) => {
                    failed_ms.push(f);
                    if f > h * 1.25 {
                        degraded += 1;
                    }
                }
                None => disconnected += 1,
            }
        }
        if probes == 0 {
            continue;
        }
        let failed_median =
            kernels::median(&failed_ms).filter(|_| disconnected * 2 <= probes);
        rows.push(ResilienceRow {
            continent,
            probes,
            healthy_median_ms: kernels::median(&healthy_ms).unwrap_or(f64::NAN),
            failed_median_ms: failed_median,
            degraded_fraction: degraded as f64 / probes as f64,
            disconnected_fraction: disconnected as f64 / probes as f64,
        });
    }
    ResilienceReport {
        scenario: plan.label().to_string(),
        links_cut: plan.cut_link_count(),
        rows,
    }
}

/// Impact of one fault class on the samples exposed to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultClassImpact {
    /// The fault class.
    pub class: FaultClass,
    /// Unprivileged samples whose round fell inside an active episode.
    pub samples: usize,
    /// Their response rate (NaN when no sample was exposed).
    pub response_rate: f64,
    /// Median min-RTT of the responded exposed samples, ms.
    pub median_rtt_ms: Option<f64>,
    /// `median_rtt_ms` relative to the clean (unexposed) median — the
    /// RTT inflation the class causes. `None` without both medians.
    pub rtt_inflation: Option<f64>,
    /// Mean retries per exposed sample.
    pub mean_retries: f64,
}

/// How a campaign degraded under its fault plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationReport {
    /// The plan's label.
    pub plan: String,
    /// Unprivileged samples analysed.
    pub samples: usize,
    /// Overall response rate over those samples (NaN when empty).
    pub response_rate: f64,
    /// Samples that needed at least one retry.
    pub retried_samples: usize,
    /// Total retries across the campaign.
    pub total_retries: u64,
    /// Median min-RTT of responded samples taken outside every fault
    /// episode — the inflation baseline.
    pub clean_median_ms: Option<f64>,
    /// One row per fault class (classes with zero scheduled episodes
    /// report zero exposed samples).
    pub per_class: Vec<FaultClassImpact>,
}

/// Attribution accumulator for one sample bucket.
#[derive(Default)]
struct Bucket {
    samples: usize,
    responded: usize,
    retries: u64,
    rtts: Vec<f64>,
}

impl Bucket {
    fn add(&mut self, responded: bool, retries: u32, min_ms: f32) {
        self.samples += 1;
        self.retries += u64::from(retries);
        if responded {
            self.responded += 1;
            self.rtts.push(f64::from(min_ms));
        }
    }

    fn response_rate(&self) -> f64 {
        if self.samples == 0 {
            f64::NAN
        } else {
            self.responded as f64 / self.samples as f64
        }
    }

    fn median(self) -> Option<f64> {
        kernels::median(&self.rtts)
    }
}

/// Builds the degraded-campaign study: response rate, retry counts and
/// per-fault-class RTT inflation, consuming the campaign's
/// [`crate::frame::CampaignFrame`] indexes for the privileged-probe
/// filter. `packets_per_attempt` is the campaign's packet count; each
/// sample's retry count is recovered from its cumulative `sent` field
/// (`sent = packets × attempts` for ping campaigns, `sent = attempts`
/// for TCP campaigns — pass `1` there).
pub fn degradation_report(
    data: &CampaignData<'_>,
    plan: &FaultPlan,
    packets_per_attempt: u32,
) -> DegradationReport {
    let frame = data.frame();
    let per_attempt = packets_per_attempt.max(1);
    let mut clean = Bucket::default();
    let mut overall = Bucket::default();
    let mut by_class: Vec<Bucket> = FaultClass::ALL.iter().map(|_| Bucket::default()).collect();
    let mut retried_samples = 0usize;
    for s in data.store().iter() {
        if frame.is_privileged(s.probe) {
            continue;
        }
        let attempts = (u32::from(s.sent) / per_attempt).max(1);
        let retries = attempts - 1;
        if retries > 0 {
            retried_samples += 1;
        }
        overall.add(s.responded(), retries, s.min_ms);
        let mut exposed = false;
        for (i, &class) in FaultClass::ALL.iter().enumerate() {
            if plan.class_active_at(class, s.at) {
                exposed = true;
                by_class[i].add(s.responded(), retries, s.min_ms);
            }
        }
        if !exposed {
            clean.add(s.responded(), retries, s.min_ms);
        }
    }
    let clean_median_ms = clean.median();
    let per_class = FaultClass::ALL
        .iter()
        .zip(by_class)
        .map(|(&class, bucket)| {
            let response_rate = bucket.response_rate();
            let mean_retries = if bucket.samples == 0 {
                0.0
            } else {
                bucket.retries as f64 / bucket.samples as f64
            };
            let samples = bucket.samples;
            let median_rtt_ms = bucket.median();
            let rtt_inflation = match (median_rtt_ms, clean_median_ms) {
                (Some(m), Some(c)) if c > 0.0 => Some(m / c),
                _ => None,
            };
            FaultClassImpact {
                class,
                samples,
                response_rate,
                median_rtt_ms,
                rtt_inflation,
                mean_retries,
            }
        })
        .collect();
    DegradationReport {
        plan: plan.label().to_string(),
        samples: overall.samples,
        response_rate: overall.response_rate(),
        retried_samples,
        total_retries: overall.retries,
        clean_median_ms,
        per_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::campaign::{Campaign, CampaignConfig};
    use shears_atlas::recovery::RetryPolicy;
    use shears_atlas::{FleetConfig, PlatformConfig};
    use shears_netsim::fault::FaultConfig;

    fn platform() -> Platform {
        Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 300,
                seed: 91,
            },
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn transatlantic_cut_exists_and_is_nonempty() {
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::Europe,
            Continent::NorthAmerica,
            "transatlantic",
        );
        assert!(
            cut.cut_link_count() > 0,
            "the model carries transatlantic submarine links"
        );
        assert_eq!(cut.label(), "transatlantic");
    }

    #[test]
    fn transatlantic_cut_spares_intra_continental_traffic() {
        // EU probes reach EU datacenters regardless; their nearest DC is
        // on-continent, so the cut must leave them essentially intact.
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::Europe,
            Continent::NorthAmerica,
            "transatlantic",
        );
        let report = failure_study(&p, &cut, 80, None);
        let eu = report.continent(Continent::Europe).unwrap();
        assert_eq!(eu.disconnected_fraction, 0.0);
        assert!(
            eu.degraded_fraction < 0.2,
            "EU degradation {}",
            eu.degraded_fraction
        );
        let na = report.continent(Continent::NorthAmerica).unwrap();
        assert_eq!(na.disconnected_fraction, 0.0);
    }

    #[test]
    fn latam_depends_on_the_na_corridor() {
        // LatAm probes measure against NA datacenters through the
        // Miami corridor; cutting LatAm–NA submarine links must degrade
        // (not disconnect — terrestrial routes via Mexico remain) a
        // visible share of LatAm paths while leaving Europe untouched.
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::LatinAmerica,
            Continent::NorthAmerica,
            "latam-na cut",
        );
        assert!(cut.cut_link_count() > 0);
        // Measure everyone against their nearest *North American* DC:
        // the corridor's actual traffic.
        let report = failure_study(&p, &cut, 80, Some(Continent::NorthAmerica));
        let la = report.continent(Continent::LatinAmerica).unwrap();
        let eu = report.continent(Continent::Europe).unwrap();
        // South American probes lose the Miami corridor and detour over
        // the South Atlantic (or, for some, lose connectivity); Mexican
        // and Central American probes ride terrestrial routes through
        // Mexico and stay clean — so the affected share is well below 1
        // but clearly above Europe's (whose transatlantic corridor is
        // untouched by this cut).
        let la_affected = la.degraded_fraction + la.disconnected_fraction;
        let eu_affected = eu.degraded_fraction + eu.disconnected_fraction;
        assert!(
            la_affected > eu_affected + 0.1,
            "LatAm affected {la_affected} vs EU {eu_affected}"
        );
    }

    #[test]
    fn empty_scenario_changes_nothing() {
        let p = platform();
        let nothing = FaultPlan::empty("no-op");
        let report = failure_study(&p, &nothing, 50, None);
        assert_eq!(report.links_cut, 0);
        for row in &report.rows {
            assert_eq!(row.degraded_fraction, 0.0, "{}", row.continent);
            assert_eq!(row.disconnected_fraction, 0.0);
            let failed = row.failed_median_ms.unwrap();
            assert!((failed - row.healthy_median_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn degradation_report_attributes_loss_to_the_bursty_class() {
        // A heavy loss-burst campaign: the loss-burst class must see a
        // depressed response rate and retry spend, while classes with no
        // scheduled episodes see no samples at all.
        let p = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 60,
                seed: 5,
            },
            ..PlatformConfig::default()
        });
        let mut faults = FaultConfig::lossy();
        faults.loss_bursts = 8;
        faults.loss_burst_mean_hours = 10_000.0;
        faults.loss_burst_extra = 0.9;
        let cfg = CampaignConfig {
            rounds: 3,
            targets_per_probe: 2,
            adjacent_targets: 1,
            faults,
            recovery: RetryPolicy::atlas_default(),
            ..CampaignConfig::quick()
        };
        let campaign = Campaign::new(&p, cfg);
        let store = campaign.run().unwrap();
        let plan = campaign.fault_plan().expect("faults are enabled");
        let data = CampaignData::new(&p, &store);
        let report = degradation_report(&data, &plan, cfg.packets);

        assert!(report.samples > 0);
        assert!(report.total_retries > 0, "heavy loss must trigger retries");
        assert!(report.retried_samples > 0);
        let impact = |class: FaultClass| {
            report
                .per_class
                .iter()
                .find(|i| i.class == class)
                .expect("every class has a row")
        };
        let loss = impact(FaultClass::LossBurst);
        assert!(loss.samples > 0, "bursts cover most of the window");
        assert!(
            loss.response_rate < 0.7,
            "90% extra loss must depress the rate, got {}",
            loss.response_rate
        );
        assert!(loss.mean_retries > 0.0);
        // No cuts, no latency bursts, no blackouts were scheduled.
        assert_eq!(impact(FaultClass::LinkCut).samples, 0);
        assert_eq!(impact(FaultClass::LatencyBurst).samples, 0);
        assert_eq!(impact(FaultClass::DcBlackout).samples, 0);
    }

    #[test]
    fn degradation_report_on_a_clean_campaign_is_all_baseline() {
        let p = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 60,
                seed: 5,
            },
            ..PlatformConfig::default()
        });
        let cfg = CampaignConfig {
            rounds: 3,
            targets_per_probe: 2,
            adjacent_targets: 1,
            ..CampaignConfig::quick()
        };
        let store = Campaign::new(&p, cfg).run().unwrap();
        let data = CampaignData::new(&p, &store);
        let plan = FaultPlan::empty("clean");
        let report = degradation_report(&data, &plan, cfg.packets);
        assert_eq!(report.total_retries, 0);
        assert_eq!(report.retried_samples, 0);
        assert!(report.clean_median_ms.is_some());
        assert!(report.response_rate > 0.9);
        for impact in &report.per_class {
            assert_eq!(impact.samples, 0, "{:?}", impact.class);
        }
    }
}
