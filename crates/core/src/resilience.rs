//! EXT7: infrastructure-failure study — what a submarine-cable cut does
//! to cloud reachability.
//!
//! §6 argues that in under-served regions "gains are more significant"
//! because connectivity hangs on thin infrastructure; the inverse
//! experiment makes that concrete: fail a whole cable corridor (e.g.
//! every transatlantic link) and measure how far cloud latency
//! regresses for the affected populations. Well-connected regions have
//! alternate corridors; regions served by a single landing do not —
//! which is exactly the fragility argument for investing in
//! infrastructure (not edge servers) in those regions.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use shears_atlas::Platform;
use shears_geo::Continent;
use shears_netsim::routing::Router;
use shears_netsim::topology::{LinkClass, LinkId};

use crate::stats::Ecdf;

/// A named failure scenario: which links go down.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Display name (e.g. "transatlantic cut").
    pub name: String,
    /// Failed links.
    pub links: Vec<LinkId>,
}

/// Builds the scenario that fails every inter-continental link whose
/// endpoints lie on the two given continents — a whole-corridor cut.
/// Private-backbone spans crossing the corridor go down too: providers
/// lease fibre pairs on the same physical cable systems, so a corridor
/// failure takes out public and private capacity alike.
pub fn corridor_cut(
    platform: &Platform,
    a: Continent,
    b: Continent,
    name: &str,
) -> FailureScenario {
    let atlas = platform.countries();
    let continent_of = |country: &str| atlas.by_code(country).map(|c| c.continent);
    let links = platform
        .topology()
        .links()
        .filter(|(_, link)| {
            matches!(
                link.class,
                LinkClass::SubmarineCable | LinkClass::PrivateBackbone
            )
        })
        .filter(|(_, link)| {
            let ca = continent_of(&platform.topology().node(link.a).country);
            let cb = continent_of(&platform.topology().node(link.b).country);
            matches!((ca, cb), (Some(x), Some(y)) if (x == a && y == b) || (x == b && y == a))
        })
        .map(|(id, _)| id)
        .collect();
    FailureScenario {
        name: name.to_string(),
        links,
    }
}

/// Per-continent impact of a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Probe continent.
    pub continent: Continent,
    /// Probes measured.
    pub probes: usize,
    /// Median floor RTT to the nearest DC, healthy network, ms.
    pub healthy_median_ms: f64,
    /// Median floor RTT under the failure, ms (`None` if a majority of
    /// probes lost connectivity entirely).
    pub failed_median_ms: Option<f64>,
    /// Fraction of probes whose RTT grew by more than 25 %.
    pub degraded_fraction: f64,
    /// Fraction of probes fully disconnected from their nearest DC.
    pub disconnected_fraction: f64,
}

/// The EXT7 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Scenario name.
    pub scenario: String,
    /// Links failed.
    pub links_cut: usize,
    /// One row per continent.
    pub rows: Vec<ResilienceRow>,
}

impl ResilienceReport {
    /// Row lookup.
    pub fn continent(&self, c: Continent) -> Option<&ResilienceRow> {
        self.rows.iter().find(|r| r.continent == c)
    }
}

/// Runs the failure study over up to `max_probes_per_continent` probes.
///
/// With `target_continent = None` every probe measures against its
/// nearest datacenter (the campaign default). Passing `Some(c)` pins
/// the target to the probe's nearest region *on continent `c`* — the
/// right view for corridor cuts, whose victims are the inter-continent
/// flows (a LatAm→NA cut is invisible to LatAm probes using São Paulo).
pub fn failure_study(
    platform: &Platform,
    scenario: &FailureScenario,
    max_probes_per_continent: usize,
    target_continent: Option<Continent>,
) -> ResilienceReport {
    let mut healthy = Router::new(platform.topology());
    let disabled: HashSet<LinkId> = scenario.links.iter().copied().collect();
    let mut failed = Router::with_disabled(platform.topology(), disabled);
    let mut rows = Vec::new();
    for continent in Continent::ALL {
        let mut healthy_ms = Vec::new();
        let mut failed_ms = Vec::new();
        let mut degraded = 0usize;
        let mut disconnected = 0usize;
        let mut probes = 0usize;
        for probe in platform
            .unprivileged_probes()
            .filter(|p| p.continent == continent)
            .take(max_probes_per_continent)
        {
            let target = match target_continent {
                None => platform.targets_for(probe, 1, 1).first().copied(),
                Some(c) => {
                    let regions = platform.catalog().regions();
                    regions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| platform.region_continent(*i) == c)
                        .min_by(|a, b| {
                            probe
                                .location
                                .distance_km(a.1.location)
                                .total_cmp(&probe.location.distance_km(b.1.location))
                        })
                        .map(|(i, _)| i as u16)
                }
            };
            let Some(target) = target else {
                continue;
            };
            let from = platform.probe_node(probe.id);
            let to = platform.dc_node(target as usize);
            let Some(h) = healthy.path(from, to).map(|p| p.base_one_way_ms * 2.0) else {
                continue;
            };
            probes += 1;
            healthy_ms.push(h);
            match failed.path(from, to).map(|p| p.base_one_way_ms * 2.0) {
                Some(f) => {
                    failed_ms.push(f);
                    if f > h * 1.25 {
                        degraded += 1;
                    }
                }
                None => disconnected += 1,
            }
        }
        if probes == 0 {
            continue;
        }
        let failed_median = Ecdf::new(failed_ms).median()
            .filter(|_| disconnected * 2 <= probes);
        rows.push(ResilienceRow {
            continent,
            probes,
            healthy_median_ms: Ecdf::new(healthy_ms).median().unwrap_or(f64::NAN),
            failed_median_ms: failed_median,
            degraded_fraction: degraded as f64 / probes as f64,
            disconnected_fraction: disconnected as f64 / probes as f64,
        });
    }
    ResilienceReport {
        scenario: scenario.name.clone(),
        links_cut: scenario.links.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{FleetConfig, PlatformConfig};

    fn platform() -> Platform {
        Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 300,
                seed: 91,
            },
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn transatlantic_cut_exists_and_is_nonempty() {
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::Europe,
            Continent::NorthAmerica,
            "transatlantic",
        );
        assert!(
            !cut.links.is_empty(),
            "the model carries transatlantic submarine links"
        );
    }

    #[test]
    fn transatlantic_cut_spares_intra_continental_traffic() {
        // EU probes reach EU datacenters regardless; their nearest DC is
        // on-continent, so the cut must leave them essentially intact.
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::Europe,
            Continent::NorthAmerica,
            "transatlantic",
        );
        let report = failure_study(&p, &cut, 80, None);
        let eu = report.continent(Continent::Europe).unwrap();
        assert_eq!(eu.disconnected_fraction, 0.0);
        assert!(
            eu.degraded_fraction < 0.2,
            "EU degradation {}",
            eu.degraded_fraction
        );
        let na = report.continent(Continent::NorthAmerica).unwrap();
        assert_eq!(na.disconnected_fraction, 0.0);
    }

    #[test]
    fn latam_depends_on_the_na_corridor() {
        // LatAm probes measure against NA datacenters through the
        // Miami corridor; cutting LatAm–NA submarine links must degrade
        // (not disconnect — terrestrial routes via Mexico remain) a
        // visible share of LatAm paths while leaving Europe untouched.
        let p = platform();
        let cut = corridor_cut(
            &p,
            Continent::LatinAmerica,
            Continent::NorthAmerica,
            "latam-na cut",
        );
        assert!(!cut.links.is_empty());
        // Measure everyone against their nearest *North American* DC:
        // the corridor's actual traffic.
        let report = failure_study(&p, &cut, 80, Some(Continent::NorthAmerica));
        let la = report.continent(Continent::LatinAmerica).unwrap();
        let eu = report.continent(Continent::Europe).unwrap();
        // South American probes lose the Miami corridor and detour over
        // the South Atlantic (or, for some, lose connectivity); Mexican
        // and Central American probes ride terrestrial routes through
        // Mexico and stay clean — so the affected share is well below 1
        // but clearly above Europe's (whose transatlantic corridor is
        // untouched by this cut).
        let la_affected = la.degraded_fraction + la.disconnected_fraction;
        let eu_affected = eu.degraded_fraction + eu.disconnected_fraction;
        assert!(
            la_affected > eu_affected + 0.1,
            "LatAm affected {la_affected} vs EU {eu_affected}"
        );
    }

    #[test]
    fn empty_scenario_changes_nothing() {
        let p = platform();
        let nothing = FailureScenario {
            name: "no-op".into(),
            links: Vec::new(),
        };
        let report = failure_study(&p, &nothing, 50, None);
        for row in &report.rows {
            assert_eq!(row.degraded_fraction, 0.0, "{}", row.continent);
            assert_eq!(row.disconnected_fraction, 0.0);
            let failed = row.failed_median_ms.unwrap();
            assert!((failed - row.healthy_median_ms).abs() < 1e-9);
        }
    }
}
