//! Vectorisation-friendly scan kernels over the columnar store.
//!
//! PR 6 turned `ResultStore` into seven bare parallel columns precisely
//! so that hot scans could become data-parallel; this module is where
//! those scans live. Every aggregation the figure pipeline is
//! throughput-bound on — masked minima, order statistics, response
//! counts, window partitions — is a kernel here, with three
//! interchangeable implementations:
//!
//! * [`scalar`] — the reference: plain per-element loops, written to be
//!   obviously correct. Every other variant is pinned against it bit
//!   for bit.
//! * [`chunked`] — the default fast path: `chunks_exact` loops over
//!   lane-striped accumulator arrays, shaped so LLVM's autovectoriser
//!   turns them into SIMD without any unstable features.
//! * [`simd`] — explicit `std::simd` variants behind the `simd` cargo
//!   feature (requires a nightly toolchain, or `RUSTC_BOOTSTRAP=1`).
//!   Off by default; the scalar/chunked paths are always built.
//!
//! The public functions at the top of the module are the single
//! dispatch point: they forward to [`chunked`] normally and to [`simd`]
//! when the feature is enabled, so swapping the backend cannot change
//! call sites — and tests can compare all variants on the same column.
//!
//! ## Masking convention
//!
//! Lost rounds are stored with `min_ms`/`avg_ms` = `f32::INFINITY`
//! (never `NaN`); the kernels treat **every non-finite value as
//! masked**. A masked element can never become a minimum, is not
//! counted by [`count_at_or_below`], contributes `+0.0` to [`sum`], and
//! is excluded from [`percentile`]'s population — exactly the filter
//! `Ecdf::new` applies, so kernel order statistics are interchangeable
//! with ECDF ones.
//!
//! ## Tie-break contract
//!
//! [`min_argmin`] and [`region_min_scan`] reproduce the sequential
//! strict-`<` update rule: among all elements achieving the (numeric)
//! minimum, the **lowest index wins**. Lane-striped accumulators keep a
//! per-lane `(value, first index)` pair and the horizontal reduction
//! takes the lexicographic minimum with numeric value comparison, which
//! is exactly the first-index-wins answer (numeric comparison also
//! groups `-0.0`/`+0.0`, matching the sequential rule's behaviour when
//! both zeros appear). `CampaignFrame`'s append invariants are built on
//! this contract — see DESIGN.md §7g.
//!
//! ## Bucketed percentiles
//!
//! [`percentile`] is selection by fixed-width histogram: one pass for
//! the finite count and numeric min/max, one pass of bucket counts, and
//! a gather of the single bucket containing the requested rank, then an
//! exact `select_nth_unstable_by(total_cmp)` inside it. Because the
//! bucket map is monotone (subtraction and division by a positive
//! width are monotone under IEEE rounding) the k-th order statistic of
//! the population is the k'-th order statistic of its bucket, so the
//! result is the **exact** nearest-rank value — the error bound versus
//! a full sort is 0, not "one bucket width". Degenerate ranges (all
//! values equal, or a span too wide for a finite bucket width) fall
//! back to selecting over the whole population, which is still O(n).

use std::collections::HashMap;

use shears_atlas::ProbeId;

/// The columns [`region_min_scan`] reads, bundled so the scan has one
/// argument instead of four parallel slices callers could mis-zip.
/// All slices must be the same length (they are sub-slices of one
/// store's columns).
#[derive(Clone, Copy)]
pub struct ScanCols<'a> {
    /// Originating probe per row.
    pub probes: &'a [ProbeId],
    /// Target region per row.
    pub regions: &'a [u16],
    /// Minimum RTT per row (ms, `INFINITY` = lost round).
    pub min_ms: &'a [f32],
    /// Replies received per row (`0` = lost round).
    pub received: &'a [u8],
}

impl ScanCols<'_> {
    /// Number of rows in the (sub-)scan.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the scan covers no rows.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

/// Output of [`region_min_scan`]: the grouped minima and counters one
/// shard of a `CampaignFrame` build (or one append slice) produces.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedMinima {
    /// Sample count per probe (all samples, privileged included).
    pub counts: Vec<u32>,
    /// `(probe, region)` → `(min RTT, first store index achieving it)`
    /// over unprivileged responded samples.
    pub region_min: HashMap<(u32, u16), (f64, u32)>,
    /// Unprivileged samples seen.
    pub filtered: usize,
    /// Unprivileged responded samples seen.
    pub responded: usize,
}

impl GroupedMinima {
    fn new(n_probes: usize) -> Self {
        Self {
            counts: vec![0; n_probes],
            region_min: HashMap::new(),
            filtered: 0,
            responded: 0,
        }
    }
}

/// One row of the grouped scan — the sequential update rule every
/// variant must reproduce exactly.
#[inline(always)]
fn scan_row(cols: &ScanCols<'_>, privileged: &[bool], base: u32, i: usize, out: &mut GroupedMinima) {
    let p = cols.probes[i].index();
    out.counts[p] += 1;
    if privileged[p] {
        return;
    }
    out.filtered += 1;
    if cols.received[i] == 0 {
        return;
    }
    out.responded += 1;
    let v = f64::from(cols.min_ms[i]);
    let idx = base + i as u32;
    out.region_min
        .entry((cols.probes[i].0, cols.regions[i]))
        .and_modify(|e| {
            // Strict `<` keeps the first index achieving the min.
            if v < e.0 {
                *e = (v, idx);
            }
        })
        .or_insert((v, idx));
}

/// One bookkeeping-only row (chunks proven reply-free skip the rest).
#[inline(always)]
fn scan_row_lost(cols: &ScanCols<'_>, privileged: &[bool], i: usize, out: &mut GroupedMinima) {
    let p = cols.probes[i].index();
    out.counts[p] += 1;
    if !privileged[p] {
        out.filtered += 1;
    }
}

/// Lexicographic "is `a` a better (min, first-index) witness than `b`"
/// with numeric value comparison — the reduction rule shared by every
/// argmin variant. Values are finite or the `INFINITY` init sentinel,
/// never `NaN`, so the partial comparison is total here.
#[inline(always)]
fn better(a: (f32, u32), b: (f32, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Reduces lane accumulators plus a scalar tail into the final argmin.
#[inline]
fn reduce_argmin<const L: usize>(
    vals: [f32; L],
    idxs: [u32; L],
    tail: &[f32],
    tail_base: u32,
) -> Option<(f32, u32)> {
    let mut best = (f32::INFINITY, u32::MAX);
    for l in 0..L {
        if better((vals[l], idxs[l]), best) {
            best = (vals[l], idxs[l]);
        }
    }
    for (k, &v) in tail.iter().enumerate() {
        if v.is_finite() && better((v, tail_base + k as u32), best) {
            best = (v, tail_base + k as u32);
        }
    }
    (best.1 != u32::MAX).then_some(best)
}

/// How a windowed query should run over an `at`-style column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeQuery {
    /// The column is non-decreasing: rows `[lo, hi)` are exactly the
    /// rows in the half-open window.
    Slice(usize, usize),
    /// The column is unordered; the caller must filter row by row.
    Filter,
}

/// Number of histogram buckets for a population of `n` finite values.
/// Any count gives the same (exact) answer; this just balances the
/// counting pass against the candidate-bucket gather.
fn bucket_count(n: usize) -> usize {
    (n / 4).next_power_of_two().clamp(64, 4096)
}

/// Maps a value into its histogram bucket. Monotone in `v` (IEEE
/// subtraction and division by a positive finite width are monotone),
/// which is what makes bucketed selection exact.
#[inline(always)]
fn bucket_of(v: f64, min: f64, inv_width_b: f64, buckets: usize) -> usize {
    (((v - min) * inv_width_b) as usize).min(buckets - 1)
}

/// Shared tail of the bucketed selection: gather the candidate bucket
/// and select the exact rank inside it. `counts` is the bucket
/// histogram, `k` the global rank among finite values.
fn select_in_bucket(
    values: &[f64],
    counts: &[u32],
    k: usize,
    min: f64,
    inv_width_b: f64,
) -> f64 {
    let buckets = counts.len();
    let mut before = 0usize;
    let mut target = buckets - 1;
    for (b, &c) in counts.iter().enumerate() {
        let c = c as usize;
        if k < before + c {
            target = b;
            break;
        }
        before += c;
    }
    let mut candidates: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && bucket_of(*v, min, inv_width_b, buckets) == target)
        .collect();
    let k_in = k - before;
    let (_, v, _) = candidates.select_nth_unstable_by(k_in, f64::total_cmp);
    *v
}

/// Selection over the whole finite population — the degenerate-range
/// fallback (all values equal, or `max - min` not finite).
fn select_flat(values: &[f64], k: usize) -> f64 {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (_, v, _) = finite.select_nth_unstable_by(k, f64::total_cmp);
    *v
}

/// Nearest-rank index for quantile `q` over `n` samples — the exact
/// formula `Ecdf::quantile` uses.
#[inline]
fn nearest_rank(q: f64, n: usize) -> usize {
    let q = q.clamp(0.0, 1.0);
    ((q * n as f64).ceil() as usize)
        .saturating_sub(1)
        .min(n - 1)
}

// ====================================================================
// Scalar reference implementations
// ====================================================================

/// Plain per-element loops — the semantics every fast path must match
/// bit for bit.
pub mod scalar {
    use super::*;

    /// Masked min + argmin: least finite value, first index wins ties.
    pub fn min_argmin(values: &[f32]) -> Option<(f32, u32)> {
        let mut best = f32::INFINITY;
        let mut at = u32::MAX;
        for (i, &v) in values.iter().enumerate() {
            if v.is_finite() && v < best {
                best = v;
                at = i as u32;
            }
        }
        (at != u32::MAX).then_some((best, at))
    }

    /// Masked sum in lane-striped order: element `i` accumulates into
    /// accumulator `i % 8` (masked elements contribute `+0.0`), and the
    /// accumulators are combined left to right. The striping *is* the
    /// kernel's definition — it is what makes the fast paths bit-equal.
    pub fn sum(values: &[f32]) -> f64 {
        let mut acc = [0.0f64; 8];
        for (i, &v) in values.iter().enumerate() {
            acc[i % 8] += if v.is_finite() { f64::from(v) } else { 0.0 };
        }
        acc.iter().fold(0.0, |a, &b| a + b)
    }

    /// Mean of the finite values (`None` if there are none).
    pub fn mean(values: &[f32]) -> Option<f64> {
        let n = values.iter().filter(|v| v.is_finite()).count();
        (n > 0).then(|| sum(values) / n as f64)
    }

    /// Rows with at least one reply (`received != 0`).
    pub fn count_nonzero(values: &[u8]) -> usize {
        values.iter().filter(|&&v| v != 0).count()
    }

    /// Total packets across a `sent`/`received` column.
    pub fn sum_u8(values: &[u8]) -> u64 {
        values.iter().map(|&v| u64::from(v)).sum()
    }

    /// Finite values at or below `x` (the raw-column ECDF numerator).
    pub fn count_at_or_below(values: &[f32], x: f64) -> usize {
        values
            .iter()
            .filter(|v| v.is_finite() && f64::from(**v) <= x)
            .count()
    }

    /// Classifies a `[from, to)` window over an `at`-style column.
    pub fn range_partition<T: Copy + Ord>(col: &[T], from: T, to: T) -> RangeQuery {
        if col.windows(2).any(|w| w[0] > w[1]) {
            return RangeQuery::Filter;
        }
        let lo = col.partition_point(|&t| t < from);
        let hi = col.partition_point(|&t| t < to);
        RangeQuery::Slice(lo, hi)
    }

    /// Exact nearest-rank quantile over the finite values; `None` when
    /// none are finite. Identical to `Ecdf::new(values).quantile(q)`.
    pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
        let mut n = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_finite() {
                n += 1;
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
        }
        if n == 0 {
            return None;
        }
        let k = nearest_rank(q, n);
        let width = (max - min) / bucket_count(n) as f64;
        if !(width > 0.0) || !width.is_finite() {
            return Some(select_flat(values, k));
        }
        let buckets = bucket_count(n);
        let inv_width_b = 1.0 / width;
        let mut counts = vec![0u32; buckets];
        for &v in values {
            if v.is_finite() {
                counts[bucket_of(v, min, inv_width_b, buckets)] += 1;
            }
        }
        Some(select_in_bucket(values, &counts, k, min, inv_width_b))
    }

    /// The grouped `(probe, region)` minima scan behind the frame.
    pub fn region_min_scan(
        cols: &ScanCols<'_>,
        privileged: &[bool],
        base: u32,
        n_probes: usize,
    ) -> GroupedMinima {
        let mut out = GroupedMinima::new(n_probes);
        for i in 0..cols.len() {
            scan_row(cols, privileged, base, i, &mut out);
        }
        out
    }
}

// ====================================================================
// Chunked (autovectorisation-friendly) implementations
// ====================================================================

/// `chunks_exact` loops over lane-striped accumulators. No unstable
/// features: the loops are shaped so LLVM vectorises them on its own.
pub mod chunked {
    use super::*;

    /// Lane width for f32 striping (f32x8 = one AVX2 register).
    const L: usize = 8;
    /// Chunk width for u8 counting (one or two vector registers).
    const BYTES: usize = 64;

    /// See [`scalar::min_argmin`]; bit-identical.
    pub fn min_argmin(values: &[f32]) -> Option<(f32, u32)> {
        let mut vb = [f32::INFINITY; L];
        let mut ib = [u32::MAX; L];
        let mut base = 0u32;
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            for l in 0..L {
                let v = chunk[l];
                // Per-lane strict `<` keeps each lane's first witness;
                // the reduction resolves cross-lane ties by index.
                if v.is_finite() && v < vb[l] {
                    vb[l] = v;
                    ib[l] = base + l as u32;
                }
            }
            base += L as u32;
        }
        reduce_argmin(vb, ib, tail, base)
    }

    /// See [`scalar::sum`]; the striping is the same, so the bits are.
    pub fn sum(values: &[f32]) -> f64 {
        let mut acc = [0.0f64; L];
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            for l in 0..L {
                let v = chunk[l];
                acc[l] += if v.is_finite() { f64::from(v) } else { 0.0 };
            }
        }
        for (l, &v) in tail.iter().enumerate() {
            acc[l] += if v.is_finite() { f64::from(v) } else { 0.0 };
        }
        acc.iter().fold(0.0, |a, &b| a + b)
    }

    /// See [`scalar::mean`].
    pub fn mean(values: &[f32]) -> Option<f64> {
        let mut n = 0u32;
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            let mut c = 0u32;
            for &v in chunk {
                c += u32::from(v.is_finite());
            }
            n += c;
        }
        n += tail.iter().filter(|v| v.is_finite()).count() as u32;
        (n > 0).then(|| sum(values) / f64::from(n))
    }

    /// See [`scalar::count_nonzero`].
    pub fn count_nonzero(values: &[u8]) -> usize {
        let mut total = 0usize;
        let chunks = values.chunks_exact(BYTES);
        let tail = chunks.remainder();
        for chunk in chunks {
            let mut c = 0u32;
            for &v in chunk {
                c += u32::from(v != 0);
            }
            total += c as usize;
        }
        total + tail.iter().filter(|&&v| v != 0).count()
    }

    /// See [`scalar::sum_u8`].
    pub fn sum_u8(values: &[u8]) -> u64 {
        let mut total = 0u64;
        let chunks = values.chunks_exact(BYTES);
        let tail = chunks.remainder();
        for chunk in chunks {
            // 64 × 255 < 2^24: a u32 per chunk cannot overflow.
            let mut c = 0u32;
            for &v in chunk {
                c += u32::from(v);
            }
            total += u64::from(c);
        }
        total + tail.iter().map(|&v| u64::from(v)).sum::<u64>()
    }

    /// See [`scalar::count_at_or_below`].
    pub fn count_at_or_below(values: &[f32], x: f64) -> usize {
        let mut total = 0usize;
        let chunks = values.chunks_exact(L * 2);
        let tail = chunks.remainder();
        for chunk in chunks {
            let mut c = 0u32;
            for &v in chunk {
                c += u32::from(v.is_finite() && f64::from(v) <= x);
            }
            total += c as usize;
        }
        total
            + tail
                .iter()
                .filter(|v| v.is_finite() && f64::from(**v) <= x)
                .count()
    }

    /// See [`scalar::range_partition`]. The sortedness sweep runs in
    /// chunk-sized strides of independent comparisons.
    pub fn range_partition<T: Copy + Ord>(col: &[T], from: T, to: T) -> RangeQuery {
        let mut sorted = true;
        for w in col.chunks(BYTES) {
            let mut bad = false;
            for k in w.windows(2) {
                bad |= k[0] > k[1];
            }
            if bad {
                sorted = false;
                break;
            }
        }
        // Chunk seams: windows(2) inside chunks misses the joints.
        if sorted {
            let mut i = BYTES;
            while i < col.len() {
                if col[i - 1] > col[i] {
                    sorted = false;
                    break;
                }
                i += BYTES;
            }
        }
        if !sorted {
            return RangeQuery::Filter;
        }
        let lo = col.partition_point(|&t| t < from);
        let hi = col.partition_point(|&t| t < to);
        RangeQuery::Slice(lo, hi)
    }

    /// See [`scalar::percentile`]; identical ranks, buckets and
    /// selection — only the counting passes are restructured.
    pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
        let mut n = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for chunk in values.chunks(BYTES) {
            let mut c = 0u32;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in chunk {
                let finite = v.is_finite();
                c += u32::from(finite);
                if finite && v < lo {
                    lo = v;
                }
                if finite && v > hi {
                    hi = v;
                }
            }
            n += c as usize;
            if lo < min {
                min = lo;
            }
            if hi > max {
                max = hi;
            }
        }
        if n == 0 {
            return None;
        }
        let k = nearest_rank(q, n);
        let buckets = bucket_count(n);
        let width = (max - min) / buckets as f64;
        if !(width > 0.0) || !width.is_finite() {
            return Some(select_flat(values, k));
        }
        let inv_width_b = 1.0 / width;
        let mut counts = vec![0u32; buckets];
        let mut idx_scratch = [0usize; BYTES];
        for chunk in values.chunks(BYTES) {
            // Bucket indices vectorise; the scatter below does not, but
            // it touches a 4–32 KiB table that stays cache-hot.
            for (s, &v) in idx_scratch.iter_mut().zip(chunk) {
                *s = if v.is_finite() {
                    bucket_of(v, min, inv_width_b, buckets)
                } else {
                    usize::MAX
                };
            }
            for &b in &idx_scratch[..chunk.len()] {
                if b != usize::MAX {
                    counts[b] += 1;
                }
            }
        }
        Some(select_in_bucket(values, &counts, k, min, inv_width_b))
    }

    /// See [`scalar::region_min_scan`]. The fast path precomputes a
    /// per-chunk responded count (one vectorisable compare-sum), so
    /// chunks that are entirely lost rounds — blackout windows, chaos
    /// campaigns — skip the hash/update machinery per row.
    pub fn region_min_scan(
        cols: &ScanCols<'_>,
        privileged: &[bool],
        base: u32,
        n_probes: usize,
    ) -> GroupedMinima {
        let mut out = GroupedMinima::new(n_probes);
        let n = cols.len();
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + BYTES).min(n);
            let mut responded = 0u32;
            for &r in &cols.received[lo..hi] {
                responded += u32::from(r != 0);
            }
            if responded == 0 {
                for i in lo..hi {
                    scan_row_lost(cols, privileged, i, &mut out);
                }
            } else {
                for i in lo..hi {
                    scan_row(cols, privileged, base, i, &mut out);
                }
            }
            lo = hi;
        }
        out
    }
}

// ====================================================================
// std::simd implementations (feature = "simd", nightly toolchains)
// ====================================================================

/// Explicit `std::simd` variants. Same lane striping as [`chunked`]
/// (f32x8 / 64-byte blocks), so the results are bit-identical; the
/// difference is that vectorisation is guaranteed rather than hoped
/// for from the autovectoriser.
#[cfg(feature = "simd")]
pub mod simd {
    use super::*;
    use std::simd::prelude::*;
    // `Mask::select` lives on this trait (not in the prelude on every
    // nightly that ships portable_simd).
    use std::simd::Select as _;

    const L: usize = 8;
    const BYTES: usize = 64;

    /// See [`scalar::min_argmin`]; bit-identical.
    pub fn min_argmin(values: &[f32]) -> Option<(f32, u32)> {
        let mut vb = f32x8::splat(f32::INFINITY);
        let mut ib = u32x8::splat(u32::MAX);
        let mut idx = u32x8::from_array([0, 1, 2, 3, 4, 5, 6, 7]);
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        let mut base = 0u32;
        for chunk in chunks {
            let v = f32x8::from_slice(chunk);
            let m = v.is_finite() & v.simd_lt(vb);
            vb = m.select(v, vb);
            ib = m.select(idx, ib);
            idx += u32x8::splat(L as u32);
            base += L as u32;
        }
        reduce_argmin(vb.to_array(), ib.to_array(), tail, base)
    }

    /// See [`scalar::sum`]; same striped accumulation order.
    pub fn sum(values: &[f32]) -> f64 {
        let mut acc = f64x8::splat(0.0);
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = f32x8::from_slice(chunk);
            let masked = v.is_finite().select(v, f32x8::splat(0.0));
            acc += masked.cast::<f64>();
        }
        let mut lanes = acc.to_array();
        for (l, &v) in tail.iter().enumerate() {
            lanes[l] += if v.is_finite() { f64::from(v) } else { 0.0 };
        }
        lanes.iter().fold(0.0, |a, &b| a + b)
    }

    /// See [`scalar::mean`].
    pub fn mean(values: &[f32]) -> Option<f64> {
        let mut n = 0u32;
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = f32x8::from_slice(chunk);
            n += v.is_finite().to_bitmask().count_ones();
        }
        n += tail.iter().filter(|v| v.is_finite()).count() as u32;
        (n > 0).then(|| sum(values) / f64::from(n))
    }

    /// See [`scalar::count_nonzero`].
    pub fn count_nonzero(values: &[u8]) -> usize {
        let mut total = 0usize;
        let chunks = values.chunks_exact(BYTES);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = u8x64::from_slice(chunk);
            total += v.simd_ne(u8x64::splat(0)).to_bitmask().count_ones() as usize;
        }
        total + tail.iter().filter(|&&v| v != 0).count()
    }

    /// See [`scalar::sum_u8`].
    pub fn sum_u8(values: &[u8]) -> u64 {
        let mut total = 0u64;
        let chunks = values.chunks_exact(BYTES);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = u8x64::from_slice(chunk);
            total += u64::from(v.cast::<u16>().reduce_sum());
        }
        total + tail.iter().map(|&v| u64::from(v)).sum::<u64>()
    }

    /// See [`scalar::count_at_or_below`].
    pub fn count_at_or_below(values: &[f32], x: f64) -> usize {
        // The f64 threshold comparison is done in f64 per the scalar
        // definition; widen each f32 block before comparing.
        let mut total = 0usize;
        let xs = f64x8::splat(x);
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        for chunk in chunks {
            let v = f32x8::from_slice(chunk);
            let wide = v.cast::<f64>();
            let m = v.is_finite().cast::<i64>() & wide.simd_le(xs);
            total += m.to_bitmask().count_ones() as usize;
        }
        total
            + tail
                .iter()
                .filter(|v| v.is_finite() && f64::from(**v) <= x)
                .count()
    }

    /// See [`scalar::range_partition`]. Sortedness via shifted u64
    /// lane compares when the element is `u64`-shaped is left to the
    /// autovectoriser here: the generic bound keeps one implementation.
    pub fn range_partition<T: Copy + Ord>(col: &[T], from: T, to: T) -> RangeQuery {
        chunked::range_partition(col, from, to)
    }

    /// See [`scalar::percentile`]; min/max/count pass in f64x8 lanes.
    pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
        let mut n = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let chunks = values.chunks_exact(L);
        let tail = chunks.remainder();
        let mut lo = f64x8::splat(f64::INFINITY);
        let mut hi = f64x8::splat(f64::NEG_INFINITY);
        for chunk in chunks {
            let v = f64x8::from_slice(chunk);
            let m = v.is_finite();
            n += m.to_bitmask().count_ones() as usize;
            lo = m.select(v.simd_min(lo), lo);
            hi = m.select(v.simd_max(hi), hi);
        }
        for l in lo.to_array() {
            if l < min {
                min = l;
            }
        }
        for h in hi.to_array() {
            if h > max {
                max = h;
            }
        }
        for &v in tail {
            if v.is_finite() {
                n += 1;
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
        }
        if n == 0 {
            return None;
        }
        let k = nearest_rank(q, n);
        let buckets = bucket_count(n);
        let width = (max - min) / buckets as f64;
        if !(width > 0.0) || !width.is_finite() {
            return Some(select_flat(values, k));
        }
        let inv_width_b = 1.0 / width;
        let mins = f64x8::splat(min);
        let invs = f64x8::splat(inv_width_b);
        let mut counts = vec![0u32; buckets];
        for chunk in values.chunks_exact(L) {
            let v = f64x8::from_slice(chunk);
            let idx = ((v - mins) * invs).cast::<u64>();
            let finite = v.is_finite().to_bitmask();
            let lanes = idx.to_array();
            for (l, &b) in lanes.iter().enumerate() {
                if finite & (1 << l) != 0 {
                    counts[(b as usize).min(buckets - 1)] += 1;
                }
            }
        }
        for &v in values.chunks_exact(L).remainder() {
            if v.is_finite() {
                counts[bucket_of(v, min, inv_width_b, buckets)] += 1;
            }
        }
        Some(select_in_bucket(values, &counts, k, min, inv_width_b))
    }

    /// See [`scalar::region_min_scan`]; the per-chunk responded mask
    /// is one `u8x64` compare.
    pub fn region_min_scan(
        cols: &ScanCols<'_>,
        privileged: &[bool],
        base: u32,
        n_probes: usize,
    ) -> GroupedMinima {
        let mut out = GroupedMinima::new(n_probes);
        let n = cols.len();
        let mut lo = 0usize;
        while lo + BYTES <= n {
            let hi = lo + BYTES;
            let v = u8x64::from_slice(&cols.received[lo..hi]);
            if v.simd_ne(u8x64::splat(0)).to_bitmask() == 0 {
                for i in lo..hi {
                    scan_row_lost(cols, privileged, i, &mut out);
                }
            } else {
                for i in lo..hi {
                    scan_row(cols, privileged, base, i, &mut out);
                }
            }
            lo = hi;
        }
        for i in lo..n {
            scan_row(cols, privileged, base, i, &mut out);
        }
        out
    }
}

// ====================================================================
// The dispatch point
// ====================================================================

#[cfg(feature = "simd")]
use simd as active;

#[cfg(not(feature = "simd"))]
use chunked as active;

/// Masked min + argmin over an RTT column: the least finite value and
/// the first store index achieving it (`INFINITY` loss markers and any
/// `NaN` can never win). `None` when no value is finite.
pub fn min_argmin(values: &[f32]) -> Option<(f32, u32)> {
    active::min_argmin(values)
}

/// Masked sum of the finite values, in the kernel's fixed lane-striped
/// accumulation order (see [`scalar::sum`] for the definition).
pub fn sum(values: &[f32]) -> f64 {
    active::sum(values)
}

/// Mean of the finite values; `None` when none are finite.
pub fn mean(values: &[f32]) -> Option<f64> {
    active::mean(values)
}

/// Number of non-zero bytes — rounds with ≥1 reply when applied to the
/// store's `received` column.
pub fn count_nonzero(values: &[u8]) -> usize {
    active::count_nonzero(values)
}

/// Total of a `u8` column — packets sent/received across a campaign.
pub fn sum_u8(values: &[u8]) -> u64 {
    active::sum_u8(values)
}

/// Finite values at or below `x` — the numerator of an ECDF evaluated
/// directly on an unsorted column.
pub fn count_at_or_below(values: &[f32], x: f64) -> usize {
    active::count_at_or_below(values, x)
}

/// Classifies a half-open `[from, to)` window over an `at`-style
/// column: a binary-searched slice when the column is non-decreasing
/// (every round-major producer in the tree), a row filter otherwise.
pub fn range_partition<T: Copy + Ord>(col: &[T], from: T, to: T) -> RangeQuery {
    active::range_partition(col, from, to)
}

/// Exact nearest-rank quantile of the finite values by bucketed
/// selection — bit-identical to `Ecdf::new(values.to_vec()).quantile(q)`
/// without the copy or the full sort. `None` when no value is finite.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    active::percentile(values, q)
}

/// Exact median by selection (see [`percentile`]).
pub fn median(values: &[f64]) -> Option<f64> {
    active::percentile(values, 0.5)
}

/// The grouped `(probe, region)` minima scan `CampaignFrame` builds
/// and appends run: per-probe sample counts, privileged filtering,
/// and first-index-wins minima over responded rows.
pub fn region_min_scan(
    cols: &ScanCols<'_>,
    privileged: &[bool],
    base: u32,
    n_probes: usize,
) -> GroupedMinima {
    active::region_min_scan(cols, privileged, base, n_probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Ecdf;

    /// SplitMix64 — self-contained generator for adversarial columns.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// RTT-ish column with loss markers, NaN, ties and both zeros.
    fn adversarial_f32(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| match splitmix(&mut s) % 16 {
                0 => f32::INFINITY,
                1 => f32::NAN,
                2 => 42.5, // frequent exact tie
                3 => 0.0,
                4 => -0.0,
                r => (r as f32) * 7.25 + ((splitmix(&mut s) % 1000) as f32) / 64.0,
            })
            .collect()
    }

    fn adversarial_f64(len: usize, seed: u64) -> Vec<f64> {
        adversarial_f32(len, seed).iter().map(|&v| f64::from(v)).collect()
    }

    /// Lengths around every chunk/lane boundary, plus empty.
    const LENGTHS: [usize; 12] = [0, 1, 2, 7, 8, 9, 31, 63, 64, 65, 200, 1023];

    #[test]
    fn min_argmin_variants_agree_on_adversarial_columns() {
        for len in LENGTHS {
            for seed in 0..8u64 {
                let col = adversarial_f32(len, seed);
                let want = scalar::min_argmin(&col);
                assert_eq!(chunked::min_argmin(&col), want, "len {len} seed {seed}");
                #[cfg(feature = "simd")]
                assert_eq!(simd::min_argmin(&col), want, "len {len} seed {seed}");
                assert_eq!(min_argmin(&col), want);
                // Pin the semantics against a from-first-principles
                // reference: least finite value, first index.
                let reference = col
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_finite())
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                    .map(|(i, &v)| (v, i as u32));
                if let (Some((rv, ri)), Some((gv, gi))) = (reference, want) {
                    assert_eq!(ri, gi, "len {len} seed {seed}");
                    assert_eq!(rv.to_bits(), gv.to_bits());
                } else {
                    assert_eq!(reference.is_none(), want.is_none());
                }
            }
        }
    }

    #[test]
    fn min_argmin_first_index_wins_exact_ties() {
        let col = [f32::INFINITY, 5.0, 3.25, f32::NAN, 3.25, 9.0, 3.25];
        assert_eq!(min_argmin(&col), Some((3.25, 2)));
        // A tie that lands in a different lane must still lose.
        let mut long = vec![f32::INFINITY; 40];
        long[9] = 1.5;
        long[24] = 1.5;
        assert_eq!(scalar::min_argmin(&long), Some((1.5, 9)));
        assert_eq!(chunked::min_argmin(&long), Some((1.5, 9)));
        #[cfg(feature = "simd")]
        assert_eq!(simd::min_argmin(&long), Some((1.5, 9)));
    }

    #[test]
    fn min_argmin_masks_all_loss_columns() {
        assert_eq!(min_argmin(&[]), None);
        assert_eq!(min_argmin(&[f32::INFINITY; 100]), None);
        assert_eq!(min_argmin(&[f32::NAN, f32::INFINITY]), None);
    }

    #[test]
    fn sum_and_mean_variants_are_bit_identical() {
        for len in LENGTHS {
            for seed in 0..4u64 {
                let col = adversarial_f32(len, seed);
                let want = scalar::sum(&col);
                assert_eq!(chunked::sum(&col).to_bits(), want.to_bits());
                #[cfg(feature = "simd")]
                assert_eq!(simd::sum(&col).to_bits(), want.to_bits());
                let want_mean = scalar::mean(&col);
                let got = mean(&col);
                assert_eq!(
                    got.map(f64::to_bits),
                    want_mean.map(f64::to_bits),
                    "len {len} seed {seed}"
                );
            }
        }
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[f32::INFINITY]), None);
    }

    #[test]
    fn byte_counts_agree_across_variants() {
        for len in LENGTHS {
            let mut s = len as u64 + 7;
            let col: Vec<u8> = (0..len).map(|_| (splitmix(&mut s) % 4) as u8).collect();
            let want = scalar::count_nonzero(&col);
            assert_eq!(chunked::count_nonzero(&col), want, "len {len}");
            #[cfg(feature = "simd")]
            assert_eq!(simd::count_nonzero(&col), want, "len {len}");
            let want_sum = scalar::sum_u8(&col);
            assert_eq!(chunked::sum_u8(&col), want_sum);
            #[cfg(feature = "simd")]
            assert_eq!(simd::sum_u8(&col), want_sum);
        }
        // Saturation: a chunk of 255s must not overflow intermediates.
        let maxed = vec![255u8; 130];
        assert_eq!(sum_u8(&maxed), 255 * 130);
        assert_eq!(count_nonzero(&maxed), 130);
    }

    #[test]
    fn count_at_or_below_matches_the_ecdf_numerator() {
        for len in LENGTHS {
            for seed in 3..6u64 {
                let col = adversarial_f32(len, seed);
                for x in [-1.0, 0.0, 7.25, 42.5, 1e9] {
                    let want = scalar::count_at_or_below(&col, x);
                    assert_eq!(chunked::count_at_or_below(&col, x), want);
                    #[cfg(feature = "simd")]
                    assert_eq!(simd::count_at_or_below(&col, x), want);
                    // ECDF equivalence: same population, same count —
                    // compared as count/len fractions (bitwise: both
                    // sides are the same integer division), because
                    // frac * len round-trips with rounding error.
                    let e = Ecdf::new(col.iter().map(|&v| f64::from(v)).collect());
                    if !e.is_empty() {
                        let frac = e.fraction_at_or_below(x);
                        assert_eq!(
                            frac.to_bits(),
                            (want as f64 / e.len() as f64).to_bits(),
                            "len {len} seed {seed} x {x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_partition_classifies_sorted_and_unsorted() {
        for len in LENGTHS {
            let sorted: Vec<u64> = (0..len as u64).map(|i| i * 3).collect();
            let q = scalar::range_partition(&sorted, 5, 20);
            assert_eq!(chunked::range_partition(&sorted, 5, 20), q);
            if let RangeQuery::Slice(lo, hi) = q {
                let expect: Vec<u64> = sorted
                    .iter()
                    .copied()
                    .filter(|&t| (5..20).contains(&t))
                    .collect();
                assert_eq!(&sorted[lo..hi], &expect[..], "len {len}");
            } else {
                panic!("sorted column must slice");
            }
        }
        // One inversion anywhere — including across a chunk seam —
        // must demote to Filter.
        for flip in [1usize, 63, 64, 65, 127, 128] {
            let mut col: Vec<u64> = (0..200u64).collect();
            col.swap(flip, flip - 1);
            assert_eq!(scalar::range_partition(&col, 0, 10), RangeQuery::Filter);
            assert_eq!(chunked::range_partition(&col, 0, 10), RangeQuery::Filter);
        }
        // Ties are fine: non-decreasing is sorted enough.
        let ties = vec![4u64; 100];
        assert!(matches!(
            range_partition(&ties, 4, 5),
            RangeQuery::Slice(0, 100)
        ));
    }

    #[test]
    fn percentile_is_bit_identical_to_the_ecdf_path() {
        for len in LENGTHS {
            for seed in 0..6u64 {
                let col = adversarial_f64(len, seed);
                let e = Ecdf::new(col.clone());
                for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0, 2.0] {
                    let want = e.quantile(q);
                    for (name, got) in [
                        ("scalar", scalar::percentile(&col, q)),
                        ("chunked", chunked::percentile(&col, q)),
                        #[cfg(feature = "simd")]
                        ("simd", simd::percentile(&col, q)),
                    ] {
                        assert_eq!(
                            got.map(f64::to_bits),
                            want.map(f64::to_bits),
                            "{name} len {len} seed {seed} q {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn percentile_handles_degenerate_populations() {
        // All equal: width 0 falls back to flat selection.
        let flat = vec![13.5f64; 100];
        assert_eq!(percentile(&flat, 0.5), Some(13.5));
        // Mixed zeros: total_cmp ordering must hold at the boundary.
        let zeros: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 0.0 } else { -0.0 }).collect();
        let e = Ecdf::new(zeros.clone());
        for q in [0.0, 0.3, 0.5, 0.9, 1.0] {
            assert_eq!(
                percentile(&zeros, q).map(f64::to_bits),
                e.quantile(q).map(f64::to_bits)
            );
        }
        // A span too wide for a finite bucket width.
        let wide = vec![f64::MIN / 2.0, 0.0, f64::MAX / 2.0, f64::MAX];
        let e = Ecdf::new(wide.clone());
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(percentile(&wide, q), e.quantile(q));
        }
        // Nothing finite.
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_shortcut_matches_percentile() {
        let col = adversarial_f64(333, 9);
        assert_eq!(
            median(&col).map(f64::to_bits),
            percentile(&col, 0.5).map(f64::to_bits)
        );
    }

    fn adversarial_scan(len: usize, n_probes: usize, seed: u64) -> (Vec<ProbeId>, Vec<u16>, Vec<f32>, Vec<u8>, Vec<bool>) {
        let mut s = seed;
        let probes: Vec<ProbeId> = (0..len)
            .map(|_| ProbeId((splitmix(&mut s) % n_probes as u64) as u32))
            .collect();
        let regions: Vec<u16> = (0..len).map(|_| (splitmix(&mut s) % 5) as u16).collect();
        let received: Vec<u8> = (0..len).map(|_| (splitmix(&mut s) % 3 != 0) as u8 * 3).collect();
        let min_ms: Vec<f32> = received
            .iter()
            .map(|&r| {
                if r == 0 {
                    f32::INFINITY
                } else {
                    // Coarse quantisation forces plenty of exact ties.
                    ((splitmix(&mut s) % 8) as f32) * 10.0
                }
            })
            .collect();
        let privileged: Vec<bool> = (0..n_probes).map(|p| p % 7 == 0).collect();
        (probes, regions, min_ms, received, privileged)
    }

    #[test]
    fn region_min_scan_variants_agree_with_the_scalar_reference() {
        for len in [0usize, 1, 63, 64, 65, 200, 777] {
            for seed in 0..4u64 {
                let (probes, regions, min_ms, received, privileged) =
                    adversarial_scan(len, 11, seed);
                let cols = ScanCols {
                    probes: &probes,
                    regions: &regions,
                    min_ms: &min_ms,
                    received: &received,
                };
                let want = scalar::region_min_scan(&cols, &privileged, 1000, 11);
                assert_eq!(
                    chunked::region_min_scan(&cols, &privileged, 1000, 11),
                    want,
                    "len {len} seed {seed}"
                );
                #[cfg(feature = "simd")]
                assert_eq!(simd::region_min_scan(&cols, &privileged, 1000, 11), want);
                // Invariants the frame depends on.
                assert_eq!(want.counts.iter().map(|&c| c as usize).sum::<usize>(), len);
                assert!(want.responded <= want.filtered && want.filtered <= len);
                for (&(p, _), &(v, idx)) in &want.region_min {
                    assert!(!privileged[p as usize]);
                    assert!(v.is_finite());
                    assert!(idx >= 1000 && idx < 1000 + len as u32, "global index");
                }
            }
        }
    }

    #[test]
    fn region_min_scan_skips_all_lost_chunks_without_losing_bookkeeping() {
        // 3 chunks of entirely lost rounds: counts and filtered still
        // accumulate, no minima appear.
        let n = 192;
        let probes: Vec<ProbeId> = (0..n).map(|i| ProbeId(i as u32 % 4)).collect();
        let regions = vec![0u16; n];
        let min_ms = vec![f32::INFINITY; n];
        let received = vec![0u8; n];
        let privileged = vec![false, true, false, false];
        let cols = ScanCols {
            probes: &probes,
            regions: &regions,
            min_ms: &min_ms,
            received: &received,
        };
        for scan in [
            scalar::region_min_scan(&cols, &privileged, 0, 4),
            chunked::region_min_scan(&cols, &privileged, 0, 4),
            #[cfg(feature = "simd")]
            simd::region_min_scan(&cols, &privileged, 0, 4),
        ] {
            assert_eq!(scan.counts, vec![48; 4]);
            assert_eq!(scan.filtered, 144, "privileged probe 1 excluded");
            assert_eq!(scan.responded, 0);
            assert!(scan.region_min.is_empty());
        }
    }
}
