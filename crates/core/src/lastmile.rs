//! §4.3 "Nature of last-mile access" — Figure 7.
//!
//! The paper compares probes tagged wired against probes tagged
//! wireless, with two hygiene steps reproduced here: the sets are
//! restricted to countries present in *both* (so geography cancels
//! out), and probes whose baseline latency is wildly out of line with
//! their country's average are dropped (mis-tagged or broken hosts).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use shears_atlas::ProbeId;
use shears_netsim::SimTime;

use crate::data::CampaignData;
use crate::kernels;

/// Multiple of the country-median baseline beyond which a probe is
/// considered out of line and excluded (the paper's "verify that their
/// baseline latency is in line with their country's average").
const BASELINE_OUTLIER_FACTOR: f64 = 3.0;

/// One time bin of the Fig. 7 series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LastMileBin {
    /// Bin start.
    pub at: SimTime,
    /// Median wired RTT in the bin, ms (`None` if no samples).
    pub wired_ms: Option<f64>,
    /// Median wireless RTT in the bin, ms.
    pub wireless_ms: Option<f64>,
}

/// The Fig. 7 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LastMileReport {
    /// Time series over the campaign.
    pub bins: Vec<LastMileBin>,
    /// Campaign-wide median RTT of the wired set, ms.
    pub wired_median_ms: f64,
    /// Campaign-wide median RTT of the wireless set, ms.
    pub wireless_median_ms: f64,
    /// Wireless ÷ wired (paper: ≈2.5×).
    pub ratio: f64,
    /// Added latency, wireless − wired medians (paper cites 10–40 ms).
    pub added_ms: f64,
    /// Wired probes that survived matching + baseline checks.
    pub wired_probes: usize,
    /// Wireless probes that survived.
    pub wireless_probes: usize,
    /// Countries contributing to both sets.
    pub matched_countries: usize,
}

/// Runs the Fig. 7 analysis. `bin_width` controls the time-series
/// resolution (e.g. one day).
pub fn last_mile_report(data: &CampaignData<'_>, bin_width: SimTime) -> Option<LastMileReport> {
    assert!(bin_width.as_nanos() > 0, "bin width must be positive");
    let frame = data.frame();
    // 1. Tag-based selection (privileged exclusion via the frame mask).
    let probes = data.platform().probes();
    let wired_set: Vec<_> = probes
        .iter()
        .filter(|p| !frame.is_privileged(p.id) && p.is_wired_tagged())
        .collect();
    let wireless_set: Vec<_> = probes
        .iter()
        .filter(|p| !frame.is_privileged(p.id) && p.is_wireless_tagged())
        .collect();

    // 2. Country matching.
    let wired_countries: BTreeSet<&str> = wired_set.iter().map(|p| p.country.as_str()).collect();
    let wireless_countries: BTreeSet<&str> =
        wireless_set.iter().map(|p| p.country.as_str()).collect();
    let matched: BTreeSet<&str> = wired_countries
        .intersection(&wireless_countries)
        .copied()
        .collect();
    if matched.is_empty() {
        return None;
    }

    // 3. Baseline verification: a probe's baseline (campaign minimum to
    //    its closest DC) must be within BASELINE_OUTLIER_FACTOR of its
    //    country's median baseline among *wired* probes (the reference
    //    for what the country's network can do). Baselines come from
    //    the frame's precomputed per-probe minima.
    let mut wired_baselines_by_country: HashMap<&str, Vec<f64>> = HashMap::new();
    for p in &wired_set {
        if let Some(b) = frame.probe_min(p.id) {
            wired_baselines_by_country
                .entry(p.country.as_str())
                .or_default()
                .push(b);
        }
    }
    let country_median: HashMap<&str, f64> = wired_baselines_by_country
        .into_iter()
        .filter_map(|(c, v)| kernels::median(&v).map(|m| (c, m)))
        .collect();
    let in_line = |id: ProbeId, country: &str| -> bool {
        match (frame.probe_min(id), country_median.get(country)) {
            (Some(b), Some(&m)) => b <= m * BASELINE_OUTLIER_FACTOR,
            _ => false,
        }
    };
    let wired_ids: BTreeSet<ProbeId> = wired_set
        .iter()
        .filter(|p| matched.contains(p.country.as_str()) && in_line(p.id, &p.country))
        .map(|p| p.id)
        .collect();
    // Wireless probes are expected to sit above the wired baseline, so
    // their in-line check is against the factor-scaled wired median too
    // (a wireless probe 3× the wired median is plausible; 30× is not).
    let wireless_ids: BTreeSet<ProbeId> = wireless_set
        .iter()
        .filter(|p| {
            matched.contains(p.country.as_str())
                && match (frame.probe_min(p.id), country_median.get(p.country.as_str())) {
                    (Some(b), Some(&m)) => b <= m * BASELINE_OUTLIER_FACTOR * 3.0,
                    _ => false,
                }
        })
        .map(|p| p.id)
        .collect();
    if wired_ids.is_empty() || wireless_ids.is_empty() {
        return None;
    }

    // 4. Time-binned medians over closest-DC rounds.
    let mut wired_all = Vec::new();
    let mut wireless_all = Vec::new();
    let mut bin_samples: HashMap<u64, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for (probe, sample) in data.filtered_responded() {
        let v = f64::from(sample.min_ms);
        let bin = sample.at.as_nanos() / bin_width.as_nanos();
        if wired_ids.contains(&probe.id) {
            wired_all.push(v);
            bin_samples.entry(bin).or_default().0.push(v);
        } else if wireless_ids.contains(&probe.id) {
            wireless_all.push(v);
            bin_samples.entry(bin).or_default().1.push(v);
        }
    }
    let mut bins: Vec<LastMileBin> = bin_samples
        .into_iter()
        .map(|(bin, (wired, wireless))| LastMileBin {
            at: SimTime::from_nanos(bin * bin_width.as_nanos()),
            // Selection-kernel medians: exact nearest-rank, no sort.
            wired_ms: kernels::median(&wired),
            wireless_ms: kernels::median(&wireless),
        })
        .collect();
    bins.sort_by_key(|b| b.at);

    let wired_median_ms = kernels::median(&wired_all)?;
    let wireless_median_ms = kernels::median(&wireless_all)?;
    Some(LastMileReport {
        bins,
        wired_median_ms,
        wireless_median_ms,
        ratio: wireless_median_ms / wired_median_ms,
        added_ms: wireless_median_ms - wired_median_ms,
        wired_probes: wired_ids.len(),
        wireless_probes: wireless_ids.len(),
        matched_countries: matched.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn campaign_data() -> (Platform, shears_atlas::ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 500,
                seed: 44,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 8,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn wireless_is_slower_by_the_papers_factor() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let report = last_mile_report(&data, SimTime::from_hours(6)).expect("both sets populated");
        assert!(report.ratio > 1.3, "ratio {} too small", report.ratio);
        assert!(report.ratio < 6.0, "ratio {} implausibly large", report.ratio);
        // Added latency in the 10–40 ms window the paper cites (we allow
        // some slack on both sides for a small run).
        assert!(
            (5.0..=80.0).contains(&report.added_ms),
            "added {} ms",
            report.added_ms
        );
        assert!(report.matched_countries >= 5);
        assert!(report.wired_probes > report.wireless_probes);
    }

    #[test]
    fn bins_cover_the_campaign_in_order() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let report = last_mile_report(&data, SimTime::from_hours(6)).unwrap();
        assert!(!report.bins.is_empty());
        assert!(report.bins.windows(2).all(|w| w[0].at < w[1].at));
        // Per-bin medians mostly preserve the ordering.
        let consistent = report
            .bins
            .iter()
            .filter_map(|b| Some((b.wired_ms?, b.wireless_ms?)))
            .filter(|(wd, wl)| wl > wd)
            .count();
        let total = report
            .bins
            .iter()
            .filter(|b| b.wired_ms.is_some() && b.wireless_ms.is_some())
            .count();
        assert!(
            consistent * 4 >= total * 3,
            "wireless slower in only {consistent}/{total} bins"
        );
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let _ = last_mile_report(&data, SimTime::ZERO);
    }
}
