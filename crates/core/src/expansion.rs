//! EXT3: the cloud-expansion ablation.
//!
//! §4 motivates the re-evaluation with a decade of build-out: "Amazon's
//! cloud has increased from 3 to 22 datacenter locations" and CDN
//! latencies fell from ~100 ms to 10–25 ms. This module compares two
//! campaign runs — one against a year-restricted catalogue snapshot,
//! one against the full catalogue — and quantifies how much of today's
//! "cloud is close enough" is down to that expansion.

use serde::{Deserialize, Serialize};
use shears_geo::Continent;

use crate::data::CampaignData;
use crate::proximity::probe_min_cdfs;
use crate::stats::ks_distance;

/// Per-continent before/after medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpansionRow {
    /// Continent.
    pub continent: Continent,
    /// Median per-probe minimum against the old catalogue, ms.
    pub old_median_ms: Option<f64>,
    /// Median per-probe minimum against the new catalogue, ms.
    pub new_median_ms: Option<f64>,
    /// Kolmogorov–Smirnov distance between the two minima distributions.
    pub ks: f64,
}

impl ExpansionRow {
    /// Multiplicative improvement (old ÷ new), when both medians exist.
    pub fn improvement(&self) -> Option<f64> {
        match (self.old_median_ms, self.new_median_ms) {
            (Some(o), Some(n)) if n > 0.0 => Some(o / n),
            _ => None,
        }
    }
}

/// The EXT3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpansionReport {
    /// Label of the old snapshot (e.g. "2010").
    pub old_label: String,
    /// Label of the new snapshot.
    pub new_label: String,
    /// One row per continent.
    pub rows: Vec<ExpansionRow>,
}

impl ExpansionReport {
    /// Row lookup.
    pub fn continent(&self, c: Continent) -> Option<&ExpansionRow> {
        self.rows.iter().find(|r| r.continent == c)
    }
}

/// Compares two campaigns (typically: catalogue snapshot year X vs the
/// full catalogue, same fleet seed so the probe population is
/// identical).
///
/// Each campaign's per-probe minima come out of its memoized
/// [`crate::frame::CampaignFrame`] via [`probe_min_cdfs`], so comparing
/// the two snapshots costs two index builds, not repeated store scans.
pub fn compare(
    old: &CampaignData<'_>,
    old_label: &str,
    new: &CampaignData<'_>,
    new_label: &str,
) -> ExpansionReport {
    let old_cdfs = probe_min_cdfs(old);
    let new_cdfs = probe_min_cdfs(new);
    let rows = Continent::ALL
        .iter()
        .map(|&c| {
            let o = old_cdfs.continent(c);
            let n = new_cdfs.continent(c);
            ExpansionRow {
                continent: c,
                old_median_ms: o.and_then(|e| e.median()),
                new_median_ms: n.and_then(|e| e.median()),
                ks: match (o, n) {
                    (Some(a), Some(b)) if !a.is_empty() && !b.is_empty() => ks_distance(a, b),
                    _ => 0.0,
                },
            }
        })
        .collect();
    ExpansionReport {
        old_label: old_label.to_string(),
        new_label: new_label.to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CampaignData;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn run(year: Option<u16>) -> (Platform, shears_atlas::ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 250,
                seed: 77, // same fleet both runs
            },
            catalog_year: year,
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 4,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn expansion_improved_every_continent() {
        let (p_old, s_old) = run(Some(2010));
        let (p_new, s_new) = run(None);
        let report = compare(
            &CampaignData::new(&p_old, &s_old),
            "2010",
            &CampaignData::new(&p_new, &s_new),
            "2020",
        );
        assert_eq!(report.rows.len(), 6);
        let mut improved = 0;
        for row in &report.rows {
            if let Some(f) = row.improvement() {
                assert!(
                    f >= 0.95,
                    "{}: 2020 should not be slower (factor {f})",
                    row.continent
                );
                if f > 1.1 {
                    improved += 1;
                }
            }
        }
        assert!(improved >= 3, "only {improved} continents improved >10 %");
        // Europe specifically: 2010's AWS had only Dublin; 2020 has a
        // dense mesh, so the improvement should be clear.
        let eu = report.continent(Continent::Europe).unwrap();
        assert!(
            eu.improvement().unwrap() > 1.2,
            "EU improvement {:?}",
            eu.improvement()
        );
        assert!(eu.ks > 0.1, "EU KS {}", eu.ks);
    }
}
