//! The single-pass indexed view every analysis queries.
//!
//! [`CampaignFrame`] is built from a platform and a result store in one
//! parallel columnar scan (crossbeam scoped threads, the same
//! shard-and-merge idiom as `Campaign::run_parallel`), then kept
//! current **incrementally**: [`CampaignFrame::append`] folds newly
//! landed store rows into every index in O(new samples) instead of
//! rescanning the campaign. It precomputes everything the figure
//! modules used to re-derive with their own O(n) passes:
//!
//! * the §4.1 **privileged mask** (one `bool` per probe, so the filter
//!   is an index instead of a per-sample tag scan);
//! * a **per-probe partition** of sample indices (the indexed
//!   replacement for `ResultStore::by_probe`'s full-store filter);
//! * **per-probe / per-country / per-(probe, region) minima**, the
//!   statistics behind Figs. 4 and 5;
//! * the **closest-datacenter resolution** behind
//!   `CampaignData::samples_to_closest_dc` (Fig. 6's population),
//!   cached as row indices in store order;
//! * a **time-sorted round index** for windowed queries (the indexed
//!   replacement for `ResultStore::in_window`).
//!
//! Since the columnar refactor the frame *owns* its indexes (no
//! borrows), so a long-lived service can hold a frame next to its
//! growing store and feed it appends; queries that materialise sample
//! data take the store (and platform, where probe records are joined)
//! as arguments. The scan iterates the store's dense columns — probe,
//! region, `min_ms`, received — instead of striding 24-byte records.
//!
//! The contract is build-once / append-many / query-many, and every
//! state is bit-identical to a from-scratch rebuild of the same rows:
//! minima are plain `f64` mins over the same sample sets, and the
//! best-region tie-break reproduces the sequential first-sample-wins
//! rule exactly by tracking `(value, first store index achieving it)`
//! pairs — shard merges take the lexicographic minimum, and appended
//! rows (which always carry larger indices) only ever win by a strict
//! value improvement.

use std::collections::{BTreeMap, HashMap};

use crossbeam::thread;
use shears_atlas::{Platform, Probe, ProbeId, ResultStore, RttSample};
use shears_netsim::SimTime;

use crate::kernels::{self, GroupedMinima, ScanCols};

/// Sentinel for "this probe has no responding region".
const NO_REGION: u16 = u16::MAX;

/// Below this store size the build runs on one thread: the scan is
/// cheaper than spawning.
const PARALLEL_THRESHOLD: usize = 8_192;

/// One per-(probe, region) minimum, with the first store index that
/// achieved it — the tie-break witness appends need to stay bit-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RegionMin {
    region: u16,
    min: f64,
    first: u32,
}

/// Scans rows `[lo, hi)` of the store's columns through the grouped-
/// minima kernel ([`kernels::region_min_scan`], which carries the
/// strict-`<` first-index-wins contract). Recorded indices are global
/// store indices.
fn scan_shard(
    store: &ResultStore,
    lo: usize,
    hi: usize,
    privileged: &[bool],
    n_probes: usize,
) -> GroupedMinima {
    let cols = ScanCols {
        probes: &store.probes()[lo..hi],
        regions: &store.regions()[lo..hi],
        min_ms: &store.min_ms()[lo..hi],
        received: &store.received()[lo..hi],
    };
    kernels::region_min_scan(&cols, privileged, lo as u32, n_probes)
}

/// The indexed campaign view. See the module docs for the contract.
#[derive(Clone)]
pub struct CampaignFrame {
    /// `privileged[p]` — the §4.1 mask, indexed by probe id.
    privileged: Vec<bool>,
    /// Probe id → slot in [`CampaignFrame::countries`].
    probe_country: Vec<u32>,
    /// Sorted unique country codes of the fleet.
    countries: Vec<String>,
    /// Store indices grouped by probe, ascending within each probe —
    /// per-probe vectors so appends stay O(new samples).
    partition: Vec<Vec<u32>>,
    /// Per-probe `(min RTT, first store index achieving it, region)`;
    /// `(INFINITY, u32::MAX, NO_REGION)` = no responding sample or
    /// privileged.
    best: Vec<(f64, u32, u16)>,
    /// Per-probe per-region minima, sorted by region index.
    region_minima: Vec<Vec<RegionMin>>,
    /// Min RTT per country slot (`INFINITY` = no data yet).
    country_min: Vec<f64>,
    /// Countries whose slot in `country_min` is finite.
    countries_with_data: usize,
    /// Store indices of Fig. 6's population (each probe's responded
    /// rounds towards its closest region), in store order.
    closest_rows: Vec<u32>,
    /// Store indices sorted by round time (stable, so ties keep store
    /// order).
    time_order: Vec<u32>,
    filtered_len: usize,
    responded_len: usize,
    /// Store rows folded into the indexes so far; `append` picks up
    /// from here.
    rows_indexed: usize,
    /// How many `append` calls this frame has absorbed.
    appends: u64,
}

impl CampaignFrame {
    /// Builds the frame in one parallel scan over the store's columns.
    pub fn build(platform: &Platform, store: &ResultStore) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_threads(platform, store, threads)
    }

    /// Builds with an explicit scan-thread count (testing and tuning;
    /// the result is identical for every count).
    pub fn build_with_threads(platform: &Platform, store: &ResultStore, threads: usize) -> Self {
        let n_rows = store.len();
        assert!(
            n_rows <= u32::MAX as usize,
            "store exceeds the u32 row-index space"
        );
        let probes = platform.probes();
        let n_probes = probes.len();
        let privileged: Vec<bool> = probes.iter().map(Probe::is_privileged).collect();

        // Country interning: sorted unique codes, probe → slot.
        let mut country_slots: BTreeMap<&str, u32> = BTreeMap::new();
        for p in probes {
            let next = country_slots.len() as u32;
            country_slots.entry(p.country.as_str()).or_insert(next);
        }
        // BTreeMap insertion order is not slot order; re-number sorted.
        let countries: Vec<String> = country_slots.keys().map(|c| c.to_string()).collect();
        for (slot, (_, v)) in country_slots.iter_mut().enumerate() {
            *v = slot as u32;
        }
        let probe_country: Vec<u32> = probes
            .iter()
            .map(|p| country_slots[p.country.as_str()])
            .collect();

        // 1. The parallel scan: shard the rows, scan each shard, merge.
        let shards: Vec<GroupedMinima> = if threads <= 1 || n_rows < PARALLEL_THRESHOLD {
            vec![scan_shard(store, 0, n_rows, &privileged, n_probes)]
        } else {
            let chunk = n_rows.div_ceil(threads).max(1);
            thread::scope(|s| {
                let privileged = &privileged;
                let mut handles = Vec::new();
                let mut lo = 0usize;
                while lo < n_rows {
                    let hi = (lo + chunk).min(n_rows);
                    handles.push(
                        s.spawn(move |_| scan_shard(store, lo, hi, privileged, n_probes)),
                    );
                    lo = hi;
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("frame scan shard panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("frame scan scope")
        };

        let mut counts = vec![0u32; n_probes];
        let mut region_min: HashMap<(u32, u16), (f64, u32)> = HashMap::new();
        let mut filtered_len = 0;
        let mut responded_len = 0;
        for shard in shards {
            for (c, n) in counts.iter_mut().zip(&shard.counts) {
                *c += n;
            }
            filtered_len += shard.filtered;
            responded_len += shard.responded;
            for (key, (v, idx)) in shard.region_min {
                region_min
                    .entry(key)
                    .and_modify(|e| {
                        // Lexicographic min on (value, index): order-
                        // independent, and equal values keep the
                        // earliest store index — the sequential
                        // first-sample-wins rule.
                        if (v, idx) < (e.0, e.1) {
                            *e = (v, idx);
                        }
                    })
                    .or_insert((v, idx));
            }
        }

        // 2. Per-probe tables from the merged (probe, region) minima.
        let mut region_minima: Vec<Vec<RegionMin>> = vec![Vec::new(); n_probes];
        let mut best: Vec<(f64, u32, u16)> = vec![(f64::INFINITY, u32::MAX, NO_REGION); n_probes];
        for (&(probe, region), &(v, idx)) in &region_min {
            let p = probe as usize;
            region_minima[p].push(RegionMin {
                region,
                min: v,
                first: idx,
            });
            // Same rule as the shard merge: the winning region is the
            // one whose sample first reached the probe's overall min.
            if (v, idx) < (best[p].0, best[p].1) {
                best[p] = (v, idx, region);
            }
        }
        for rm in &mut region_minima {
            rm.sort_unstable_by_key(|e| e.region);
        }

        // 3. Country minima over probe minima (min is associative, so
        //    this equals the historical per-sample accumulation).
        let mut country_min = vec![f64::INFINITY; countries.len()];
        let mut countries_with_data = 0usize;
        for (p, &(v, _, _)) in best.iter().enumerate() {
            if v.is_finite() {
                let c = probe_country[p] as usize;
                if country_min[c].is_infinite() {
                    countries_with_data += 1;
                }
                country_min[c] = country_min[c].min(v);
            }
        }

        // 4. The per-probe partition: reserve from the counts, then one
        //    placement pass (counting sort on probe id).
        let mut partition: Vec<Vec<u32>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (idx, p) in store.probes().iter().enumerate() {
            partition[p.index()].push(idx as u32);
        }

        // 5. The closest-DC row cache, read off the partition and
        //    re-sorted into store order (what the two-pass iterator
        //    produced).
        let regions = store.regions();
        let received = store.received();
        let mut closest_rows = Vec::with_capacity(responded_len);
        for p in 0..n_probes {
            if privileged[p] || best[p].2 == NO_REGION {
                continue;
            }
            for &idx in &partition[p] {
                let i = idx as usize;
                if regions[i] == best[p].2 && received[i] > 0 {
                    closest_rows.push(idx);
                }
            }
        }
        closest_rows.sort_unstable();

        // 6. The time index (stable: equal timestamps keep store order).
        let ats = store.ats();
        let mut time_order: Vec<u32> = (0..n_rows as u32).collect();
        time_order.sort_by_key(|&idx| ats[idx as usize]);

        Self {
            privileged,
            probe_country,
            countries,
            partition,
            best,
            region_minima,
            country_min,
            countries_with_data,
            closest_rows,
            time_order,
            filtered_len,
            responded_len,
            rows_indexed: n_rows,
            appends: 0,
        }
    }

    /// Folds the store rows that landed since the last
    /// `build`/`append` — `[rows_indexed, store.len())` — into every
    /// index, in O(new samples) (amortised; see below).
    ///
    /// The caller contract is that `store` is the same store the frame
    /// was built from with rows appended at the tail (campaign rounds,
    /// a durable resume that strictly extends the samples). The result
    /// is bit-identical to `build(platform, store)`:
    ///
    /// * per-(probe, region) minima only improve by a **strict** `<`
    ///   (new rows carry larger store indices, so a tie never steals a
    ///   first-index witness);
    /// * per-probe bests follow the same lexicographic
    ///   `(value, first index)` rule as the build's shard merge;
    /// * country minima are monotone mins over probe minima;
    /// * the closest-rows cache is extended in store order when no
    ///   probe's closest region moved, and re-merged from the partition
    ///   for exactly the probes whose best region changed (the one
    ///   amortised-not-worst-case step: a best flip costs O(that
    ///   probe's rows + current cache));
    /// * the time index appends in O(new log new) when the new rows'
    ///   times start at or after the indexed maximum (every round-major
    ///   producer in the tree), and falls back to a linear merge for
    ///   interleaved times.
    pub fn append(&mut self, store: &ResultStore) {
        let from = self.rows_indexed;
        let to = store.len();
        assert!(
            to >= from,
            "append requires a store that only grew since the last index"
        );
        assert!(
            to <= u32::MAX as usize,
            "store exceeds the u32 row-index space"
        );
        self.appends += 1;
        if to == from {
            return;
        }
        let probes = &store.probes()[from..to];
        let regions = &store.regions()[from..to];
        let min_ms = &store.min_ms()[from..to];
        let received = &store.received()[from..to];

        // 1. Partition pushes, then the new rows' minima through the
        //    same kernel the build's shards use. Applying each
        //    (probe, region) group's `(min, first index)` entry once is
        //    order-independent and equal to the historical row-by-row
        //    updates: the group entry *is* the lexicographic
        //    `(value, index)` minimum of its rows, and every final
        //    index below is a min over such entries.
        for (i, p) in probes.iter().enumerate() {
            self.partition[p.index()].push((from + i) as u32);
        }
        let cols = ScanCols {
            probes,
            regions,
            min_ms,
            received,
        };
        let scan =
            kernels::region_min_scan(&cols, &self.privileged, from as u32, self.privileged.len());
        self.filtered_len += scan.filtered;
        self.responded_len += scan.responded;
        let mut best_changed: Vec<usize> = Vec::new();
        for (&(probe, region), &(v, idx)) in &scan.region_min {
            let p = probe as usize;
            let rm = &mut self.region_minima[p];
            match rm.binary_search_by_key(&region, |e| e.region) {
                Ok(k) => {
                    // Strict `<`: appended indices are larger, so the
                    // first-index witness survives value ties.
                    if v < rm[k].min {
                        rm[k].min = v;
                        rm[k].first = idx;
                    }
                }
                Err(k) => rm.insert(
                    k,
                    RegionMin {
                        region,
                        min: v,
                        first: idx,
                    },
                ),
            }
            let b = &mut self.best[p];
            if (v, idx) < (b.0, b.1) {
                // Lexicographic improvement with a larger index is
                // always a strict value improvement.
                let old_region = b.2;
                *b = (v, idx, region);
                if old_region != NO_REGION && old_region != region {
                    // A flip away from an existing closest region:
                    // this probe's cached closest rows re-derive below.
                    // (NO_REGION → region needs none — every matching
                    // row is new and the extend pass covers it. A flip
                    // that settles back where it started is harmless:
                    // re-derivation reproduces the same rows.)
                    if !best_changed.contains(&p) {
                        best_changed.push(p);
                    }
                }
                let c = self.probe_country[p] as usize;
                if v < self.country_min[c] {
                    if self.country_min[c].is_infinite() {
                        self.countries_with_data += 1;
                    }
                    self.country_min[c] = v;
                }
            }
        }

        // 2. Closest-rows cache. Fast path: no probe's closest region
        //    moved, so new matching rows (ascending indices) extend the
        //    sorted cache in place.
        if best_changed.is_empty() {
            for i in 0..probes.len() {
                let p = probes[i].index();
                if self.privileged[p] || received[i] == 0 {
                    continue;
                }
                if regions[i] == self.best[p].2 {
                    self.closest_rows.push((from + i) as u32);
                }
            }
        } else {
            // A closest region moved: drop the affected probes' rows,
            // re-derive them from the partition (which already holds
            // the new rows), and merge the two sorted sets.
            let mut changed = vec![false; self.privileged.len()];
            for &p in &best_changed {
                changed[p] = true;
            }
            let all_probes = store.probes();
            let all_regions = store.regions();
            let all_received = store.received();
            let mut extra: Vec<u32> = Vec::new();
            for &p in &best_changed {
                let best_region = self.best[p].2;
                for &idx in &self.partition[p] {
                    let i = idx as usize;
                    if all_received[i] > 0 && all_regions[i] == best_region {
                        extra.push(idx);
                    }
                }
            }
            for i in 0..probes.len() {
                let p = probes[i].index();
                if changed[p] || self.privileged[p] || received[i] == 0 {
                    continue;
                }
                if regions[i] == self.best[p].2 {
                    extra.push((from + i) as u32);
                }
            }
            extra.sort_unstable();
            let kept = std::mem::take(&mut self.closest_rows);
            self.closest_rows = Vec::with_capacity(kept.len() + extra.len());
            let mut a = kept
                .into_iter()
                .filter(|&idx| !changed[all_probes[idx as usize].index()])
                .peekable();
            let mut b = extra.into_iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (Some(&x), Some(&y)) => {
                        if x <= y {
                            self.closest_rows.push(a.next().unwrap());
                        } else {
                            self.closest_rows.push(b.next().unwrap());
                        }
                    }
                    (Some(_), None) => self.closest_rows.push(a.next().unwrap()),
                    (None, Some(_)) => self.closest_rows.push(b.next().unwrap()),
                    (None, None) => break,
                }
            }
        }

        // 3. The time index. Both runs are sorted by (at, index); the
        //    old run's indices are all smaller, so a plain key merge
        //    reproduces the stable full sort. Round-major producers
        //    append monotonically, so the extend path is the norm.
        let ats = store.ats();
        let mut new_order: Vec<u32> = (from as u32..to as u32).collect();
        new_order.sort_by_key(|&idx| ats[idx as usize]);
        let monotone = match (self.time_order.last(), new_order.first()) {
            (Some(&l), Some(&f)) => ats[l as usize] <= ats[f as usize],
            _ => true,
        };
        if monotone {
            self.time_order.extend(new_order);
        } else {
            let old = std::mem::take(&mut self.time_order);
            self.time_order = Vec::with_capacity(old.len() + new_order.len());
            let key = |idx: u32| (ats[idx as usize], idx);
            let mut a = old.into_iter().peekable();
            let mut b = new_order.into_iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (Some(&x), Some(&y)) => {
                        if key(x) <= key(y) {
                            self.time_order.push(a.next().unwrap());
                        } else {
                            self.time_order.push(b.next().unwrap());
                        }
                    }
                    (Some(_), None) => self.time_order.push(a.next().unwrap()),
                    (None, Some(_)) => self.time_order.push(b.next().unwrap()),
                    (None, None) => break,
                }
            }
        }

        self.rows_indexed = to;
    }

    /// Store rows folded into the indexes so far.
    pub fn rows_indexed(&self) -> usize {
        self.rows_indexed
    }

    /// How many [`CampaignFrame::append`] calls this frame absorbed
    /// since its build.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The §4.1 mask: whether a probe is excluded as privileged.
    pub fn is_privileged(&self, id: ProbeId) -> bool {
        self.privileged[id.index()]
    }

    /// Samples surviving the privileged filter.
    pub fn filtered_len(&self) -> usize {
        self.filtered_len
    }

    /// Filtered samples that got at least one reply.
    pub fn responded_len(&self) -> usize {
        self.responded_len
    }

    /// One probe's samples via the partition index — the O(k) indexed
    /// replacement for `ResultStore::by_probe`'s full-store filter.
    /// Yields store order, materialised from `store`'s columns.
    pub fn by_probe<'s>(
        &'s self,
        store: &'s ResultStore,
        id: ProbeId,
    ) -> impl Iterator<Item = RttSample> + 's {
        self.partition[id.index()]
            .iter()
            .map(move |&idx| store.get(idx as usize))
    }

    /// A probe's campaign-wide minimum RTT (ms); `None` for privileged
    /// probes and probes whose every round was lost.
    pub fn probe_min(&self, id: ProbeId) -> Option<f64> {
        let v = self.best[id.index()].0;
        v.is_finite().then_some(v)
    }

    /// All per-probe minima (Fig. 5's statistic), in probe-id order.
    pub fn probe_minima(&self) -> impl Iterator<Item = (ProbeId, f64)> + '_ {
        self.best
            .iter()
            .enumerate()
            .filter(|(_, b)| b.0.is_finite())
            .map(|(p, &(v, _, _))| (ProbeId(p as u32), v))
    }

    /// The region a probe reaches fastest — its "closest datacenter".
    pub fn best_region(&self, id: ProbeId) -> Option<u16> {
        let r = self.best[id.index()].2;
        (r != NO_REGION).then_some(r)
    }

    /// A probe's per-region minima, sorted by region index.
    pub fn region_minima(&self, id: ProbeId) -> impl Iterator<Item = (u16, f64)> + '_ {
        self.region_minima[id.index()]
            .iter()
            .map(|e| (e.region, e.min))
    }

    /// Per-country minima (Fig. 4's statistic), in country-code order.
    pub fn country_minima(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.countries
            .iter()
            .zip(&self.country_min)
            .filter(|(_, v)| v.is_finite())
            .map(|(c, &v)| (c.as_str(), v))
    }

    /// Number of countries with at least one responding probe.
    pub fn countries_measured(&self) -> usize {
        self.countries_with_data
    }

    /// Fig. 6's population: each probe's responded rounds towards its
    /// closest region, in store order — the cached resolution behind
    /// `CampaignData::samples_to_closest_dc`.
    pub fn closest_dc<'s, 'p: 's>(
        &'s self,
        platform: &'p Platform,
        store: &'s ResultStore,
    ) -> impl Iterator<Item = (&'p Probe, f64)> + 's {
        let probes = platform.probes();
        let probe_col = store.probes();
        let min_col = store.min_ms();
        self.closest_rows.iter().map(move |&idx| {
            let i = idx as usize;
            (&probes[probe_col[i].index()], f64::from(min_col[i]))
        })
    }

    /// Samples in `[from, to)` via the time index (binary search on the
    /// sorted round times) — the indexed replacement for
    /// `ResultStore::in_window`. Yields time order, ties in store order.
    pub fn in_window<'s>(
        &'s self,
        store: &'s ResultStore,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = RttSample> + 's {
        let ats = store.ats();
        let lo = self
            .time_order
            .partition_point(|&idx| ats[idx as usize] < from);
        let hi = self
            .time_order
            .partition_point(|&idx| ats[idx as usize] < to);
        self.time_order[lo..hi]
            .iter()
            .map(move |&idx| store.get(idx as usize))
    }

    /// First and last round times in the store, `None` when empty.
    pub fn time_span(&self, store: &ResultStore) -> Option<(SimTime, SimTime)> {
        let ats = store.ats();
        let first = *self.time_order.first()?;
        let last = *self.time_order.last()?;
        Some((ats[first as usize], ats[last as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, PlatformConfig};

    fn data() -> (Platform, ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 4,
                targets_per_probe: 2,
                adjacent_targets: 1,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    /// The historical sequential algorithms, kept verbatim as the
    /// reference the frame must match bit for bit.
    mod reference {
        use super::*;

        pub fn per_probe_min(platform: &Platform, store: &ResultStore) -> HashMap<ProbeId, f64> {
            let mut min: HashMap<ProbeId, f64> = HashMap::new();
            for s in store.iter() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                min.entry(p.id).and_modify(|m| *m = m.min(v)).or_insert(v);
            }
            min
        }

        pub fn per_country_min<'a>(
            platform: &'a Platform,
            store: &ResultStore,
        ) -> HashMap<&'a str, f64> {
            let mut min: HashMap<&str, f64> = HashMap::new();
            for s in store.iter() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                min.entry(p.country.as_str())
                    .and_modify(|m| *m = m.min(v))
                    .or_insert(v);
            }
            min
        }

        pub fn samples_to_closest_dc<'a>(
            platform: &'a Platform,
            store: &ResultStore,
        ) -> Vec<(&'a Probe, f64)> {
            let mut best_region: HashMap<ProbeId, (u16, f64)> = HashMap::new();
            for s in store.iter() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                best_region
                    .entry(p.id)
                    .and_modify(|(region, m)| {
                        if v < *m {
                            *region = s.region;
                            *m = v;
                        }
                    })
                    .or_insert((s.region, v));
            }
            store
                .iter()
                .filter_map(|s| {
                    let p = &platform.probes()[s.probe.index()];
                    if p.is_privileged() || !s.responded() {
                        return None;
                    }
                    best_region
                        .get(&p.id)
                        .is_some_and(|(region, _)| *region == s.region)
                        .then_some((p, f64::from(s.min_ms)))
                })
                .collect()
        }
    }

    /// Field-by-field equality of two frames (the struct is not
    /// `PartialEq` because it is not part of the public contract).
    fn assert_frames_identical(a: &CampaignFrame, b: &CampaignFrame, what: &str) {
        assert_eq!(a.privileged, b.privileged, "{what}: privileged");
        assert_eq!(a.partition, b.partition, "{what}: partition");
        assert_eq!(a.best, b.best, "{what}: best");
        assert_eq!(a.region_minima, b.region_minima, "{what}: region_minima");
        assert_eq!(a.country_min, b.country_min, "{what}: country_min");
        assert_eq!(
            a.countries_with_data, b.countries_with_data,
            "{what}: countries_with_data"
        );
        assert_eq!(a.closest_rows, b.closest_rows, "{what}: closest_rows");
        assert_eq!(a.time_order, b.time_order, "{what}: time_order");
        assert_eq!(a.filtered_len, b.filtered_len, "{what}: filtered_len");
        assert_eq!(a.responded_len, b.responded_len, "{what}: responded_len");
        assert_eq!(a.rows_indexed, b.rows_indexed, "{what}: rows_indexed");
    }

    #[test]
    fn minima_match_the_sequential_reference_bit_for_bit() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let probe_ref = reference::per_probe_min(&platform, &store);
        let got: HashMap<ProbeId, f64> = frame.probe_minima().collect();
        assert_eq!(got, probe_ref);
        let country_ref = reference::per_country_min(&platform, &store);
        let got: HashMap<&str, f64> = frame
            .country_minima()
            .map(|(c, v)| {
                (
                    *country_ref.keys().find(|k| **k == c).expect("known country"),
                    v,
                )
            })
            .collect();
        assert_eq!(got, country_ref);
        assert_eq!(frame.countries_measured(), country_ref.len());
    }

    #[test]
    fn closest_dc_matches_the_two_pass_reference_in_order() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let reference: Vec<(ProbeId, f64)> = reference::samples_to_closest_dc(&platform, &store)
            .into_iter()
            .map(|(p, v)| (p.id, v))
            .collect();
        let got: Vec<(ProbeId, f64)> = frame
            .closest_dc(&platform, &store)
            .map(|(p, v)| (p.id, v))
            .collect();
        assert_eq!(got, reference, "rows must match in store order");
        assert!(!got.is_empty());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let (platform, store) = data();
        let one = CampaignFrame::build_with_threads(&platform, &store, 1);
        for threads in [2, 3, 8] {
            let many = CampaignFrame::build_with_threads(&platform, &store, threads);
            assert_frames_identical(&many, &one, &format!("{threads} threads"));
        }
    }

    #[test]
    fn append_rounds_equals_full_rebuild() {
        let (platform, store) = data();
        // Round boundaries: the sequential runner is round-major, so
        // splitting on time changes gives whole rounds.
        let ats = store.ats();
        let mut cuts = vec![0usize];
        for i in 1..store.len() {
            if ats[i] != ats[i - 1] {
                cuts.push(i);
            }
        }
        cuts.push(store.len());
        assert!(cuts.len() > 3, "campaign has multiple rounds");

        // Build on the first chunk, then append one chunk at a time.
        let mut growing = ResultStore::with_capacity(store.len());
        for i in 0..cuts[1] {
            growing.push(store.get(i));
        }
        let mut frame = CampaignFrame::build(&platform, &growing);
        for w in cuts.windows(2).skip(1) {
            for i in w[0]..w[1] {
                growing.push(store.get(i));
            }
            frame.append(&growing);
            let rebuilt = CampaignFrame::build(&platform, &growing);
            assert_frames_identical(&frame, &rebuilt, &format!("after rows {}..{}", w[0], w[1]));
        }
        assert_eq!(frame.appends(), (cuts.len() - 2) as u64);
        assert_eq!(frame.rows_indexed(), store.len());
    }

    #[test]
    fn append_handles_a_moving_closest_region() {
        let (platform, _) = data();
        let probe = platform
            .probes()
            .iter()
            .find(|p| !p.is_privileged())
            .expect("an unprivileged probe");
        let mk = |region: u16, at_h: u64, min: f32| RttSample {
            probe: probe.id,
            region,
            at: SimTime::from_hours(at_h),
            min_ms: min,
            avg_ms: min + 1.0,
            sent: 3,
            received: 3,
        };
        let mut store = ResultStore::new();
        store.push(mk(1, 0, 20.0));
        store.push(mk(2, 0, 30.0));
        let mut frame = CampaignFrame::build(&platform, &store);
        assert_eq!(frame.best_region(probe.id), Some(1));
        // A later round makes region 2 the closest: the cached rows
        // must swap to region 2's, including the old region-2 row.
        store.push(mk(2, 1, 10.0));
        frame.append(&store);
        assert_eq!(frame.best_region(probe.id), Some(2));
        let rebuilt = CampaignFrame::build(&platform, &store);
        assert_frames_identical(&frame, &rebuilt, "after best flip");
        let rows: Vec<f64> = frame
            .closest_dc(&platform, &store)
            .map(|(_, v)| v)
            .collect();
        assert_eq!(rows, vec![30.0, 10.0], "both region-2 rounds, store order");
    }

    #[test]
    fn append_preserves_the_first_index_tie_break() {
        let (platform, _) = data();
        let probe = platform
            .probes()
            .iter()
            .find(|p| !p.is_privileged())
            .expect("an unprivileged probe");
        let mk = |region: u16, at_h: u64, min: f32| RttSample {
            probe: probe.id,
            region,
            at: SimTime::from_hours(at_h),
            min_ms: min,
            avg_ms: min + 1.0,
            sent: 3,
            received: 3,
        };
        let mut store = ResultStore::new();
        store.push(mk(1, 0, 12.5));
        let mut frame = CampaignFrame::build(&platform, &store);
        // An equal minimum towards another region arrives later: the
        // first-sample-wins rule keeps region 1 closest.
        store.push(mk(2, 1, 12.5));
        frame.append(&store);
        assert_eq!(frame.best_region(probe.id), Some(1));
        let rebuilt = CampaignFrame::build(&platform, &store);
        assert_frames_identical(&frame, &rebuilt, "after equal-min append");
    }

    #[test]
    fn empty_append_is_a_counted_no_op() {
        let (platform, store) = data();
        let mut frame = CampaignFrame::build(&platform, &store);
        let rebuilt = CampaignFrame::build(&platform, &store);
        frame.append(&store);
        assert_eq!(frame.appends(), 1);
        assert_frames_identical(&frame, &rebuilt, "empty append");
    }

    #[test]
    fn partition_agrees_with_store_by_probe() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            let indexed: Vec<RttSample> = frame.by_probe(&store, p.id).collect();
            let filtered: Vec<RttSample> = store.by_probe(p.id).collect();
            assert_eq!(indexed, filtered, "probe {:?}", p.id);
        }
    }

    #[test]
    fn time_index_agrees_with_store_in_window() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let (first, last) = frame.time_span(&store).unwrap();
        assert!(first <= last);
        let mid = SimTime::from_nanos((first.as_nanos() + last.as_nanos()) / 2);
        for (from, to) in [(first, mid), (mid, last), (first, last)] {
            let mut indexed: Vec<RttSample> = frame.in_window(&store, from, to).collect();
            let mut filtered: Vec<RttSample> = store.in_window(from, to).collect();
            let key = |s: &RttSample| (s.at, s.probe, s.region);
            indexed.sort_by_key(key);
            filtered.sort_by_key(key);
            assert_eq!(indexed, filtered);
        }
        // The window iterator itself is time-ordered.
        let to = SimTime::from_nanos(last.as_nanos() + 1);
        let order: Vec<SimTime> = frame.in_window(&store, first, to).map(|s| s.at).collect();
        assert!(order.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn privileged_probes_are_fully_masked() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            assert_eq!(frame.is_privileged(p.id), p.is_privileged());
            if p.is_privileged() {
                assert_eq!(frame.probe_min(p.id), None);
                assert_eq!(frame.best_region(p.id), None);
                assert_eq!(frame.region_minima(p.id).count(), 0);
            }
        }
        assert!(frame.filtered_len() <= store.len());
        assert!(frame.responded_len() <= frame.filtered_len());
    }

    #[test]
    fn region_minima_are_consistent_with_probe_min() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            let rm: Vec<(u16, f64)> = frame.region_minima(p.id).collect();
            assert!(rm.windows(2).all(|w| w[0].0 < w[1].0), "sorted by region");
            if let Some(min) = frame.probe_min(p.id) {
                let best = rm.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
                assert_eq!(min, best);
                let best_region = frame.best_region(p.id).unwrap();
                assert!(rm.iter().any(|&(r, v)| r == best_region && v == min));
            }
        }
    }

    #[test]
    fn empty_store_builds_an_empty_frame() {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = ResultStore::new();
        let frame = CampaignFrame::build(&platform, &store);
        assert_eq!(frame.filtered_len(), 0);
        assert_eq!(frame.responded_len(), 0);
        assert_eq!(frame.probe_minima().count(), 0);
        assert_eq!(frame.country_minima().count(), 0);
        assert_eq!(frame.closest_dc(&platform, &store).count(), 0);
        assert!(frame.time_span(&store).is_none());
        assert_eq!(frame.by_probe(&store, ProbeId(0)).count(), 0);
    }
}
