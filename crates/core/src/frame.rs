//! The single-pass indexed view every analysis queries.
//!
//! [`CampaignFrame`] is built **once** per campaign from a platform and
//! a result store, in one parallel scan (crossbeam scoped threads, the
//! same shard-and-merge idiom as `Campaign::run_parallel`). It
//! precomputes everything the figure modules used to re-derive with
//! their own O(n) passes:
//!
//! * the §4.1 **privileged mask** (one `bool` per probe, so the filter
//!   is an index instead of a per-sample tag scan);
//! * a **per-probe partition** of sample indices (offset table over a
//!   probe-major row index — the indexed replacement for
//!   `ResultStore::by_probe`'s full-store filter);
//! * **per-probe / per-country / per-(probe, region) minima**, the
//!   statistics behind Figs. 4 and 5;
//! * the **closest-datacenter resolution** behind
//!   `CampaignData::samples_to_closest_dc` (Fig. 6's population),
//!   cached as row indices in store order;
//! * a **time-sorted round index** for windowed queries (the indexed
//!   replacement for `ResultStore::in_window`).
//!
//! The contract is build-once / query-many: construction costs one
//! parallel scan plus index assembly, after which every query is a
//! lookup (or an iteration over a precomputed slice). All results are
//! bit-identical to the historical iterator path — minima are plain
//! `f64` mins over the same sample sets, and the best-region tie-break
//! reproduces the sequential first-sample-wins rule exactly by tracking
//! `(value, first store index achieving it)` pairs and merging shards
//! with the lexicographic minimum.

use std::collections::{BTreeMap, HashMap};

use crossbeam::thread;
use shears_atlas::{Platform, Probe, ProbeId, ResultStore, RttSample};
use shears_netsim::SimTime;

/// Sentinel for "this probe has no responding region".
const NO_REGION: u16 = u16::MAX;

/// Below this store size the build runs on one thread: the scan is
/// cheaper than spawning.
const PARALLEL_THRESHOLD: usize = 8_192;

/// Per-shard scan output, merged in the build's reduce step.
struct ShardScan {
    /// Sample count per probe (all samples, matching `by_probe`).
    counts: Vec<u32>,
    /// `(probe, region)` → `(min RTT, first store index achieving it)`
    /// over unprivileged responded samples.
    region_min: HashMap<(u32, u16), (f64, u32)>,
    /// Unprivileged samples seen.
    filtered: usize,
    /// Unprivileged responded samples seen.
    responded: usize,
}

/// Scans one contiguous shard of the store. `base` is the store index
/// of `shard[0]`, so recorded indices are global.
fn scan_shard(shard: &[RttSample], base: usize, privileged: &[bool], n_probes: usize) -> ShardScan {
    let mut out = ShardScan {
        counts: vec![0; n_probes],
        region_min: HashMap::new(),
        filtered: 0,
        responded: 0,
    };
    for (i, s) in shard.iter().enumerate() {
        let p = s.probe.index();
        out.counts[p] += 1;
        if privileged[p] {
            continue;
        }
        out.filtered += 1;
        if !s.responded() {
            continue;
        }
        out.responded += 1;
        let v = f64::from(s.min_ms);
        let idx = (base + i) as u32;
        out.region_min
            .entry((s.probe.0, s.region))
            .and_modify(|e| {
                // Strict `<` keeps the first index achieving the min,
                // mirroring the sequential update rule.
                if v < e.0 {
                    *e = (v, idx);
                }
            })
            .or_insert((v, idx));
    }
    out
}

/// The indexed campaign view. See the module docs for the contract.
pub struct CampaignFrame<'a> {
    platform: &'a Platform,
    store: &'a ResultStore,
    /// `privileged[p]` — the §4.1 mask, indexed by probe id.
    privileged: Vec<bool>,
    /// Offsets into [`CampaignFrame::probe_rows`]; slot `p` owns
    /// `probe_rows[probe_offsets[p]..probe_offsets[p + 1]]`.
    probe_offsets: Vec<u32>,
    /// Store indices grouped by probe, ascending within each probe.
    probe_rows: Vec<u32>,
    /// Campaign-wide min RTT per probe (`INFINITY` = no responding
    /// sample or privileged).
    probe_min: Vec<f64>,
    /// Each probe's closest region ([`NO_REGION`] = none).
    best_region: Vec<u16>,
    /// Per-probe `(region, min RTT)` pairs, sorted by region index.
    region_minima: Vec<Vec<(u16, f64)>>,
    /// Country code → min RTT over the country's unprivileged probes.
    country_min: BTreeMap<&'a str, f64>,
    /// Store indices of Fig. 6's population (each probe's responded
    /// rounds towards its closest region), in store order.
    closest_rows: Vec<u32>,
    /// Store indices sorted by round time (stable, so ties keep store
    /// order).
    time_order: Vec<u32>,
    filtered_len: usize,
    responded_len: usize,
}

impl<'a> CampaignFrame<'a> {
    /// Builds the frame in one parallel scan over the store.
    pub fn build(platform: &'a Platform, store: &'a ResultStore) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::build_with_threads(platform, store, threads)
    }

    /// Builds with an explicit scan-thread count (testing and tuning;
    /// the result is identical for every count).
    pub fn build_with_threads(
        platform: &'a Platform,
        store: &'a ResultStore,
        threads: usize,
    ) -> Self {
        let samples = store.samples();
        assert!(
            samples.len() <= u32::MAX as usize,
            "store exceeds the u32 row-index space"
        );
        let probes = platform.probes();
        let n_probes = probes.len();
        let privileged: Vec<bool> = probes.iter().map(Probe::is_privileged).collect();

        // 1. The parallel scan: shard the store, scan each shard, merge.
        let shards: Vec<ShardScan> = if threads <= 1 || samples.len() < PARALLEL_THRESHOLD {
            vec![scan_shard(samples, 0, &privileged, n_probes)]
        } else {
            let chunk = samples.len().div_ceil(threads).max(1);
            thread::scope(|s| {
                let privileged = &privileged;
                let mut handles = Vec::new();
                for (i, shard) in samples.chunks(chunk).enumerate() {
                    handles.push(
                        s.spawn(move |_| scan_shard(shard, i * chunk, privileged, n_probes)),
                    );
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("frame scan shard panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("frame scan scope")
        };

        let mut counts = vec![0u32; n_probes];
        let mut region_min: HashMap<(u32, u16), (f64, u32)> = HashMap::new();
        let mut filtered_len = 0;
        let mut responded_len = 0;
        for shard in shards {
            for (c, n) in counts.iter_mut().zip(&shard.counts) {
                *c += n;
            }
            filtered_len += shard.filtered;
            responded_len += shard.responded;
            for (key, (v, idx)) in shard.region_min {
                region_min
                    .entry(key)
                    .and_modify(|e| {
                        // Lexicographic min on (value, index): order-
                        // independent, and equal values keep the
                        // earliest store index — the sequential
                        // first-sample-wins rule.
                        if (v, idx) < (e.0, e.1) {
                            *e = (v, idx);
                        }
                    })
                    .or_insert((v, idx));
            }
        }

        // 2. Per-probe tables from the merged (probe, region) minima.
        let mut region_minima: Vec<Vec<(u16, f64)>> = vec![Vec::new(); n_probes];
        let mut best: Vec<(f64, u32, u16)> = vec![(f64::INFINITY, u32::MAX, NO_REGION); n_probes];
        for (&(probe, region), &(v, idx)) in &region_min {
            let p = probe as usize;
            region_minima[p].push((region, v));
            // Same rule as the shard merge: the winning region is the
            // one whose sample first reached the probe's overall min.
            if (v, idx) < (best[p].0, best[p].1) {
                best[p] = (v, idx, region);
            }
        }
        for rm in &mut region_minima {
            rm.sort_unstable_by_key(|&(region, _)| region);
        }
        let probe_min: Vec<f64> = best.iter().map(|&(v, _, _)| v).collect();
        let best_region: Vec<u16> = best.iter().map(|&(_, _, r)| r).collect();

        // 3. Country minima over probe minima (min is associative, so
        //    this equals the historical per-sample accumulation).
        let mut country_min: BTreeMap<&'a str, f64> = BTreeMap::new();
        for (p, probe) in probes.iter().enumerate() {
            let v = probe_min[p];
            if v.is_finite() {
                country_min
                    .entry(probe.country.as_str())
                    .and_modify(|m| *m = m.min(v))
                    .or_insert(v);
            }
        }

        // 4. The per-probe partition: prefix-sum offsets, then one
        //    placement pass (counting sort on probe id).
        let mut probe_offsets = vec![0u32; n_probes + 1];
        for (p, &c) in counts.iter().enumerate() {
            probe_offsets[p + 1] = probe_offsets[p] + c;
        }
        let mut cursor: Vec<u32> = probe_offsets[..n_probes].to_vec();
        let mut probe_rows = vec![0u32; samples.len()];
        for (idx, s) in samples.iter().enumerate() {
            let slot = &mut cursor[s.probe.index()];
            probe_rows[*slot as usize] = idx as u32;
            *slot += 1;
        }

        // 5. The closest-DC row cache, read off the partition and
        //    re-sorted into store order (what the two-pass iterator
        //    produced).
        let mut closest_rows = Vec::with_capacity(responded_len);
        for p in 0..n_probes {
            if privileged[p] || best_region[p] == NO_REGION {
                continue;
            }
            let rows = &probe_rows[probe_offsets[p] as usize..probe_offsets[p + 1] as usize];
            for &idx in rows {
                let s = &samples[idx as usize];
                if s.region == best_region[p] && s.responded() {
                    closest_rows.push(idx);
                }
            }
        }
        closest_rows.sort_unstable();

        // 6. The time index (stable: equal timestamps keep store order).
        let mut time_order: Vec<u32> = (0..samples.len() as u32).collect();
        time_order.sort_by_key(|&idx| samples[idx as usize].at);

        Self {
            platform,
            store,
            privileged,
            probe_offsets,
            probe_rows,
            probe_min,
            best_region,
            region_minima,
            country_min,
            closest_rows,
            time_order,
            filtered_len,
            responded_len,
        }
    }

    /// The platform the frame joins against.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The raw store (unfiltered).
    pub fn store(&self) -> &'a ResultStore {
        self.store
    }

    /// The probe record behind a sample.
    pub fn probe(&self, id: ProbeId) -> &'a Probe {
        &self.platform.probes()[id.index()]
    }

    /// The §4.1 mask: whether a probe is excluded as privileged.
    pub fn is_privileged(&self, id: ProbeId) -> bool {
        self.privileged[id.index()]
    }

    /// Samples surviving the privileged filter.
    pub fn filtered_len(&self) -> usize {
        self.filtered_len
    }

    /// Filtered samples that got at least one reply.
    pub fn responded_len(&self) -> usize {
        self.responded_len
    }

    /// One probe's samples via the partition index — the O(k) indexed
    /// replacement for `ResultStore::by_probe`'s full-store filter.
    /// Yields store order.
    pub fn by_probe(&self, id: ProbeId) -> impl Iterator<Item = &'a RttSample> + '_ {
        let samples = self.store.samples();
        let lo = self.probe_offsets[id.index()] as usize;
        let hi = self.probe_offsets[id.index() + 1] as usize;
        self.probe_rows[lo..hi]
            .iter()
            .map(move |&idx| &samples[idx as usize])
    }

    /// A probe's campaign-wide minimum RTT (ms); `None` for privileged
    /// probes and probes whose every round was lost.
    pub fn probe_min(&self, id: ProbeId) -> Option<f64> {
        let v = self.probe_min[id.index()];
        v.is_finite().then_some(v)
    }

    /// All per-probe minima (Fig. 5's statistic), in probe-id order.
    pub fn probe_minima(&self) -> impl Iterator<Item = (ProbeId, f64)> + '_ {
        self.probe_min
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .map(|(p, &v)| (ProbeId(p as u32), v))
    }

    /// The region a probe reaches fastest — its "closest datacenter".
    pub fn best_region(&self, id: ProbeId) -> Option<u16> {
        let r = self.best_region[id.index()];
        (r != NO_REGION).then_some(r)
    }

    /// A probe's per-region minima, sorted by region index.
    pub fn region_minima(&self, id: ProbeId) -> &[(u16, f64)] {
        &self.region_minima[id.index()]
    }

    /// Per-country minima (Fig. 4's statistic), in country-code order.
    pub fn country_minima(&self) -> impl Iterator<Item = (&'a str, f64)> + '_ {
        self.country_min.iter().map(|(&c, &v)| (c, v))
    }

    /// Number of countries with at least one responding probe.
    pub fn countries_measured(&self) -> usize {
        self.country_min.len()
    }

    /// Fig. 6's population: each probe's responded rounds towards its
    /// closest region, in store order — the cached resolution behind
    /// `CampaignData::samples_to_closest_dc`.
    pub fn closest_dc(&self) -> impl Iterator<Item = (&'a Probe, f64)> + '_ {
        let samples = self.store.samples();
        let probes = self.platform.probes();
        self.closest_rows.iter().map(move |&idx| {
            let s = &samples[idx as usize];
            (&probes[s.probe.index()], f64::from(s.min_ms))
        })
    }

    /// Samples in `[from, to)` via the time index (binary search on the
    /// sorted round times) — the indexed replacement for
    /// `ResultStore::in_window`. Yields time order, ties in store order.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &'a RttSample> + '_ {
        let samples = self.store.samples();
        let lo = self
            .time_order
            .partition_point(|&idx| samples[idx as usize].at < from);
        let hi = self
            .time_order
            .partition_point(|&idx| samples[idx as usize].at < to);
        self.time_order[lo..hi]
            .iter()
            .map(move |&idx| &samples[idx as usize])
    }

    /// First and last round times in the store, `None` when empty.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let samples = self.store.samples();
        let first = *self.time_order.first()?;
        let last = *self.time_order.last()?;
        Some((samples[first as usize].at, samples[last as usize].at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, PlatformConfig};

    fn data() -> (Platform, ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 4,
                targets_per_probe: 2,
                adjacent_targets: 1,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    /// The historical sequential algorithms, kept verbatim as the
    /// reference the frame must match bit for bit.
    mod reference {
        use super::*;

        pub fn per_probe_min(platform: &Platform, store: &ResultStore) -> HashMap<ProbeId, f64> {
            let mut min: HashMap<ProbeId, f64> = HashMap::new();
            for s in store.samples() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                min.entry(p.id).and_modify(|m| *m = m.min(v)).or_insert(v);
            }
            min
        }

        pub fn per_country_min<'a>(
            platform: &'a Platform,
            store: &ResultStore,
        ) -> HashMap<&'a str, f64> {
            let mut min: HashMap<&str, f64> = HashMap::new();
            for s in store.samples() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                min.entry(p.country.as_str())
                    .and_modify(|m| *m = m.min(v))
                    .or_insert(v);
            }
            min
        }

        pub fn samples_to_closest_dc<'a>(
            platform: &'a Platform,
            store: &ResultStore,
        ) -> Vec<(&'a Probe, f64)> {
            let mut best_region: HashMap<ProbeId, (u16, f64)> = HashMap::new();
            for s in store.samples() {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    continue;
                }
                let v = f64::from(s.min_ms);
                best_region
                    .entry(p.id)
                    .and_modify(|(region, m)| {
                        if v < *m {
                            *region = s.region;
                            *m = v;
                        }
                    })
                    .or_insert((s.region, v));
            }
            store
                .samples()
                .iter()
                .filter_map(|s| {
                    let p = &platform.probes()[s.probe.index()];
                    if p.is_privileged() || !s.responded() {
                        return None;
                    }
                    best_region
                        .get(&p.id)
                        .is_some_and(|(region, _)| *region == s.region)
                        .then_some((p, f64::from(s.min_ms)))
                })
                .collect()
        }
    }

    #[test]
    fn minima_match_the_sequential_reference_bit_for_bit() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let probe_ref = reference::per_probe_min(&platform, &store);
        let got: HashMap<ProbeId, f64> = frame.probe_minima().collect();
        assert_eq!(got, probe_ref);
        let country_ref = reference::per_country_min(&platform, &store);
        let got: HashMap<&str, f64> = frame.country_minima().collect();
        assert_eq!(got, country_ref);
        assert_eq!(frame.countries_measured(), country_ref.len());
    }

    #[test]
    fn closest_dc_matches_the_two_pass_reference_in_order() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let reference: Vec<(ProbeId, f64)> = reference::samples_to_closest_dc(&platform, &store)
            .into_iter()
            .map(|(p, v)| (p.id, v))
            .collect();
        let got: Vec<(ProbeId, f64)> =
            frame.closest_dc().map(|(p, v)| (p.id, v)).collect();
        assert_eq!(got, reference, "rows must match in store order");
        assert!(!got.is_empty());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let (platform, store) = data();
        let one = CampaignFrame::build_with_threads(&platform, &store, 1);
        for threads in [2, 3, 8] {
            let many = CampaignFrame::build_with_threads(&platform, &store, threads);
            assert_eq!(many.probe_min, one.probe_min, "{threads} threads");
            assert_eq!(many.best_region, one.best_region, "{threads} threads");
            assert_eq!(many.closest_rows, one.closest_rows, "{threads} threads");
            assert_eq!(many.country_min, one.country_min, "{threads} threads");
            assert_eq!(many.probe_rows, one.probe_rows, "{threads} threads");
            assert_eq!(many.filtered_len, one.filtered_len);
            assert_eq!(many.responded_len, one.responded_len);
        }
    }

    #[test]
    fn partition_agrees_with_store_by_probe() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            let indexed: Vec<&RttSample> = frame.by_probe(p.id).collect();
            let filtered: Vec<&RttSample> = store.by_probe(p.id).collect();
            assert_eq!(indexed, filtered, "probe {:?}", p.id);
        }
    }

    #[test]
    fn time_index_agrees_with_store_in_window() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        let (first, last) = frame.time_span().unwrap();
        assert!(first <= last);
        let mid = SimTime::from_nanos((first.as_nanos() + last.as_nanos()) / 2);
        for (from, to) in [(first, mid), (mid, last), (first, last)] {
            let mut indexed: Vec<RttSample> = frame.in_window(from, to).copied().collect();
            let mut filtered: Vec<RttSample> = store.in_window(from, to).copied().collect();
            let key = |s: &RttSample| (s.at, s.probe, s.region);
            indexed.sort_by_key(key);
            filtered.sort_by_key(key);
            assert_eq!(indexed, filtered);
        }
        // The window iterator itself is time-ordered.
        assert!(frame
            .in_window(first, SimTime::from_nanos(last.as_nanos() + 1))
            .zip(frame.in_window(first, SimTime::from_nanos(last.as_nanos() + 1)).skip(1))
            .all(|(a, b)| a.at <= b.at));
    }

    #[test]
    fn privileged_probes_are_fully_masked() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            assert_eq!(frame.is_privileged(p.id), p.is_privileged());
            if p.is_privileged() {
                assert_eq!(frame.probe_min(p.id), None);
                assert_eq!(frame.best_region(p.id), None);
                assert!(frame.region_minima(p.id).is_empty());
            }
        }
        assert!(frame.filtered_len() <= store.len());
        assert!(frame.responded_len() <= frame.filtered_len());
    }

    #[test]
    fn region_minima_are_consistent_with_probe_min() {
        let (platform, store) = data();
        let frame = CampaignFrame::build(&platform, &store);
        for p in platform.probes() {
            let rm = frame.region_minima(p.id);
            assert!(rm.windows(2).all(|w| w[0].0 < w[1].0), "sorted by region");
            if let Some(min) = frame.probe_min(p.id) {
                let best = rm
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(min, best);
                let best_region = frame.best_region(p.id).unwrap();
                assert!(rm.iter().any(|&(r, v)| r == best_region && v == min));
            }
        }
    }

    #[test]
    fn empty_store_builds_an_empty_frame() {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 80,
                seed: 11,
            },
            ..PlatformConfig::default()
        });
        let store = ResultStore::new();
        let frame = CampaignFrame::build(&platform, &store);
        assert_eq!(frame.filtered_len(), 0);
        assert_eq!(frame.responded_len(), 0);
        assert_eq!(frame.probe_minima().count(), 0);
        assert_eq!(frame.country_minima().count(), 0);
        assert_eq!(frame.closest_dc().count(), 0);
        assert!(frame.time_span().is_none());
        assert_eq!(frame.by_probe(ProbeId(0)).count(), 0);
    }
}
