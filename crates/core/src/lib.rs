//! # shears-analysis
//!
//! The analysis pipeline of *Pruning Edge Research with Latency Shears*:
//! every figure and headline number of the paper's evaluation,
//! implemented over the campaign data produced by [`shears_atlas`].
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Fig. 4 — per-country minimum RTT map + "32 countries < 10 ms" | [`proximity`] |
//! | Fig. 5 — CDF of per-probe minima by continent | [`proximity`] + [`stats`] |
//! | Fig. 6 — CDF of all samples by continent | [`distribution`] |
//! | Fig. 7 — wired vs wireless over the campaign | [`lastmile`] |
//! | Fig. 8 — feasibility-zone overlay | via [`shears_apps`] fed from [`lastmile`]/[`proximity`] |
//! | §5 headline numbers (MTP/PL/HRT coverage, 40 ms check) | [`headline`] |
//! | EXT1 — edge-at-metro gain study | [`edgegain`] |
//! | EXT3 — cloud-expansion ablation | [`expansion`] |
//!
//! All analyses consume a [`CampaignData`] view (platform + result
//! store) and apply the paper's filtering discipline: probes tagged as
//! privileged (datacentre/cloud-hosted) are excluded from everything.
//! Aggregate statistics are served by the [`CampaignFrame`] index
//! ([`frame`]), built once per campaign in a single parallel store scan
//! and memoized behind the view — rendering every figure costs one scan
//! plus index lookups, not one scan per figure.
//!
//! ```no_run
//! use shears_atlas::{Campaign, CampaignConfig, Platform, PlatformConfig};
//! use shears_analysis::{CampaignData, proximity};
//!
//! let platform = Platform::build(&PlatformConfig::quick(1));
//! let store = Campaign::new(&platform, CampaignConfig::quick()).run().unwrap();
//! let data = CampaignData::new(&platform, &store);
//! let fig4 = proximity::country_min_report(&data);
//! println!("{} countries under 10 ms", fig4.bucket_counts[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod bandwidth;
pub mod breakdown;
pub mod coverage;
pub mod data;
pub mod distribution;
pub mod edgegain;
pub mod expansion;
pub mod frame;
pub mod headline;
pub mod kernels;
pub mod lastmile;
pub mod providers;
pub mod proximity;
pub mod report;
pub mod resilience;
pub mod stats;
pub mod temporal;
pub mod whatif;

pub use data::CampaignData;
pub use frame::CampaignFrame;
pub use stats::{Ecdf, Summary};
