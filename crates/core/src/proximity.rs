//! §4.2 "Proximity to the Cloud": Figures 4 and 5.
//!
//! Fig. 4 asks "what is the least latency with which countries can
//! access the nearest datacenter?" and buckets countries by the answer;
//! Fig. 5 plots the CDF of every probe's campaign-wide minimum RTT,
//! grouped by continent.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shears_geo::Continent;

use crate::data::CampaignData;
use crate::stats::Ecdf;

/// The latency buckets of the Fig. 4 choropleth, in ms.
pub const FIG4_BUCKETS: [(f64, f64); 6] = [
    (0.0, 10.0),
    (10.0, 20.0),
    (20.0, 50.0),
    (50.0, 100.0),
    (100.0, 200.0),
    (200.0, f64::INFINITY),
];

/// Fig. 4's per-country minimum-latency report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryMinReport {
    /// Country code → minimum observed RTT (ms), best probe to any DC.
    pub min_by_country: HashMap<String, f64>,
    /// Countries per Fig. 4 bucket (same order as [`FIG4_BUCKETS`]).
    pub bucket_counts: [usize; 6],
    /// Countries measured but never under the PL threshold (100 ms) —
    /// the paper's "all but 16 countries (mostly in Africa)".
    pub above_pl: Vec<String>,
}

impl CountryMinReport {
    /// Which bucket a latency falls into.
    pub fn bucket_of(rtt_ms: f64) -> usize {
        FIG4_BUCKETS
            .iter()
            .position(|&(lo, hi)| rtt_ms >= lo && rtt_ms < hi)
            .unwrap_or(FIG4_BUCKETS.len() - 1)
    }

    /// Number of countries with data.
    pub fn countries_measured(&self) -> usize {
        self.min_by_country.len()
    }
}

/// Computes the Fig. 4 report from the frame's precomputed per-country
/// minima (no store scan).
pub fn country_min_report(data: &CampaignData<'_>) -> CountryMinReport {
    let frame = data.frame();
    let mut min_by_country = HashMap::with_capacity(frame.countries_measured());
    let mut bucket_counts = [0usize; 6];
    let mut above_pl = Vec::new();
    for (country, rtt) in frame.country_minima() {
        min_by_country.insert(country.to_string(), rtt);
        bucket_counts[CountryMinReport::bucket_of(rtt)] += 1;
        if rtt > 100.0 {
            above_pl.push(country.to_string());
        }
    }
    above_pl.sort();
    CountryMinReport {
        min_by_country,
        bucket_counts,
        above_pl,
    }
}

/// Fig. 5: per-continent ECDFs of each probe's campaign minimum.
#[derive(Debug, Clone)]
pub struct ProbeMinCdfs {
    /// One ECDF per continent (paper display order).
    pub by_continent: Vec<(Continent, Ecdf)>,
}

impl ProbeMinCdfs {
    /// The ECDF of one continent.
    pub fn continent(&self, c: Continent) -> Option<&Ecdf> {
        self.by_continent
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, e)| e)
    }

    /// Fraction of a continent's probes with minimum RTT ≤ `ms`.
    pub fn fraction_within(&self, c: Continent, ms: f64) -> f64 {
        self.continent(c)
            .map(|e| e.fraction_at_or_below(ms))
            .unwrap_or(0.0)
    }
}

/// Computes the Fig. 5 CDFs from the frame's per-probe minima. The
/// grouping pass uses a dense [`Continent::slot`]-indexed table (six
/// vectors) instead of hashing each sample's continent.
pub fn probe_min_cdfs(data: &CampaignData<'_>) -> ProbeMinCdfs {
    let frame = data.frame();
    let mut per_continent: [Vec<f64>; 6] = Default::default();
    for (id, v) in frame.probe_minima() {
        per_continent[data.probe(id).continent.slot()].push(v);
    }
    ProbeMinCdfs {
        by_continent: Continent::ALL
            .iter()
            .zip(per_continent)
            .map(|(&c, v)| (c, Ecdf::new(v)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn campaign_data() -> (Platform, shears_atlas::ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 400,
                seed: 21,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 6,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(CountryMinReport::bucket_of(5.0), 0);
        assert_eq!(CountryMinReport::bucket_of(10.0), 1);
        assert_eq!(CountryMinReport::bucket_of(19.9), 1);
        assert_eq!(CountryMinReport::bucket_of(20.0), 2);
        assert_eq!(CountryMinReport::bucket_of(99.9), 3);
        assert_eq!(CountryMinReport::bucket_of(150.0), 4);
        assert_eq!(CountryMinReport::bucket_of(1e6), 5);
    }

    #[test]
    fn fig4_shape_holds() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let report = country_min_report(&data);
        // Broad coverage: nearly all atlas countries have a probe.
        assert!(report.countries_measured() >= 150);
        // A solid set of countries sits under 10 ms (DC-hosting ones).
        assert!(
            report.bucket_counts[0] >= 15,
            "only {} countries under 10 ms",
            report.bucket_counts[0]
        );
        // Bucket counts are consistent with the map.
        assert_eq!(
            report.bucket_counts.iter().sum::<usize>(),
            report.countries_measured()
        );
        // The >PL stragglers are a small minority and mostly African.
        assert!(
            report.above_pl.len() < report.countries_measured() / 4,
            "{} countries above PL",
            report.above_pl.len()
        );
    }

    #[test]
    fn dc_hosting_countries_are_fast() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let report = country_min_report(&data);
        for cc in ["DE", "US", "NL", "JP", "SG"] {
            let rtt = report.min_by_country.get(cc).copied().unwrap_or(f64::NAN);
            assert!(
                rtt < 20.0,
                "{cc} hosts datacenters yet its best probe sees {rtt} ms"
            );
        }
    }

    #[test]
    fn fig5_continental_ordering() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let cdfs = probe_min_cdfs(&data);
        // EU and NA dominate Africa at the MTP threshold.
        let eu = cdfs.fraction_within(Continent::Europe, 20.0);
        let na = cdfs.fraction_within(Continent::NorthAmerica, 20.0);
        let af = cdfs.fraction_within(Continent::Africa, 20.0);
        assert!(eu > 0.5, "EU within MTP: {eu}");
        assert!(na > 0.5, "NA within MTP: {na}");
        assert!(af < eu, "Africa ({af}) should trail Europe ({eu})");
        // Most of Africa and LatAm still meets PL (paper: ≈75 %).
        let af_pl = cdfs.fraction_within(Continent::Africa, 100.0);
        let la_pl = cdfs.fraction_within(Continent::LatinAmerica, 100.0);
        assert!(af_pl > 0.4, "Africa within PL: {af_pl}");
        assert!(la_pl > 0.5, "LatAm within PL: {la_pl}");
    }

    #[test]
    fn every_continent_has_a_cdf() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let cdfs = probe_min_cdfs(&data);
        assert_eq!(cdfs.by_continent.len(), 6);
        for (c, e) in &cdfs.by_continent {
            assert!(!e.is_empty(), "{c} has no probes");
        }
    }
}
