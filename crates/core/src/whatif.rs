//! EXT5: the 5G what-if study.
//!
//! §5: "new wireless standards promise to improve the situation, e.g.
//! … 1 ms latency with 5G … the reality may differ from claims", and
//! "considering supporting strict MTP thresholds, even with edge
//! servers located at basestations, seems uncertain". This study makes
//! the argument computable: for every wireless probe it asks what
//! fraction could meet MTP (and the 7 ms compute budget) against the
//! *cloud* and against a basestation edge, under three last-mile
//! assumptions:
//!
//! * `lte` — the probe's current access as deployed;
//! * `early 5G` — the measured early-deployment reality (≈7 ms one way,
//!   per the Narayanan et al. WWW'20 measurements the paper cites);
//! * `ITU 5G` — the IMT-2020 1 ms user-plane promise.

use serde::Serialize;
use shears_apps::thresholds::{MTP_COMPUTE_BUDGET_MS, MTP_MS};
use shears_atlas::Platform;
use shears_netsim::ping::PathSampler;
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::routing::Router;

/// A last-mile assumption: label + one-way access delay in ms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AccessAssumption {
    /// Display label.
    pub label: &'static str,
    /// One-way last-mile delay, ms.
    pub one_way_ms: f64,
}

/// The three assumptions of the study.
pub const ASSUMPTIONS: [AccessAssumption; 3] = [
    AccessAssumption {
        label: "LTE as deployed",
        one_way_ms: 20.0,
    },
    AccessAssumption {
        label: "early 5G (measured)",
        one_way_ms: 7.0,
    },
    AccessAssumption {
        label: "ITU 5G promise",
        one_way_ms: 1.0,
    },
];

/// Results for one access assumption.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIfRow {
    /// The assumption.
    pub assumption: AccessAssumption,
    /// Wireless probes analysed.
    pub probes: usize,
    /// Fraction meeting MTP (20 ms RTT) against the nearest cloud DC.
    pub cloud_mtp: f64,
    /// Fraction meeting MTP against a basestation-co-located edge
    /// (RTT = 2 × access + 1 ms of radio-site processing).
    pub edge_mtp: f64,
    /// Fraction meeting the 7 ms MTP *compute budget* against the edge —
    /// the paper's truly strict bar (display pipeline already ate 13 ms).
    pub edge_compute_budget: f64,
}

/// The EXT5 report.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIfReport {
    /// One row per assumption, in [`ASSUMPTIONS`] order.
    pub rows: Vec<WhatIfRow>,
}

/// Runs the study over the platform's wireless probes (capped at
/// `max_probes` for tractability).
pub fn fiveg_whatif(platform: &Platform, max_probes: usize) -> WhatIfReport {
    let mut router = Router::new(platform.topology());
    // Per-probe: (cloud floor minus its access contribution, i.e. the
    // pure network part) for the nearest DC.
    let mut network_parts: Vec<f64> = Vec::new();
    for probe in platform
        .unprivileged_probes()
        .filter(|p| p.access.tech.is_wireless())
        .take(max_probes)
    {
        let Some(&target) = platform.targets_for(probe, 1, 1).first() else {
            continue;
        };
        let Some(path) = router.path(
            platform.probe_node(probe.id),
            platform.dc_node(target as usize),
        ) else {
            continue;
        };
        let floor = PathSampler::new(
            path,
            platform.topology(),
            Some(probe.access),
            DiurnalLoad::residential(),
        )
        .floor_rtt_ms();
        // Strip this probe's current access RTT to isolate the network.
        let network = floor - 2.0 * probe.access.floor_one_way_ms();
        network_parts.push(network.max(0.0));
    }
    let n = network_parts.len();
    let rows = ASSUMPTIONS
        .iter()
        .map(|&assumption| {
            let access_rtt = 2.0 * assumption.one_way_ms;
            let cloud_mtp = network_parts
                .iter()
                .filter(|&&net| net + access_rtt <= MTP_MS)
                .count() as f64
                / n.max(1) as f64;
            // Basestation edge: only the access segment plus ~1 ms of
            // radio-site processing remains.
            let edge_rtt = access_rtt + 1.0;
            let edge_mtp = if edge_rtt <= MTP_MS { 1.0 } else { 0.0 };
            let edge_compute_budget = if edge_rtt <= MTP_COMPUTE_BUDGET_MS {
                1.0
            } else {
                0.0
            };
            WhatIfRow {
                assumption,
                probes: n,
                cloud_mtp,
                edge_mtp,
                edge_compute_budget,
            }
        })
        .collect();
    WhatIfReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{FleetConfig, PlatformConfig};

    fn report() -> WhatIfReport {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 400,
                seed: 71,
            },
            ..PlatformConfig::default()
        });
        fiveg_whatif(&platform, 200)
    }

    #[test]
    fn lte_cannot_meet_mtp_even_with_edge() {
        // §5's core claim: with 20 ms one-way LTE access, a basestation
        // edge is already past the MTP budget.
        let r = report();
        let lte = &r.rows[0];
        assert!(lte.probes > 20);
        assert_eq!(lte.edge_mtp, 0.0, "LTE RTT alone exceeds MTP");
        assert_eq!(lte.cloud_mtp, 0.0);
    }

    #[test]
    fn early_5g_helps_edge_but_not_the_compute_budget() {
        let r = report();
        let early = &r.rows[1];
        assert_eq!(early.edge_mtp, 1.0, "15 ms RTT is within MTP");
        assert_eq!(
            early.edge_compute_budget, 0.0,
            "but not within the 7 ms compute budget"
        );
    }

    #[test]
    fn itu_promise_finally_meets_the_budget() {
        let r = report();
        let itu = &r.rows[2];
        assert_eq!(itu.edge_mtp, 1.0);
        assert_eq!(itu.edge_compute_budget, 1.0);
        // And the *cloud* also becomes MTP-viable for a solid share of
        // wireless probes — the paper's "even the cloud benefits from
        // better last miles" implication.
        assert!(itu.cloud_mtp > 0.3, "cloud MTP share {}", itu.cloud_mtp);
    }

    #[test]
    fn cloud_mtp_share_is_monotone_in_access_quality() {
        let r = report();
        assert!(r.rows[0].cloud_mtp <= r.rows[1].cloud_mtp);
        assert!(r.rows[1].cloud_mtp <= r.rows[2].cloud_mtp);
    }
}
