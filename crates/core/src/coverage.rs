//! TEXT4: the abstract's population claim, computed.
//!
//! "We … show that latency reduction as motivation for edge is not as
//! persuasive as once believed; for most applications the cloud is
//! already 'close enough' for majority of the world's population."
//!
//! This analysis combines the campaign's per-country minima (Fig. 4)
//! with country populations and each application's latency envelope:
//! for every driving application, what share of the world's population
//! lives in a country whose cloud latency meets the application's
//! requirement?

use serde::Serialize;
use shears_apps::Application;

use crate::data::CampaignData;

/// Population coverage of one application.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    /// Application name.
    pub name: &'static str,
    /// The latency the application needs (envelope centre), ms.
    pub required_ms: f64,
    /// Fraction of covered population whose country's best-case cloud
    /// RTT meets the requirement.
    pub population_covered: f64,
    /// Fraction of countries meeting it.
    pub countries_covered: f64,
}

/// The TEXT4 report.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageReport {
    /// One row per application, sorted most-covered first.
    pub rows: Vec<CoverageRow>,
    /// Total population accounted for (millions) — countries with no
    /// responding probes are excluded from the denominator.
    pub population_measured_m: f64,
}

impl CoverageReport {
    /// Row lookup.
    pub fn application(&self, name: &str) -> Option<&CoverageRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Fraction of applications that are cloud-feasible for more than
    /// half the measured population — the abstract's "most
    /// applications" quantifier.
    pub fn majority_covered_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.population_covered > 0.5)
            .count() as f64
            / self.rows.len() as f64
    }
}

/// Computes population coverage from campaign data.
///
/// Coverage uses each country's best-case (minimum) RTT — the paper's
/// own optimistic framing in §4.2 — so it reads as "could the cloud
/// serve this country's population", not "does every household get it".
/// Minima come straight from the frame index (no Fig. 4 report build,
/// no string allocation per country).
pub fn population_coverage(data: &CampaignData<'_>, apps: &[Application]) -> CoverageReport {
    let atlas = data.platform().countries();
    let measured: Vec<(&str, f64, f64)> = data
        .frame()
        .country_minima()
        .filter_map(|(code, rtt)| {
            atlas
                .by_code(code)
                .map(|c| (c.code, c.population_m, rtt))
        })
        .collect();
    let total_pop: f64 = measured.iter().map(|(_, p, _)| p).sum();
    let n_countries = measured.len() as f64;
    let mut rows: Vec<CoverageRow> = apps
        .iter()
        .map(|app| {
            let need = app.latency_ms.center();
            let covered_pop: f64 = measured
                .iter()
                .filter(|(_, _, rtt)| *rtt <= need)
                .map(|(_, p, _)| p)
                .sum();
            let covered_countries = measured.iter().filter(|(_, _, rtt)| *rtt <= need).count();
            CoverageRow {
                name: app.name,
                required_ms: need,
                population_covered: if total_pop > 0.0 {
                    covered_pop / total_pop
                } else {
                    0.0
                },
                countries_covered: if n_countries > 0.0 {
                    covered_countries as f64 / n_countries
                } else {
                    0.0
                },
            }
        })
        .collect();
    rows.sort_by(|a, b| b.population_covered.total_cmp(&a.population_covered));
    CoverageReport {
        rows,
        population_measured_m: total_pop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_apps::catalog::driving_applications;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn report() -> CoverageReport {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 500,
                seed: 101,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 6,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run_parallel(4)
        .unwrap();
        let data = crate::data::CampaignData::new(&platform, &store);
        population_coverage(&data, &driving_applications())
    }

    #[test]
    fn most_applications_are_cloud_covered_for_the_majority() {
        // The abstract's claim, as a number.
        let r = report();
        assert!(
            r.majority_covered_fraction() > 0.6,
            "only {} of apps cover a majority",
            r.majority_covered_fraction()
        );
        assert!(r.population_measured_m > 5000.0, "world mostly measured");
    }

    #[test]
    fn relaxed_apps_cover_everyone_strict_apps_almost_no_one() {
        let r = report();
        let smart_home = r.application("Smart home").unwrap();
        assert!(
            smart_home.population_covered > 0.95,
            "{}",
            smart_home.population_covered
        );
        let av = r.application("Autonomous vehicles").unwrap();
        assert!(av.population_covered < 0.3, "{}", av.population_covered);
        // Coverage is monotone in the requirement.
        for pair in r.rows.windows(2) {
            assert!(pair[0].population_covered >= pair[1].population_covered);
        }
    }

    #[test]
    fn country_and_population_coverage_diverge() {
        // Population concentrates in well-connected countries, so
        // population coverage should generally exceed country coverage
        // for mid-range requirements — the paper's framing depends on
        // this (people, not land area).
        let r = report();
        let gaming = r.application("Cloud gaming").unwrap();
        assert!(
            gaming.population_covered >= gaming.countries_covered - 0.05,
            "pop {} vs countries {}",
            gaming.population_covered,
            gaming.countries_covered
        );
    }
}
