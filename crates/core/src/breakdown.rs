//! TEXT2: "Where is the Delay?" made quantitative.
//!
//! §4.3 asks the question; the paper answers it qualitatively
//! (insufficient infrastructure deployment + last-mile access). This
//! study answers it with traceroute-style hop attribution: for each
//! probe, the RTT to its nearest datacenter is decomposed into the
//! access, metro-aggregation, national-backbone, interconnection-hub
//! and datacenter segments, then aggregated per continent.
//!
//! The paper's two claims become directly checkable: in well-connected
//! regions the last mile dominates (so edge servers past the access
//! segment cannot help much), while in under-served regions the
//! backbone/interconnect share dominates (so infrastructure — not edge
//! — is the fix).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shears_atlas::Platform;
use shears_geo::Continent;
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::stochastic::SimRng;
use shears_netsim::topology::NodeKind;
use shears_netsim::{SimTime, TracerouteProber};

use crate::kernels;

/// The delay segments a hop can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Probe's last mile up to and including the access router.
    Access,
    /// Metro aggregation.
    Metro,
    /// National backbone PoPs.
    NationalBackbone,
    /// Interconnection hubs (IXPs, cable landings).
    Interconnect,
    /// The provider's own network plus the datacenter front door: for
    /// private-backbone providers the final traceroute delta includes
    /// the (possibly transcontinental) private span from the entry hub,
    /// so this segment reads as "inside the provider's network".
    Datacenter,
}

impl Segment {
    /// All segments in path order.
    pub const ALL: [Segment; 5] = [
        Segment::Access,
        Segment::Metro,
        Segment::NationalBackbone,
        Segment::Interconnect,
        Segment::Datacenter,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Segment::Access => "access",
            Segment::Metro => "metro",
            Segment::NationalBackbone => "national",
            Segment::Interconnect => "interconnect",
            Segment::Datacenter => "provider-net+dc",
        }
    }

    fn of(kind: NodeKind) -> Option<Segment> {
        match kind {
            NodeKind::AccessRouter => Some(Segment::Access),
            NodeKind::MetroPop => Some(Segment::Metro),
            NodeKind::BackbonePop => Some(Segment::NationalBackbone),
            NodeKind::IxpHub => Some(Segment::Interconnect),
            NodeKind::Datacenter | NodeKind::EdgeSite => Some(Segment::Datacenter),
            NodeKind::ProbeHost => None,
        }
    }
}

/// Per-continent delay decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Continent.
    pub continent: Continent,
    /// Probes traced.
    pub probes: usize,
    /// Median destination RTT, ms.
    pub median_rtt_ms: f64,
    /// Median absolute contribution per segment, ms (path order).
    pub segment_ms: [f64; 5],
}

impl BreakdownRow {
    /// Fraction of the (segment-sum) RTT spent in `segment`.
    pub fn share(&self, segment: Segment) -> f64 {
        let total: f64 = self.segment_ms.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let idx = Segment::ALL.iter().position(|&s| s == segment).unwrap();
        self.segment_ms[idx] / total
    }
}

/// The TEXT2 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownReport {
    /// One row per continent with traced probes.
    pub rows: Vec<BreakdownRow>,
}

impl BreakdownReport {
    /// Row lookup.
    pub fn continent(&self, c: Continent) -> Option<&BreakdownRow> {
        self.rows.iter().find(|r| r.continent == c)
    }
}

/// Traces up to `max_probes_per_continent` unprivileged probes to their
/// geographically nearest datacenter, `repetitions` times each, and
/// aggregates median segment contributions.
pub fn delay_breakdown(
    platform: &Platform,
    max_probes_per_continent: usize,
    repetitions: u32,
    seed: u64,
) -> BreakdownReport {
    let mut prober = TracerouteProber::new(platform.topology());
    let master = SimRng::new(seed);
    let mut acc: HashMap<Continent, (Vec<f64>, [Vec<f64>; 5])> = HashMap::new();
    let mut counted: HashMap<Continent, usize> = HashMap::new();
    for probe in platform.unprivileged_probes() {
        let slot = counted.entry(probe.continent).or_default();
        if *slot >= max_probes_per_continent {
            continue;
        }
        let Some(&target) = platform.targets_for(probe, 1, 1).first() else {
            continue;
        };
        *slot += 1;
        let mut rng = master.fork_keyed(u64::from(probe.id.0), 0);
        for rep in 0..repetitions {
            let at = SimTime::from_hours(u64::from(rep) * 5);
            let Some(out) = prober.trace(
                platform.probe_node(probe.id),
                platform.dc_node(target as usize),
                Some(probe.access),
                DiurnalLoad::residential(),
                at,
                &mut rng,
            ) else {
                break;
            };
            let Some(rtt) = out.destination_rtt_ms() else {
                continue;
            };
            let entry = acc
                .entry(probe.continent)
                .or_insert_with(|| (Vec::new(), Default::default()));
            entry.0.push(rtt);
            let mut per_segment = [0.0f64; 5];
            for (kind, delta) in out.segment_deltas() {
                if let Some(seg) = Segment::of(kind) {
                    let idx = Segment::ALL.iter().position(|&s| s == seg).unwrap();
                    per_segment[idx] += delta;
                }
            }
            for (i, v) in per_segment.iter().enumerate() {
                entry.1[i].push(*v);
            }
        }
    }
    let rows = Continent::ALL
        .iter()
        .filter_map(|&c| {
            let (rtts, segments) = acc.remove(&c)?;
            let probes = counted.get(&c).copied().unwrap_or(0);
            let median_rtt_ms = kernels::median(&rtts)?;
            let mut segment_ms = [0.0f64; 5];
            for (i, v) in segments.into_iter().enumerate() {
                segment_ms[i] = kernels::median(&v).unwrap_or(0.0);
            }
            Some(BreakdownRow {
                continent: c,
                probes,
                median_rtt_ms,
                segment_ms,
            })
        })
        .collect();
    BreakdownReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{FleetConfig, PlatformConfig};

    fn report() -> BreakdownReport {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 300,
                seed: 61,
            },
            ..PlatformConfig::default()
        });
        delay_breakdown(&platform, 40, 3, 0xB12)
    }

    #[test]
    fn covers_all_continents_with_positive_rtts() {
        let r = report();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(row.probes > 0);
            assert!(row.median_rtt_ms > 0.0, "{}", row.continent);
        }
    }

    #[test]
    fn access_dominates_in_well_connected_regions() {
        // The paper's core §4.3 finding: in EU/NA the last mile is the
        // bottleneck, so the access share leads the decomposition.
        let r = report();
        for c in [Continent::Europe, Continent::NorthAmerica] {
            let row = r.continent(c).unwrap();
            let access = row.share(Segment::Access);
            for seg in [Segment::Metro, Segment::NationalBackbone, Segment::Datacenter] {
                assert!(
                    access >= row.share(seg),
                    "{c}: access {access} < {seg:?} {}",
                    row.share(seg)
                );
            }
        }
    }

    #[test]
    fn under_served_regions_spend_more_in_the_core() {
        // In Africa the interconnect/national share beats what EU pays:
        // the delay is infrastructure, not the last mile.
        let r = report();
        let eu = r.continent(Continent::Europe).unwrap();
        let af = r.continent(Continent::Africa).unwrap();
        let core =
            |row: &BreakdownRow| row.share(Segment::Interconnect) + row.share(Segment::NationalBackbone);
        assert!(
            core(af) > core(eu),
            "Africa core share {} should exceed EU {}",
            core(af),
            core(eu)
        );
        assert!(af.median_rtt_ms > eu.median_rtt_ms);
    }

    #[test]
    fn shares_sum_to_one() {
        let r = report();
        for row in &r.rows {
            let sum: f64 = Segment::ALL.iter().map(|&s| row.share(s)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", row.continent);
        }
    }
}
