//! TEXT3: temporal structure of the measurements.
//!
//! The campaign spans months of three-hourly rounds, so two temporal
//! questions are answerable that single-shot studies cannot ask:
//!
//! * **diurnal shape** — RTT by *local* hour of day: residential
//!   congestion peaks in the evening (the bufferbloat literature's
//!   load pattern; our simulator models it, this analysis verifies the
//!   data actually shows it);
//! * **longitudinal stability** — per-week medians: the paper's Fig. 7
//!   plots flat lines over the measurement period, implying the wired/
//!   wireless structure is stationary rather than an artefact of one
//!   lucky week.

use serde::{Deserialize, Serialize};
use shears_netsim::SimTime;

use crate::data::CampaignData;
use crate::kernels;

/// Median RTT per local hour-of-day bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// `buckets[h]` = median RTT of samples whose probe-local time of
    /// day falls in hour `h` (`None` when the bucket is empty).
    pub buckets: Vec<Option<f64>>,
    /// Samples analysed.
    pub samples: usize,
}

impl DiurnalProfile {
    /// The quietest and busiest hours (by median), when computable.
    pub fn extremes(&self) -> Option<(usize, usize)> {
        let present: Vec<(usize, f64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(h, v)| v.map(|v| (h, v)))
            .collect();
        if present.len() < 12 {
            return None;
        }
        let min = present
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))?
            .0;
        let max = present
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))?
            .0;
        Some((min, max))
    }

    /// Peak-to-trough ratio of the medians.
    pub fn swing(&self) -> Option<f64> {
        let (lo, hi) = self.extremes()?;
        match (self.buckets[lo], self.buckets[hi]) {
            (Some(l), Some(h)) if l > 0.0 => Some(h / l),
            _ => None,
        }
    }
}

/// Computes the diurnal profile over every responded round (all
/// continents pooled; congestion follows local time by construction,
/// so pooling is sound once hours are localised). This stays on the
/// streaming iterator: it touches every sample exactly once with no
/// aggregate the frame could pre-answer.
pub fn diurnal_profile(data: &CampaignData<'_>) -> DiurnalProfile {
    let mut per_hour: Vec<Vec<f64>> = vec![Vec::new(); 24];
    let mut samples = 0;
    for (probe, s) in data.filtered_responded() {
        let hour = s.at.local_hour_of_day(probe.location.lon) as usize % 24;
        // Use the round's *average* (not min-of-3): congestion is the
        // signal here, and minima are designed to strip it.
        if s.avg_ms.is_finite() {
            per_hour[hour].push(f64::from(s.avg_ms));
            samples += 1;
        }
    }
    DiurnalProfile {
        // Selection-kernel medians: exact nearest-rank per bucket with
        // no per-bucket sort.
        buckets: per_hour
            .into_iter()
            .map(|v| kernels::median(&v))
            .collect(),
        samples,
    }
}

/// Per-window medians over the campaign (longitudinal stability view).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StabilitySeries {
    /// Window width.
    pub window: SimTime,
    /// `(window start, median RTT)` pairs in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl StabilitySeries {
    /// Relative spread of the window medians: (max − min) / overall
    /// median. Small = stationary campaign.
    pub fn relative_spread(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let values: Vec<f64> = self.points.iter().map(|(_, v)| *v).collect();
        let overall = kernels::median(&values)?;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((max - min) / overall)
    }
}

/// Computes the per-window median series via the frame's time index:
/// each window is a binary-searched slice instead of a full-store
/// bucketing pass. Windows with no surviving samples are skipped, as
/// the bucketing path did.
pub fn stability_series(data: &CampaignData<'_>, window: SimTime) -> StabilitySeries {
    assert!(window.as_nanos() > 0, "window must be positive");
    let frame = data.frame();
    let mut points = Vec::new();
    if let Some((first, last)) = frame.time_span(data.store()) {
        let w = window.as_nanos();
        for k in (first.as_nanos() / w)..=(last.as_nanos() / w) {
            let from = SimTime::from_nanos(k * w);
            let to = SimTime::from_nanos((k + 1) * w);
            let values: Vec<f64> = frame
                .in_window(data.store(), from, to)
                .filter(|s| !frame.is_privileged(s.probe) && s.responded())
                .map(|s| f64::from(s.min_ms))
                .collect();
            if let Some(m) = kernels::median(&values) {
                points.push((from, m));
            }
        }
    }
    StabilitySeries { window, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn data() -> (Platform, shears_atlas::ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 350,
                seed: 111,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 32, // four simulated days of 3-hourly rounds
                targets_per_probe: 2,
                adjacent_targets: 1,
                ..CampaignConfig::quick()
            },
        )
        .run_parallel(4)
        .unwrap();
        (platform, store)
    }

    #[test]
    fn evening_is_slower_than_early_morning() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let profile = diurnal_profile(&view);
        assert!(profile.samples > 1000);
        let (quiet, busy) = profile.extremes().expect("enough hourly coverage");
        // The residential model peaks at 21:00 local, troughs early
        // morning; allow generous windows.
        assert!(
            (18..=23).contains(&busy),
            "busiest hour {busy} not in the evening"
        );
        assert!(
            (2..=11).contains(&quiet),
            "quietest hour {quiet} not in the morning"
        );
        let swing = profile.swing().unwrap();
        assert!(swing > 1.05, "diurnal swing {swing} too flat");
    }

    #[test]
    fn campaign_is_longitudinally_stationary() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let series = stability_series(&view, SimTime::from_hours(24));
        assert!(series.points.len() >= 3);
        let spread = series.relative_spread().unwrap();
        assert!(
            spread < 0.25,
            "per-day medians vary by {spread} of the median"
        );
        // Points are time-ordered.
        assert!(series.points.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let (platform, store) = data();
        let view = CampaignData::new(&platform, &store);
        let _ = stability_series(&view, SimTime::ZERO);
    }
}
