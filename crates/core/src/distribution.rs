//! §4.3 "Where is the Delay?" — Figure 6.
//!
//! Unlike Fig. 5's per-probe minima, Fig. 6 plots *every* measurement
//! round (to each probe's closest datacenter), so congestion, jitter
//! and bufferbloat are all in the picture — "the reality of the cloud".

use shears_geo::Continent;

use crate::data::CampaignData;
use crate::kernels;
use crate::stats::{Ecdf, Summary};

/// Fig. 6: per-continent distributions of all rounds.
#[derive(Debug, Clone)]
pub struct AllSamplesCdfs {
    /// One ECDF per continent over every round's min-of-3-packets RTT.
    pub by_continent: Vec<(Continent, Ecdf)>,
}

impl AllSamplesCdfs {
    /// The ECDF of one continent.
    pub fn continent(&self, c: Continent) -> Option<&Ecdf> {
        self.by_continent
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, e)| e)
    }

    /// Fraction of a continent's rounds at or below `ms`.
    pub fn fraction_within(&self, c: Continent, ms: f64) -> f64 {
        self.continent(c)
            .map(|e| e.fraction_at_or_below(ms))
            .unwrap_or(0.0)
    }

    /// Distribution summary per continent (for the report tables).
    /// Borrows each ECDF's already-sorted samples — no copy, no re-sort.
    pub fn summaries(&self) -> Vec<(Continent, Option<Summary>)> {
        self.by_continent
            .iter()
            .map(|(c, e)| (*c, Summary::of_ecdf(e)))
            .collect()
    }
}

/// Computes Fig. 6 over each probe's closest-DC rounds, streamed from
/// the frame's cached resolution (the historical path materialized the
/// full per-sample `Vec` on every call — twice per report, once here
/// and once in [`europe_tail_split`]).
pub fn all_samples_cdfs(data: &CampaignData<'_>) -> AllSamplesCdfs {
    // Dense Continent::slot-indexed grouping: no per-sample hashing.
    let mut per_continent: [Vec<f64>; 6] = Default::default();
    for (probe, rtt) in data.frame().closest_dc(data.platform(), data.store()) {
        per_continent[probe.continent.slot()].push(rtt);
    }
    AllSamplesCdfs {
        by_continent: Continent::ALL
            .iter()
            .zip(per_continent)
            .map(|(&c, v)| (c, Ecdf::new(v)))
            .collect(),
    }
}

/// The tail-provenance check of §4.3: within Europe, how much worse is
/// the long tail in low-infrastructure countries? Returns `(p95 of
/// advanced-tier EU probes, p95 of lower-tier EU probes)` — the paper's
/// finding is that "the primary contributors to the tail are probes in
/// eastern EU and countries without local or neighboring datacenters".
pub fn europe_tail_split(data: &CampaignData<'_>) -> Option<(f64, f64)> {
    let atlas = data.platform().countries();
    let mut advanced = Vec::new();
    let mut lower = Vec::new();
    for (probe, rtt) in data.frame().closest_dc(data.platform(), data.store()) {
        if probe.continent != Continent::Europe {
            continue;
        }
        let quality = atlas
            .by_code(&probe.country)
            .map(|c| c.infra_quality)
            .unwrap_or(0.5);
        if quality >= 0.8 {
            advanced.push(rtt);
        } else {
            lower.push(rtt);
        }
    }
    // Selection kernel: the exact nearest-rank p95 without sorting
    // either population (bit-identical to the former Ecdf path).
    let a = kernels::percentile(&advanced, 0.95)?;
    let l = kernels::percentile(&lower, 0.95)?;
    Some((a, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    fn campaign_data() -> (Platform, shears_atlas::ResultStore) {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 400,
                seed: 33,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 8,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        (platform, store)
    }

    #[test]
    fn fig6_shape_holds() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let cdfs = all_samples_cdfs(&data);
        // Paper: >75 % of NA/EU/OC rounds below the PL threshold. At
        // this test scale Oceania is dominated by its forced-minimum
        // Pacific-island probes (AU/NZ dominate only in paper-scale
        // fleets, where the full threshold holds — see EXPERIMENTS.md),
        // so its bound is relaxed here.
        for (c, bound) in [
            (Continent::NorthAmerica, 0.7),
            (Continent::Europe, 0.7),
            (Continent::Oceania, 0.55),
        ] {
            let f = cdfs.fraction_within(c, 100.0);
            assert!(f > bound, "{c}: only {f} below PL");
        }
        // The top quartile of NA/EU supports MTP.
        for c in [Continent::NorthAmerica, Continent::Europe] {
            let q25 = cdfs.continent(c).unwrap().quantile(0.25).unwrap();
            assert!(q25 < 20.0, "{c}: p25 {q25} ms above MTP");
        }
        // Africa is the worst continent.
        let af_med = cdfs.continent(Continent::Africa).unwrap().median().unwrap();
        for c in [Continent::NorthAmerica, Continent::Europe, Continent::Oceania] {
            let med = cdfs.continent(c).unwrap().median().unwrap();
            assert!(af_med > med, "{c} median {med} >= Africa {af_med}");
        }
    }

    #[test]
    fn full_distribution_is_slower_than_minima() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let all = all_samples_cdfs(&data);
        let mins = crate::proximity::probe_min_cdfs(&data);
        for c in Continent::ALL {
            let med_all = all.continent(c).and_then(Ecdf::median);
            let med_min = mins.continent(c).and_then(Ecdf::median);
            if let (Some(a), Some(m)) = (med_all, med_min) {
                assert!(a >= m, "{c}: all-rounds median {a} < minima median {m}");
            }
        }
    }

    #[test]
    fn europe_tail_comes_from_low_infra_countries() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let (advanced_p95, lower_p95) = europe_tail_split(&data).unwrap();
        assert!(
            lower_p95 > advanced_p95,
            "lower-tier EU p95 {lower_p95} should exceed advanced {advanced_p95}"
        );
    }

    #[test]
    fn summaries_cover_all_continents() {
        let (platform, store) = campaign_data();
        let data = CampaignData::new(&platform, &store);
        let summaries = all_samples_cdfs(&data).summaries();
        assert_eq!(summaries.len(), 6);
        assert!(summaries.iter().all(|(_, s)| s.is_some()));
    }
}
