//! TEXT1: the in-text headline numbers of §4 and §5.
//!
//! These are the sentences reviewers quote: "32 countries can access
//! the cloud with RTTs less than 10 ms", "around 80 % probes in Europe
//! and North America … can access a cloud datacenter within MTP",
//! "clients rarely observe latencies above 40 ms" (the Facebook
//! comparison). [`headline_numbers`] computes them all from one
//! campaign.

use serde::{Deserialize, Serialize};
use shears_apps::feasibility::FeasibilityZone;
use shears_geo::Continent;
use shears_netsim::SimTime;

use crate::data::CampaignData;
use crate::distribution::all_samples_cdfs;
use crate::lastmile::last_mile_report;
use crate::proximity::{country_min_report, probe_min_cdfs};

/// The paper's headline statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Countries whose best probe reaches a DC in under 10 ms (paper: 32).
    pub countries_under_10ms: usize,
    /// Countries in the 10–20 ms band (paper: 21).
    pub countries_10_to_20ms: usize,
    /// Countries above the PL threshold (paper: 16, mostly African).
    pub countries_above_pl: usize,
    /// …of which African.
    pub countries_above_pl_african: usize,
    /// Fraction of EU probes within MTP by campaign minimum (paper ≈0.8).
    pub eu_probes_within_mtp: f64,
    /// Fraction of NA probes within MTP (paper ≈0.8).
    pub na_probes_within_mtp: f64,
    /// Fraction of Oceania probes within 50 ms (paper: "almost all").
    pub oceania_within_50ms: f64,
    /// Fraction of African probes within PL (paper ≈0.75).
    pub africa_within_pl: f64,
    /// Fraction of LatAm probes within PL (paper ≈0.75).
    pub latam_within_pl: f64,
    /// Fraction of *all* closest-DC rounds at or under 40 ms in EU+NA —
    /// the Facebook-IMC'19 sanity check of §5.
    pub eu_na_rounds_under_40ms: f64,
    /// Wireless ÷ wired median ratio (paper ≈2.5).
    pub wireless_ratio: Option<f64>,
    /// The measured feasibility zone implied by the campaign.
    pub feasibility_zone: FeasibilityZone,
}

/// Computes every headline number from one campaign. The four figure
/// passes below all draw on the view's memoized [`CampaignFrame`], so
/// the whole report costs one store scan (the frame build) plus index
/// lookups.
///
/// [`CampaignFrame`]: crate::frame::CampaignFrame
pub fn headline_numbers(data: &CampaignData<'_>) -> Headline {
    let fig4 = country_min_report(data);
    let atlas = data.platform().countries();
    let countries_above_pl_african = fig4
        .above_pl
        .iter()
        .filter(|cc| {
            atlas
                .by_code(cc)
                .is_some_and(|c| c.continent == Continent::Africa)
        })
        .count();
    let fig5 = probe_min_cdfs(data);
    let fig6 = all_samples_cdfs(data);
    let fig7 = last_mile_report(data, SimTime::from_hours(24));

    // The measured feasibility-zone floor: the wireless set's median
    // access advantage — i.e. what a basestation-co-located edge could
    // at best deliver to a wireless client. Fall back to the paper's
    // 10 ms when the wireless set is empty.
    let wireless_floor = fig7
        .as_ref()
        .map(|r| (r.added_ms / 2.0).clamp(5.0, 30.0))
        .unwrap_or(10.0);

    let eu_na_rounds_under_40ms = {
        let eu = fig6.continent(Continent::Europe);
        let na = fig6.continent(Continent::NorthAmerica);
        let (mut hits, mut n) = (0.0, 0.0);
        for e in [eu, na].into_iter().flatten() {
            hits += e.fraction_at_or_below(40.0) * e.len() as f64;
            n += e.len() as f64;
        }
        if n > 0.0 {
            hits / n
        } else {
            0.0
        }
    };

    Headline {
        countries_under_10ms: fig4.bucket_counts[0],
        countries_10_to_20ms: fig4.bucket_counts[1],
        countries_above_pl: fig4.above_pl.len(),
        countries_above_pl_african,
        eu_probes_within_mtp: fig5.fraction_within(Continent::Europe, 20.0),
        na_probes_within_mtp: fig5.fraction_within(Continent::NorthAmerica, 20.0),
        oceania_within_50ms: fig5.fraction_within(Continent::Oceania, 50.0),
        africa_within_pl: fig5.fraction_within(Continent::Africa, 100.0),
        latam_within_pl: fig5.fraction_within(Continent::LatinAmerica, 100.0),
        eu_na_rounds_under_40ms,
        wireless_ratio: fig7.as_ref().map(|r| r.ratio),
        feasibility_zone: FeasibilityZone::from_measurements(wireless_floor, 250.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};

    #[test]
    fn headline_shape_matches_paper() {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 600,
                seed: 99,
            },
            ..PlatformConfig::default()
        });
        let store = Campaign::new(
            &platform,
            CampaignConfig {
                rounds: 6,
                targets_per_probe: 3,
                adjacent_targets: 2,
                ..CampaignConfig::quick()
            },
        )
        .run()
        .unwrap();
        let data = CampaignData::new(&platform, &store);
        let h = headline_numbers(&data);

        // Fig. 4 headline band (paper: 32 / 21 / 16) — shape, not digits.
        assert!(
            (15..=60).contains(&h.countries_under_10ms),
            "<10 ms countries: {}",
            h.countries_under_10ms
        );
        assert!(h.countries_10_to_20ms >= 8, "{}", h.countries_10_to_20ms);
        assert!(
            h.countries_above_pl <= 45,
            "above PL: {}",
            h.countries_above_pl
        );
        assert!(
            h.countries_above_pl_african * 2 >= h.countries_above_pl,
            "African {} of {} above-PL countries",
            h.countries_above_pl_african,
            h.countries_above_pl
        );

        // Fig. 5 headlines.
        assert!(h.eu_probes_within_mtp > 0.55, "{}", h.eu_probes_within_mtp);
        assert!(h.na_probes_within_mtp > 0.55, "{}", h.na_probes_within_mtp);
        // Paper: "almost all" — holds for paper-scale fleets where AU/NZ
        // dominate Oceania; at this test scale the forced-minimum island
        // probes weigh in, so the bound is relaxed (see EXPERIMENTS.md).
        assert!(h.oceania_within_50ms > 0.55, "{}", h.oceania_within_50ms);
        assert!(h.africa_within_pl > 0.4, "{}", h.africa_within_pl);
        assert!(h.latam_within_pl > 0.5, "{}", h.latam_within_pl);

        // Facebook 40 ms check: the clear majority of EU/NA rounds.
        assert!(
            h.eu_na_rounds_under_40ms > 0.5,
            "{}",
            h.eu_na_rounds_under_40ms
        );

        // Wireless penalty present.
        let ratio = h.wireless_ratio.expect("wireless set non-empty");
        assert!(ratio > 1.3, "{ratio}");

        // The implied zone is sane.
        assert!(h.feasibility_zone.latency_floor_ms >= 5.0);
        assert!(h.feasibility_zone.latency_ceiling_ms <= 250.0);
    }
}
