//! Statistical primitives: ECDFs, quantiles and summaries.
//!
//! Everything the paper plots is either an empirical CDF (Figs. 5, 6)
//! or an order statistic of one; these are the only tools the pipeline
//! needs, so they are implemented exactly rather than approximately.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over f64 samples.
///
/// Construction sorts once; evaluation is a binary search. Non-finite
/// inputs are rejected at construction so every query is total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF, dropping non-finite samples. Takes ownership of
    /// the buffer: retain + sort happen in place, and the unstable sort
    /// allocates no scratch (under `total_cmp`, equal means bit-equal,
    /// so stability cannot change the sorted sequence).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_unstable_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0 for an empty ECDF.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest-rank, `q` clamped to `[0, 1]`), or
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Evaluates the CDF on a fixed grid — the series the figure
    /// binaries print: `(x, P(X <= x))` pairs.
    pub fn curve(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }

    /// The sorted samples (read-only).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Five-number-plus summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises samples (non-finite values dropped); `None` if none
    /// remain. One buffer copy, sorted in place — callers that already
    /// hold an [`Ecdf`] should use [`Summary::of_ecdf`], which copies
    /// nothing.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let mut owned = samples.to_vec();
        owned.retain(|v| v.is_finite());
        owned.sort_unstable_by(f64::total_cmp);
        Self::of_sorted(&owned)
    }

    /// Summarises an already-built ECDF without copying its samples.
    pub fn of_ecdf(ecdf: &Ecdf) -> Option<Summary> {
        Self::of_sorted(ecdf.samples())
    }

    /// Core: all eight statistics off one ascending `total_cmp`-sorted
    /// slice. The mean is a sequential left-to-right sum over that
    /// order — the accumulation order is part of the bit contract.
    fn of_sorted(sorted: &[f64]) -> Option<Summary> {
        if sorted.is_empty() {
            return None;
        }
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        // Nearest rank, exactly `Ecdf::quantile`'s formula.
        let q = |q: f64| {
            sorted[((q * n as f64).ceil() as usize)
                .saturating_sub(1)
                .min(n - 1)]
        };
        Some(Summary {
            n,
            min: sorted[0],
            p25: q(0.25),
            median: q(0.5),
            mean,
            p75: q(0.75),
            p95: q(0.95),
            max: sorted[n - 1],
        })
    }
}

/// A bootstrap confidence interval for a median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MedianCi {
    /// Point estimate (sample median).
    pub median: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

/// Seeded bootstrap confidence interval for the median: `resamples`
/// with-replacement resamples, percentile method. Deterministic given
/// the seed, like everything else in the reproduction — figure outputs
/// can carry intervals without losing bit-reproducibility.
///
/// Returns `None` for empty input (after dropping non-finite values).
pub fn bootstrap_median_ci(
    samples: &[f64],
    resamples: u32,
    level: f64,
    seed: u64,
) -> Option<MedianCi> {
    let base = Ecdf::new(samples.to_vec());
    if base.is_empty() {
        return None;
    }
    let level = level.clamp(0.5, 0.999);
    let data = base.samples();
    let n = data.len();
    // SplitMix64: self-contained, avoids a rand dependency here.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    // The base is already sorted, and index → data[index] is monotone
    // under `total_cmp`, so the resample's median is the value at the
    // (n/2)-th smallest *index*: selection over integers, no per-
    // resample sort, no per-resample allocation. The generator is
    // drawn exactly as before (n draws per resample, in order), so
    // seeded results are bit-identical to the sort-based path.
    let mut idxs = vec![0usize; n];
    let mut medians: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            for slot in idxs.iter_mut() {
                *slot = (next() % n as u64) as usize;
            }
            let (_, mid, _) = idxs.select_nth_unstable(n / 2);
            data[*mid]
        })
        .collect();
    medians.sort_unstable_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| {
        ((q * medians.len() as f64).floor() as usize).min(medians.len() - 1)
    };
    Some(MedianCi {
        median: base.median()?,
        lo: medians[idx(alpha)],
        hi: medians[idx(1.0 - alpha)],
        level,
    })
}

/// Kolmogorov–Smirnov distance between two ECDFs: the maximum vertical
/// gap. Used by tests to compare distributions and by the expansion
/// study to quantify how much the 2010→2020 build-out moved latency.
///
/// A single two-pointer merge over the two sorted sample arrays —
/// O(n + m) instead of a binary search per sample. The gap only changes
/// at sample values, and advancing each pointer past every sample
/// `<= x` computes exactly `fraction_at_or_below(x)`'s numerator, so
/// the result matches the per-sample evaluation bit for bit.
pub fn ks_distance(a: &Ecdf, b: &Ecdf) -> f64 {
    let (xs, ys) = (a.samples(), b.samples());
    match (xs.is_empty(), ys.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xs.len() || j < ys.len() {
        let x = match (xs.get(i), ys.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => unreachable!(),
        };
        // Numeric `<=`, the same predicate `fraction_at_or_below`
        // binary-searches (it also merges -0.0 with +0.0).
        while i < xs.len() && xs[i] <= x {
            i += 1;
        }
        while j < ys.len() && ys[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basic_evaluation() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.5), 0.5);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn ecdf_drops_non_finite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), Some(2.0));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.25), Some(25.0));
        assert_eq!(e.median(), Some(50.0));
        assert_eq!(e.quantile(0.95), Some(95.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(e.quantile(2.0), Some(100.0), "clamped");
    }

    #[test]
    fn empty_ecdf_is_total() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(10.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.min(), None);
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0, 3.0, 3.0]);
        let grid: Vec<f64> = (0..12).map(f64::from).collect();
        let curve = e.curve(&grid);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_of_known_set() {
        let s = Summary::of(&(1..=100).map(f64::from).collect::<Vec<_>>()).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 50.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_of_empty_or_nan_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn bootstrap_ci_brackets_the_median() {
        let samples: Vec<f64> = (1..=99).map(f64::from).collect();
        let ci = bootstrap_median_ci(&samples, 400, 0.95, 7).unwrap();
        assert_eq!(ci.median, 50.0);
        assert!(ci.lo <= ci.median && ci.median <= ci.hi);
        // For n=99 uniform-ish data the 95% CI is comfortably inside
        // [35, 65].
        assert!(ci.lo > 35.0 && ci.hi < 65.0, "{ci:?}");
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_narrows_with_n() {
        let small: Vec<f64> = (1..=20).map(f64::from).collect();
        let large: Vec<f64> = (1..=2000).map(|i| f64::from(i) / 20.0).collect();
        let a = bootstrap_median_ci(&small, 300, 0.95, 1).unwrap();
        let b = bootstrap_median_ci(&small, 300, 0.95, 1).unwrap();
        assert_eq!(a, b, "same seed, same interval");
        let big = bootstrap_median_ci(&large, 300, 0.95, 1).unwrap();
        let rel = |ci: &MedianCi| (ci.hi - ci.lo) / ci.median;
        assert!(rel(&big) < rel(&a), "more data, tighter interval");
    }

    #[test]
    fn bootstrap_ci_handles_degenerate_input() {
        assert!(bootstrap_median_ci(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap_median_ci(&[f64::NAN], 100, 0.95, 1).is_none());
        let one = bootstrap_median_ci(&[5.0], 100, 0.95, 1).unwrap();
        assert_eq!((one.lo, one.median, one.hi), (5.0, 5.0, 5.0));
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn random_samples(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..len)
            .map(|_| match splitmix(&mut s) % 8 {
                0 => 25.0, // duplicates across both sides
                1 => 0.0,
                2 => -0.0,
                _ => (splitmix(&mut s) % 2000) as f64 / 16.0,
            })
            .collect()
    }

    /// The pre-merge implementation: one binary search per sample.
    fn ks_distance_reference(a: &Ecdf, b: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in a.samples().iter().chain(b.samples()) {
            d = d.max((a.fraction_at_or_below(x) - b.fraction_at_or_below(x)).abs());
        }
        d
    }

    #[test]
    fn ks_two_pointer_matches_the_per_sample_reference() {
        for (la, lb) in [(0, 5), (5, 0), (1, 1), (7, 31), (64, 64), (100, 3), (257, 199)] {
            for seed in 0..10u64 {
                let a = Ecdf::new(random_samples(la, seed));
                let b = Ecdf::new(random_samples(lb, seed.wrapping_mul(31) + 5));
                let want = ks_distance_reference(&a, &b);
                let got = ks_distance(&a, &b);
                assert_eq!(got.to_bits(), want.to_bits(), "{la}x{lb} seed {seed}");
            }
        }
    }

    #[test]
    fn summary_of_ecdf_matches_of_without_copying() {
        for seed in 0..6u64 {
            let mut samples = random_samples(153, seed);
            samples.push(f64::NAN);
            samples.push(f64::INFINITY);
            let via_slice = Summary::of(&samples);
            let via_ecdf = Summary::of_ecdf(&Ecdf::new(samples.clone()));
            assert_eq!(via_slice, via_ecdf, "seed {seed}");
        }
        assert_eq!(Summary::of_ecdf(&Ecdf::new(vec![])), None);
    }

    /// The pre-selection bootstrap: full sort per resample. The new
    /// path must reproduce it bit for bit on every seed.
    fn bootstrap_reference(samples: &[f64], resamples: u32, level: f64, seed: u64) -> Option<MedianCi> {
        let base = Ecdf::new(samples.to_vec());
        if base.is_empty() {
            return None;
        }
        let level = level.clamp(0.5, 0.999);
        let data = base.samples();
        let n = data.len();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut medians: Vec<f64> = (0..resamples.max(1))
            .map(|_| {
                let mut resample: Vec<f64> =
                    (0..n).map(|_| data[(next() % n as u64) as usize]).collect();
                resample.sort_by(f64::total_cmp);
                resample[n / 2]
            })
            .collect();
        medians.sort_by(f64::total_cmp);
        let alpha = (1.0 - level) / 2.0;
        let idx = |q: f64| ((q * medians.len() as f64).floor() as usize).min(medians.len() - 1);
        Some(MedianCi {
            median: base.median()?,
            lo: medians[idx(alpha)],
            hi: medians[idx(1.0 - alpha)],
            level,
        })
    }

    #[test]
    fn bootstrap_selection_path_is_bit_identical_to_the_sorting_path() {
        for seed in [0u64, 1, 7, 42, 1234567] {
            for len in [1usize, 2, 9, 100] {
                let samples = random_samples(len, seed + 99);
                let want = bootstrap_reference(&samples, 200, 0.95, seed);
                let got = bootstrap_median_ci(&samples, 200, 0.95, seed);
                assert_eq!(got, want, "len {len} seed {seed}");
            }
        }
    }

    #[test]
    fn ks_distance_properties() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(ks_distance(&a, &b), 0.0);
        let c = Ecdf::new(vec![11.0, 12.0, 13.0]);
        assert_eq!(ks_distance(&a, &c), 1.0);
        let d = Ecdf::new(vec![1.0, 2.0, 13.0]);
        let ks = ks_distance(&a, &d);
        assert!(ks > 0.3 && ks < 0.4, "{ks}");
    }
}
