//! EXT6: per-provider comparison (the CloudCmp angle).
//!
//! §4.1 notes the providers differ structurally — private backbones
//! with wide ISP peering (Amazon, Google, Azure, Alibaba) versus public
//! Internet transit (Digital Ocean, Linode, Vultr) — and cites Li et
//! al.'s decade-old CloudCmp as the last multi-cloud comparison. This
//! study redoes that comparison on the simulated platform: for every
//! probe, the RTT floor to each provider's nearest region, aggregated
//! per provider and continent.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shears_atlas::Platform;
use shears_cloud::Provider;
use shears_geo::Continent;
use shears_netsim::ping::PathSampler;
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::routing::Router;

use crate::kernels;
#[cfg(test)]
use crate::stats::Ecdf;

/// Per-provider, per-continent medians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderRow {
    /// The provider.
    pub provider: Provider,
    /// Median floor RTT per continent (paper display order; `None`
    /// where no probe produced a value).
    pub median_ms: Vec<(Continent, Option<f64>)>,
    /// Global median over all probes.
    pub global_median_ms: Option<f64>,
}

impl ProviderRow {
    /// Median for one continent.
    pub fn continent(&self, c: Continent) -> Option<f64> {
        self.median_ms
            .iter()
            .find(|(cc, _)| *cc == c)
            .and_then(|(_, v)| *v)
    }
}

/// The EXT6 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderReport {
    /// One row per provider, in [`Provider::ALL`] order.
    pub rows: Vec<ProviderRow>,
}

impl ProviderReport {
    /// Row lookup.
    pub fn provider(&self, p: Provider) -> Option<&ProviderRow> {
        self.rows.iter().find(|r| r.provider == p)
    }

    /// Median of the private-backbone providers' global medians vs the
    /// public-transit providers' — the structural split the paper
    /// describes.
    pub fn backbone_split(&self) -> (Option<f64>, Option<f64>) {
        let collect = |private: bool| {
            let v: Vec<f64> = self
                .rows
                .iter()
                .filter(|r| r.provider.has_private_backbone() == private)
                .filter_map(|r| r.global_median_ms)
                .collect();
            kernels::median(&v)
        };
        (collect(true), collect(false))
    }
}

/// Footprint-controlled comparison: median floor RTT from distant
/// probes to each provider's region *in the same city*. Because every
/// provider is measured at the same location, any difference is purely
/// the backbone class (private peering with several hubs vs a single
/// transit attachment). Returns `(provider, median_ms)` for providers
/// present in `city`, sorted fastest first.
///
/// Probes closer than `min_distance_km` to the city are skipped: the
/// backbone difference only materialises on paths that actually cross
/// the core.
pub fn controlled_city_comparison(
    platform: &Platform,
    city: &str,
    min_distance_km: f64,
    max_probes: usize,
) -> Vec<(Provider, f64)> {
    let mut router = Router::new(platform.topology());
    let regions = platform.catalog().regions();
    let mut out = Vec::new();
    for provider in Provider::ALL {
        let Some((idx, region)) = regions
            .iter()
            .enumerate()
            .find(|(_, r)| r.provider == provider && r.city == city)
        else {
            continue;
        };
        let mut floors = Vec::new();
        for probe in platform
            .unprivileged_probes()
            .filter(|p| p.location.distance_km(region.location) >= min_distance_km)
            .take(max_probes)
        {
            if let Some(path) = router.path(platform.probe_node(probe.id), platform.dc_node(idx))
            {
                floors.push(
                    PathSampler::new(
                        path,
                        platform.topology(),
                        Some(probe.access),
                        DiurnalLoad::residential(),
                    )
                    .floor_rtt_ms(),
                );
            }
        }
        if let Some(median) = kernels::median(&floors) {
            out.push((provider, median));
        }
    }
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

/// Computes the comparison over up to `max_probes` unprivileged probes.
pub fn provider_comparison(platform: &Platform, max_probes: usize) -> ProviderReport {
    let mut router = Router::new(platform.topology());
    let mut per_provider: HashMap<Provider, HashMap<Continent, Vec<f64>>> = HashMap::new();
    let regions = platform.catalog().regions();
    for probe in platform.unprivileged_probes().take(max_probes)
    {
        for provider in Provider::ALL {
            // Nearest region of this provider by geography.
            let Some((idx, _)) = regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.provider == provider)
                .min_by(|a, b| {
                    probe
                        .location
                        .distance_km(a.1.location)
                        .total_cmp(&probe.location.distance_km(b.1.location))
                })
            else {
                continue;
            };
            let Some(path) = router.path(platform.probe_node(probe.id), platform.dc_node(idx))
            else {
                continue;
            };
            let floor = PathSampler::new(
                path,
                platform.topology(),
                Some(probe.access),
                DiurnalLoad::residential(),
            )
            .floor_rtt_ms();
            per_provider
                .entry(provider)
                .or_default()
                .entry(probe.continent)
                .or_default()
                .push(floor);
        }
    }
    let rows = Provider::ALL
        .iter()
        .map(|&provider| {
            let by_continent = per_provider.remove(&provider).unwrap_or_default();
            let mut all = Vec::new();
            let median_ms = Continent::ALL
                .iter()
                .map(|&c| {
                    let v = by_continent.get(&c).cloned().unwrap_or_default();
                    all.extend_from_slice(&v);
                    (c, kernels::median(&v))
                })
                .collect();
            ProviderRow {
                provider,
                median_ms,
                global_median_ms: kernels::median(&all),
            }
        })
        .collect();
    ProviderReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{FleetConfig, PlatformConfig};

    fn report() -> ProviderReport {
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 300,
                seed: 83,
            },
            ..PlatformConfig::default()
        });
        provider_comparison(&platform, 150)
    }

    #[test]
    fn all_seven_providers_reported() {
        let r = report();
        assert_eq!(r.rows.len(), 7);
        for row in &r.rows {
            assert!(
                row.global_median_ms.is_some(),
                "{} has no data",
                row.provider
            );
        }
    }

    #[test]
    fn private_backbones_beat_public_transit_footprint_controlled() {
        // Frankfurt hosts regions of six providers, so comparing the
        // same city isolates the backbone class from footprint effects
        // (raw nearest-region medians are footprint-confounded: Vultr's
        // sixteen well-placed regions can beat Alibaba's private but
        // China-centric network).
        let platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 300,
                seed: 83,
            },
            ..PlatformConfig::default()
        });
        let rows = controlled_city_comparison(&platform, "Frankfurt", 1500.0, 150);
        assert!(rows.len() >= 5, "Frankfurt is multi-provider: {rows:?}");
        let median_of = |private: bool| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|(p, _)| p.has_private_backbone() == private)
                .map(|(_, m)| *m)
                .collect();
            Ecdf::new(v).median().unwrap()
        };
        let private = median_of(true);
        let public = median_of(false);
        assert!(
            private < public,
            "same-city private {private} should beat public {public}"
        );
    }

    #[test]
    fn dense_providers_beat_sparse_ones_in_europe() {
        // Amazon/Google/Azure have many EU regions; Digital Ocean has
        // three cities. The EU median must reflect footprint density.
        let r = report();
        let amazon = r
            .provider(Provider::Amazon)
            .unwrap()
            .continent(Continent::Europe)
            .unwrap();
        let digital_ocean = r
            .provider(Provider::DigitalOcean)
            .unwrap()
            .continent(Continent::Europe)
            .unwrap();
        assert!(
            amazon <= digital_ocean + 5.0,
            "Amazon EU {amazon} vs Digital Ocean EU {digital_ocean}"
        );
    }

    #[test]
    fn africa_is_slowest_for_every_provider() {
        let r = report();
        for row in &r.rows {
            let af = row.continent(Continent::Africa);
            let eu = row.continent(Continent::Europe);
            if let (Some(af), Some(eu)) = (af, eu) {
                assert!(af > eu, "{}: Africa {af} <= EU {eu}", row.provider);
            }
        }
    }
}
