//! EXT1: how much would an edge server actually save?
//!
//! §5 cites Hadzic et al. and Cartas et al.: "latency gains for
//! accessing edge server colocated with an LTE basestation is minimal
//! compared to accessing a datacenter located ≈1000 km away". This
//! study quantifies that claim on our platform: co-locate an edge site
//! with every metro PoP, then compare each probe's latency floor to its
//! nearest edge site against its floor to the nearest cloud datacenter.
//!
//! Floors (propagation + access medians, no congestion) are the right
//! statistic here: the edge-vs-cloud gap is a *structural* quantity,
//! and both paths share the same last mile and congestion climate.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use shears_geo::Continent;
use shears_netsim::ping::PathSampler;
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::routing::Router;
use shears_netsim::NodeId;

use shears_atlas::Platform;

use crate::kernels;
use crate::stats::Summary;

/// Per-continent edge-gain numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeGainRow {
    /// Continent.
    pub continent: Continent,
    /// Probes analysed.
    pub probes: usize,
    /// Median RTT floor to the nearest cloud DC, ms.
    pub cloud_median_ms: f64,
    /// Median RTT floor to the nearest edge site, ms.
    pub edge_median_ms: f64,
    /// Median of per-probe gains (cloud − edge), ms.
    pub median_gain_ms: f64,
    /// Fraction of probes whose gain is under 10 ms — probes for which
    /// edge deployment buys essentially nothing.
    pub small_gain_fraction: f64,
}

/// The EXT1 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeGainReport {
    /// One row per continent (paper display order).
    pub rows: Vec<EdgeGainRow>,
}

impl EdgeGainReport {
    /// Row lookup.
    pub fn continent(&self, c: Continent) -> Option<&EdgeGainRow> {
        self.rows.iter().find(|r| r.continent == c)
    }
}

/// Runs the study. Mutates the platform by attaching one edge site per
/// metro PoP (idempotent per call: call once per platform).
///
/// `max_probes_per_continent` caps the work (probes are taken in fleet
/// order, which is country-interleaved enough for a floor study).
pub fn edge_gain_study(
    platform: &mut Platform,
    max_probes_per_continent: usize,
) -> EdgeGainReport {
    // 1. Deploy edge everywhere: one site per metro PoP.
    let metro_codes: Vec<String> = platform
        .countries()
        .countries()
        .iter()
        .map(|c| c.code.to_string())
        .collect();
    let mut edge_sites: Vec<NodeId> = Vec::new();
    for code in &metro_codes {
        let metros: Vec<NodeId> = platform.world().metros(code).to_vec();
        for m in metros {
            edge_sites.push(platform.world_mut().attach_edge_site(m));
        }
    }

    // 2. Per-probe floors.
    let topo = platform.topology();
    let mut router = Router::new(topo);
    // Per continent: (cloud floors, edge floors, per-probe gains).
    type FloorTriple = (Vec<f64>, Vec<f64>, Vec<f64>);
    let mut per_continent: HashMap<Continent, FloorTriple> = HashMap::new();
    let mut counted: HashMap<Continent, usize> = HashMap::new();
    let dc_count = platform.catalog().regions().len();
    for probe in platform.unprivileged_probes() {
        let slot = counted.entry(probe.continent).or_default();
        if *slot >= max_probes_per_continent {
            continue;
        }
        *slot += 1;
        let probe_node = platform.probe_node(probe.id);
        let floor_to = |router: &mut Router, to: NodeId| -> Option<f64> {
            let path = router.path(probe_node, to)?;
            Some(
                PathSampler::new(path, topo, Some(probe.access), DiurnalLoad::residential())
                    .floor_rtt_ms(),
            )
        };
        // Nearest edge: all sites in the probe's own country (metros),
        // plus geographic pruning would be overkill — its country's
        // metros always dominate.
        let edge_floor = platform
            .world()
            .metros(&probe.country)
            .iter()
            .filter_map(|&m| {
                // The edge site attached to metro m is the node created
                // right after it; recover it by nearest-site scan.
                edge_sites
                    .iter()
                    .find(|&&e| topo.node(e).location == topo.node(m).location)
                    .copied()
            })
            .filter_map(|e| floor_to(&mut router, e))
            .fold(f64::INFINITY, f64::min);
        // Nearest cloud DC: floor over the probe's plausible targets —
        // evaluating all 101 would be exact but slow; the nearest 8 by
        // geography always contain the latency-nearest DC in practice.
        let mut candidates: Vec<(f64, usize)> = (0..dc_count)
            .map(|i| {
                (
                    probe
                        .location
                        .distance_km(platform.region(i).location),
                    i,
                )
            })
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        let cloud_floor = candidates
            .iter()
            .take(8)
            .filter_map(|&(_, i)| floor_to(&mut router, platform.dc_node(i)))
            .fold(f64::INFINITY, f64::min);
        if edge_floor.is_finite() && cloud_floor.is_finite() {
            let entry = per_continent.entry(probe.continent).or_default();
            entry.0.push(cloud_floor);
            entry.1.push(edge_floor);
            entry.2.push(cloud_floor - edge_floor);
        }
    }

    let rows = Continent::ALL
        .iter()
        .filter_map(|&c| {
            let (cloud, edge, gains) = per_continent.remove(&c)?;
            let n = gains.len();
            let small = gains.iter().filter(|&&g| g < 10.0).count();
            Some(EdgeGainRow {
                continent: c,
                probes: n,
                cloud_median_ms: kernels::median(&cloud)?,
                edge_median_ms: kernels::median(&edge)?,
                median_gain_ms: kernels::median(&gains)?,
                small_gain_fraction: small as f64 / n as f64,
            })
        })
        .collect();
    EdgeGainReport { rows }
}

/// Convenience: overall summary of per-probe gains across continents.
pub fn gain_summary(report: &EdgeGainReport) -> Option<Summary> {
    let medians: Vec<f64> = report.rows.iter().map(|r| r.median_gain_ms).collect();
    Summary::of(&medians)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{FleetConfig, PlatformConfig};

    #[test]
    fn edge_gain_is_small_in_eu_large_in_africa() {
        let mut platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 350,
                seed: 55,
            },
            ..PlatformConfig::default()
        });
        let report = edge_gain_study(&mut platform, 60);
        let eu = report.continent(Continent::Europe).expect("EU row");
        let af = report.continent(Continent::Africa).expect("Africa row");
        assert!(
            eu.median_gain_ms < 15.0,
            "EU median edge gain {} ms should be small",
            eu.median_gain_ms
        );
        assert!(
            af.median_gain_ms > eu.median_gain_ms,
            "Africa gain {} should exceed EU gain {}",
            af.median_gain_ms,
            eu.median_gain_ms
        );
        // In the EU, most probes gain little.
        assert!(
            eu.small_gain_fraction > 0.5,
            "EU small-gain fraction {}",
            eu.small_gain_fraction
        );
    }

    #[test]
    fn edge_floor_never_exceeds_cloud_floor_by_much() {
        // The edge site shares the probe's metro; it can only be slower
        // than the cloud if a DC is co-located even closer. Medians must
        // therefore satisfy edge <= cloud.
        let mut platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 200,
                seed: 56,
            },
            ..PlatformConfig::default()
        });
        let report = edge_gain_study(&mut platform, 40);
        for row in &report.rows {
            assert!(
                row.edge_median_ms <= row.cloud_median_ms + 1e-9,
                "{}: edge {} > cloud {}",
                row.continent,
                row.edge_median_ms,
                row.cloud_median_ms
            );
            assert!(row.probes > 0);
        }
    }

    #[test]
    fn summary_over_rows() {
        let mut platform = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 150,
                seed: 57,
            },
            ..PlatformConfig::default()
        });
        let report = edge_gain_study(&mut platform, 25);
        let s = gain_summary(&report).unwrap();
        assert!(s.n >= 4, "rows {}", s.n);
        // A DC co-located in the probe's own metro sits one fabric hop
        // (~0.2 ms) closer than the edge site, so continents dominated
        // by DC-hosting metros can show a marginally negative median.
        assert!(s.min >= -1.0, "median gain {} below plausibility", s.min);
    }
}
