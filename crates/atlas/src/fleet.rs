//! Probe-fleet synthesis.
//!
//! Reproduces the *composition* of the RIPE Atlas fleet the paper used:
//! 3200+ probes across 166+ countries, strongly biased towards Europe
//! and North America (RIPE is the European registry; §4.2 notes EU+NA
//! hold about half the probes... more precisely, 80 % of EU+NA probes ≈
//! 50 % of all probes), wired-dominant access with a wireless minority,
//! and a small share of probes in privileged locations that the
//! analysis must filter out.

use shears_geo::sample::GeoSampler;
use shears_geo::{Continent, Country, CountryAtlas, InfraTier};
use shears_netsim::access::{AccessLink, AccessTechnology};

use crate::probe::{Probe, ProbeId};
use crate::tags::SYSTEM_TAGS;

/// Fleet synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Minimum fleet size (every country gets at least one probe, so the
    /// result can slightly exceed this).
    pub target_size: usize,
    /// Seed for placement, access assignment and tagging.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            target_size: 3200,
            seed: 0xA71A5,
        }
    }
}

/// Builds probe fleets.
#[derive(Debug)]
pub struct FleetBuilder {
    cfg: FleetConfig,
}

impl FleetBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(cfg: FleetConfig) -> Self {
        Self { cfg }
    }

    /// Deployment-density bias per continent, mirroring the real fleet.
    fn continent_bias(c: Continent) -> f64 {
        match c {
            Continent::Europe => 2.0,
            Continent::NorthAmerica => 1.5,
            Continent::Oceania => 1.2,
            Continent::Asia => 0.75,
            Continent::LatinAmerica => 0.80,
            Continent::Africa => 0.60,
        }
    }

    /// Relative probe weight of a country: volunteers scale sub-linearly
    /// with population and strongly with Internet development.
    fn country_weight(c: &Country) -> f64 {
        c.population_m.sqrt() * (0.1 + c.infra_quality).powi(3) * Self::continent_bias(c.continent)
    }

    /// Number of probes allocated to each country (same order as
    /// `atlas.countries()`); every country gets at least one.
    pub fn allocate(&self, atlas: &CountryAtlas) -> Vec<usize> {
        let weights: Vec<f64> = atlas.countries().iter().map(Self::country_weight).collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| ((w / total * self.cfg.target_size as f64).round() as usize).max(1))
            .collect()
    }

    /// Access-technology mix per infrastructure tier, as cumulative
    /// probability rows over [`AccessTechnology::ALL`] order:
    /// `[Ethernet, Ftth, Cable, Dsl, Wifi, Lte, FiveG, GeoSatellite]`.
    fn access_mix(tier: InfraTier) -> [f64; 8] {
        match tier {
            InfraTier::Advanced => [0.18, 0.24, 0.20, 0.20, 0.08, 0.07, 0.02, 0.01],
            InfraTier::Developed => [0.12, 0.12, 0.18, 0.30, 0.10, 0.15, 0.01, 0.02],
            InfraTier::Emerging => [0.08, 0.06, 0.10, 0.32, 0.12, 0.28, 0.00, 0.04],
            InfraTier::Underserved => [0.05, 0.02, 0.05, 0.30, 0.15, 0.35, 0.00, 0.08],
        }
    }

    fn pick_access(tier: InfraTier, u: f64) -> AccessTechnology {
        let mix = Self::access_mix(tier);
        let mut acc = 0.0;
        for (i, p) in mix.iter().enumerate() {
            acc += p;
            if u < acc {
                return AccessTechnology::ALL[i];
            }
        }
        AccessTechnology::Dsl
    }

    /// Synthesises the fleet.
    pub fn build(&self, atlas: &CountryAtlas) -> Vec<Probe> {
        let counts = self.allocate(atlas);
        let mut sampler = GeoSampler::new(self.cfg.seed);
        let mut probes = Vec::new();
        for (country, &count) in atlas.countries().iter().zip(&counts) {
            let spread_km = (80.0 + country.population_m.sqrt() * 35.0).min(1000.0);
            for _ in 0..count {
                let id = ProbeId(probes.len() as u32);
                let location = sampler.in_disc_clustered(country.centroid, spread_km, 2.0);
                // ~4 % of probes sit in privileged locations (datacenter
                // shells, cloud VMs) — the share the paper filters out.
                let privileged = sampler.uniform() < 0.04;
                let tech = if privileged {
                    AccessTechnology::Ethernet
                } else {
                    Self::pick_access(country.tier(), sampler.uniform())
                };
                // Site quality: 1 (textbook) plus an exponential tail
                // that worsens with poor national infrastructure.
                let site_quality = if privileged {
                    1.0
                } else {
                    1.0 + (-(1.0 - sampler.uniform()).ln())
                        * (0.10 + (1.0 - country.infra_quality) * 0.30)
                };
                let mut tags: Vec<String> =
                    SYSTEM_TAGS.iter().map(|s| s.to_string()).collect();
                if privileged {
                    tags.push("datacentre".into());
                    tags.push("ethernet".into());
                } else {
                    // ~70 % of hosts set a user tag describing their
                    // access; the rest stay untagged (and are invisible
                    // to the Fig. 7 wired/wireless split, as in reality).
                    if sampler.uniform() < 0.70 {
                        tags.push(tech.atlas_tag().to_string());
                        tags.push(if tech.is_wireless() {
                            "wireless".into()
                        } else {
                            "wired".into()
                        });
                    }
                    tags.push(if sampler.uniform() < 0.8 {
                        "home".into()
                    } else {
                        "office".into()
                    });
                }
                let stability = 0.75 + 0.24 * sampler.uniform();
                probes.push(Probe {
                    id,
                    location,
                    country: country.code.to_string(),
                    continent: country.continent,
                    access: AccessLink::new(tech, site_quality),
                    tags,
                    stability,
                });
            }
        }
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> (CountryAtlas, Vec<Probe>) {
        let atlas = CountryAtlas::global();
        let probes = FleetBuilder::new(FleetConfig {
            target_size: n,
            seed: 1,
        })
        .build(&atlas);
        (atlas, probes)
    }

    #[test]
    fn reaches_target_size_and_covers_all_countries() {
        let (atlas, probes) = fleet(3200);
        assert!(probes.len() >= 3200, "{}", probes.len());
        assert!(probes.len() < 3200 + atlas.len(), "{}", probes.len());
        let countries: std::collections::HashSet<&str> =
            probes.iter().map(|p| p.country.as_str()).collect();
        assert!(
            countries.len() >= 166,
            "fleet spans only {} countries",
            countries.len()
        );
    }

    #[test]
    fn eu_na_hold_majority_of_probes() {
        let (_, probes) = fleet(3200);
        let eu_na = probes
            .iter()
            .filter(|p| {
                matches!(
                    p.continent,
                    Continent::Europe | Continent::NorthAmerica
                )
            })
            .count();
        let share = eu_na as f64 / probes.len() as f64;
        assert!(
            (0.5..0.75).contains(&share),
            "EU+NA share {share} out of the calibration window"
        );
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let (_, probes) = fleet(500);
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }

    #[test]
    fn privileged_share_is_small_but_present() {
        let (_, probes) = fleet(3200);
        let privileged = probes.iter().filter(|p| p.is_privileged()).count();
        let share = privileged as f64 / probes.len() as f64;
        assert!(
            (0.01..0.08).contains(&share),
            "privileged share {share}"
        );
    }

    #[test]
    fn wireless_minority_exists_everywhere() {
        let (_, probes) = fleet(3200);
        let wireless = probes.iter().filter(|p| p.access.tech.is_wireless()).count();
        let share = wireless as f64 / probes.len() as f64;
        assert!((0.10..0.40).contains(&share), "wireless share {share}");
    }

    #[test]
    fn tagged_subsets_are_nonempty_and_disjoint() {
        let (_, probes) = fleet(3200);
        let wired = probes.iter().filter(|p| p.is_wired_tagged()).count();
        let wireless = probes.iter().filter(|p| p.is_wireless_tagged()).count();
        assert!(wired > 100, "wired tagged {wired}");
        assert!(wireless > 50, "wireless tagged {wireless}");
        assert!(!probes
            .iter()
            .any(|p| p.is_wired_tagged() && p.is_wireless_tagged()));
    }

    #[test]
    fn deterministic_given_seed() {
        let atlas = CountryAtlas::global();
        let a = FleetBuilder::new(FleetConfig {
            target_size: 300,
            seed: 9,
        })
        .build(&atlas);
        let b = FleetBuilder::new(FleetConfig {
            target_size: 300,
            seed: 9,
        })
        .build(&atlas);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.location, y.location);
            assert_eq!(x.tags, y.tags);
        }
    }

    #[test]
    fn stability_in_range() {
        let (_, probes) = fleet(500);
        for p in &probes {
            assert!((0.75..=0.99).contains(&p.stability), "{}", p.stability);
            assert!(p.access.site_quality >= 1.0);
        }
    }

    #[test]
    fn advanced_tiers_are_more_wired() {
        let mix_adv = FleetBuilder::access_mix(InfraTier::Advanced);
        let mix_und = FleetBuilder::access_mix(InfraTier::Underserved);
        let wired = |m: &[f64; 8]| m[0] + m[1] + m[2] + m[3];
        assert!(wired(&mix_adv) > wired(&mix_und));
        for m in [mix_adv, mix_und] {
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "mix sums to {sum}");
        }
    }
}
