//! The probe tag vocabulary and tag filtering.
//!
//! RIPE Atlas probes carry *system tags* (set automatically: firmware,
//! address family, anchor status) and *user tags* (set by the host:
//! access technology, site type). The paper uses tags twice:
//!
//! * §4.1: "We filter out all the probes that are clearly installed in
//!   privileged locations (e.g., datacenters, cloud network)";
//! * §4.3: "We leverage RIPE Atlas user-provided tags to filter probes
//!   which indicate the type of access link, e.g. ethernet, broadband
//!   for wired and lte, wifi, wlan for … wireless links".
//!
//! [`TagFilter`] reproduces the include/exclude semantics of the Atlas
//! probe-selection API.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Tags marking probes hosted in privileged network locations.
pub const PRIVILEGED_TAGS: &[&str] = &["datacentre", "cloud", "ixp", "anchor"];

/// User tags that indicate a wired last mile.
pub const WIRED_TAGS: &[&str] = &["ethernet", "fibre", "cable", "dsl", "broadband", "wired"];

/// User tags that indicate a wireless last mile.
pub const WIRELESS_TAGS: &[&str] = &["wifi", "wlan", "lte", "5g", "satellite", "wireless"];

/// System tags every synthesised probe carries.
pub const SYSTEM_TAGS: &[&str] = &["system-ipv4-works", "system-resolves-a-correctly"];

/// An include/exclude tag filter, mirroring the Atlas API's
/// `tags=` / `tags=!` probe-selection parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagFilter {
    include: BTreeSet<String>,
    exclude: BTreeSet<String>,
}

impl TagFilter {
    /// A filter matching everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires the given tag to be present.
    pub fn require(mut self, tag: &str) -> Self {
        self.include.insert(tag.to_string());
        self
    }

    /// Requires any of the given tags (via [`TagFilter::matches_any`]
    /// semantics this is a union filter — Atlas treats multiple include
    /// tags as a conjunction, so we model the disjunction explicitly).
    pub fn require_all(mut self, tags: &[&str]) -> Self {
        for t in tags {
            self.include.insert((*t).to_string());
        }
        self
    }

    /// Excludes probes carrying the given tag.
    pub fn reject(mut self, tag: &str) -> Self {
        self.exclude.insert(tag.to_string());
        self
    }

    /// Excludes probes carrying any of the given tags.
    pub fn reject_all(mut self, tags: &[&str]) -> Self {
        for t in tags {
            self.exclude.insert((*t).to_string());
        }
        self
    }

    /// Conjunction match: every included tag present, no excluded tag
    /// present. (Atlas `tags=a,b` semantics.)
    pub fn matches(&self, probe_tags: &[String]) -> bool {
        self.include.iter().all(|t| probe_tags.iter().any(|p| p == t))
            && !self.exclude.iter().any(|t| probe_tags.iter().any(|p| p == t))
    }

    /// Disjunction match over the include set (any included tag present)
    /// plus the exclude check. Used for "any wireless tag" selections.
    pub fn matches_any(&self, probe_tags: &[String]) -> bool {
        (self.include.is_empty() || self.include.iter().any(|t| probe_tags.iter().any(|p| p == t)))
            && !self.exclude.iter().any(|t| probe_tags.iter().any(|p| p == t))
    }

    /// The paper's privileged-location exclusion filter.
    pub fn unprivileged() -> Self {
        Self::any().reject_all(PRIVILEGED_TAGS)
    }

    /// The paper's wired-probe selection (any wired tag, no privileged
    /// or wireless tag). Use with [`TagFilter::matches_any`].
    pub fn wired() -> Self {
        Self::any()
            .require_all(WIRED_TAGS)
            .reject_all(PRIVILEGED_TAGS)
            .reject_all(WIRELESS_TAGS)
    }

    /// The paper's wireless-probe selection. Use with
    /// [`TagFilter::matches_any`].
    pub fn wireless() -> Self {
        Self::any()
            .require_all(WIRELESS_TAGS)
            .reject_all(PRIVILEGED_TAGS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = TagFilter::any();
        assert!(f.matches(&tags(&["ethernet"])));
        assert!(f.matches(&[]));
        assert!(f.matches_any(&[]));
    }

    #[test]
    fn include_is_conjunction_in_matches() {
        let f = TagFilter::any().require("a").require("b");
        assert!(f.matches(&tags(&["a", "b", "c"])));
        assert!(!f.matches(&tags(&["a"])));
    }

    #[test]
    fn include_is_disjunction_in_matches_any() {
        let f = TagFilter::any().require("a").require("b");
        assert!(f.matches_any(&tags(&["a"])));
        assert!(f.matches_any(&tags(&["b"])));
        assert!(!f.matches_any(&tags(&["c"])));
    }

    #[test]
    fn exclude_wins() {
        let f = TagFilter::any().require("wifi").reject("datacentre");
        assert!(!f.matches(&tags(&["wifi", "datacentre"])));
        assert!(!f.matches_any(&tags(&["wifi", "datacentre"])));
    }

    #[test]
    fn unprivileged_rejects_datacenter_probes() {
        let f = TagFilter::unprivileged();
        assert!(!f.matches(&tags(&["ethernet", "datacentre"])));
        assert!(f.matches(&tags(&["ethernet", "home"])));
    }

    #[test]
    fn wired_wireless_are_disjoint() {
        let wired = TagFilter::wired();
        let wireless = TagFilter::wireless();
        let wired_probe = tags(&["ethernet", "home", "system-ipv4-works"]);
        let wifi_probe = tags(&["wifi", "home"]);
        // A probe tagged both (wired uplink, wifi hop) counts as wireless
        // only — matching the paper's conservative classification.
        let both = tags(&["ethernet", "wifi"]);
        assert!(wired.matches_any(&wired_probe));
        assert!(!wired.matches_any(&wifi_probe));
        assert!(wireless.matches_any(&wifi_probe));
        assert!(!wireless.matches_any(&wired_probe));
        assert!(!wired.matches_any(&both));
        assert!(wireless.matches_any(&both));
    }

    #[test]
    fn vocabulary_is_disjoint() {
        for w in WIRED_TAGS {
            assert!(!WIRELESS_TAGS.contains(w), "{w} in both sets");
            assert!(!PRIVILEGED_TAGS.contains(w));
        }
    }
}
