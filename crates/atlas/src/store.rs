//! Result storage.
//!
//! The campaign produces millions of samples (the paper's dataset holds
//! 3.2 M datapoints), so the store is a flat, append-only column of
//! compact records rather than anything fancier. Analysis passes stream
//! over it; filtered views are iterators, not copies.

use serde::{Deserialize, Serialize};
use shears_netsim::SimTime;

use crate::probe::ProbeId;

/// One ping (or TCP-connect) measurement result.
///
/// 24 bytes packed: at 3.2 M samples the paper-scale store stays well
/// under 100 MB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Originating probe.
    pub probe: ProbeId,
    /// Target region as an index into the cloud catalogue.
    pub region: u16,
    /// When the round fired.
    pub at: SimTime,
    /// Minimum RTT over the round's packets, ms. `NaN` never appears:
    /// rounds with zero replies are stored with `received == 0` and
    /// `min_ms`/`avg_ms` set to `f32::INFINITY`. JSON cannot carry
    /// infinities, so (de)serialisation maps them to/from `null`.
    #[serde(with = "inf_as_null")]
    pub min_ms: f32,
    /// Mean RTT over received packets, ms (`INFINITY` if none).
    #[serde(with = "inf_as_null")]
    pub avg_ms: f32,
    /// Packets sent.
    pub sent: u8,
    /// Replies received in time.
    pub received: u8,
}

/// Serialises non-finite RTT markers as JSON `null` (JSON has no
/// infinity literal; without this, lost-round samples would not survive
/// a dataset export/import round trip).
mod inf_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f32, ser: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            ser.serialize_some(v)
        } else {
            ser.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<f32, D::Error> {
        Ok(Option::<f32>::deserialize(de)?.unwrap_or(f32::INFINITY))
    }
}

impl RttSample {
    /// Whether at least one reply arrived.
    pub fn responded(&self) -> bool {
        self.received > 0
    }
}

/// Append-only sample store with filtered iteration.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ResultStore {
    samples: Vec<RttSample>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates for an expected sample count.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: RttSample) {
        self.samples.push(sample);
    }

    /// All samples, in insertion (time-ish) order.
    pub fn samples(&self) -> &[RttSample] {
        &self.samples
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples from one probe.
    pub fn by_probe(&self, probe: ProbeId) -> impl Iterator<Item = &RttSample> {
        self.samples.iter().filter(move |s| s.probe == probe)
    }

    /// Samples towards one region.
    pub fn by_region(&self, region: u16) -> impl Iterator<Item = &RttSample> {
        self.samples.iter().filter(move |s| s.region == region)
    }

    /// Samples in the half-open interval `[from, to)`.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &RttSample> {
        self.samples
            .iter()
            .filter(move |s| s.at >= from && s.at < to)
    }

    /// Only samples that got at least one reply.
    pub fn responded(&self) -> impl Iterator<Item = &RttSample> {
        self.samples.iter().filter(|s| s.responded())
    }

    /// Overall reply rate (fraction of rounds with ≥1 reply).
    ///
    /// Returns `f64::NAN` for an empty store: there is no evidence
    /// either way, and the old `1.0` sentinel let an empty campaign
    /// read as a perfect reply rate. Callers reporting the rate should
    /// gate on [`ResultStore::is_empty`] (or `is_finite`) first.
    pub fn response_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().filter(|s| s.responded()).count() as f64 / self.samples.len() as f64
    }

    /// Merges another store into this one (used when campaigns run
    /// sharded across threads).
    pub fn merge(&mut self, other: ResultStore) {
        self.samples.extend(other.samples);
    }

    /// Serialises to JSON Lines (one sample per line), the format the
    /// public dataset download uses.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            // Samples are plain records; serialisation cannot fail.
            out.push_str(&serde_json::to_string(s).expect("sample serialises"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSON Lines dump produced by [`ResultStore::to_jsonl`].
    ///
    /// Errors carry the 1-based line number of the offending record.
    pub fn from_jsonl(text: &str) -> Result<Self, JsonlError> {
        let mut store = ResultStore::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str(line) {
                Ok(sample) => store.push(sample),
                Err(source) => {
                    return Err(JsonlError {
                        line: idx + 1,
                        source,
                    })
                }
            }
        }
        Ok(store)
    }

    /// Like [`ResultStore::from_jsonl`] but tolerates a *trailing*
    /// partial line — the signature of a dump truncated mid-write (a
    /// crashed exporter, a cut-short download). The torn record is
    /// dropped; the returned flag reports whether one was. Garbage
    /// anywhere before the final line is still an error: only a torn
    /// tail is forgivable, silent mid-file corruption is not.
    pub fn from_jsonl_lossy(text: &str) -> Result<(Self, bool), JsonlError> {
        let mut store = ResultStore::new();
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        for (pos, &(idx, line)) in lines.iter().enumerate() {
            match serde_json::from_str(line) {
                Ok(sample) => store.push(sample),
                Err(source) => {
                    if pos + 1 == lines.len() {
                        return Ok((store, true));
                    }
                    return Err(JsonlError {
                        line: idx + 1,
                        source,
                    });
                }
            }
        }
        Ok((store, false))
    }
}

/// A JSON Lines record failed to parse.
#[derive(Debug)]
pub struct JsonlError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// The underlying JSON parse error.
    pub source: serde_json::Error,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.source)
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(probe: u32, region: u16, at_h: u64, min: f32) -> RttSample {
        RttSample {
            probe: ProbeId(probe),
            region,
            at: SimTime::from_hours(at_h),
            min_ms: min,
            avg_ms: min + 1.0,
            sent: 3,
            received: 3,
        }
    }

    #[test]
    fn push_and_filter() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.0));
        st.push(sample(1, 11, 3, 15.0));
        st.push(sample(2, 10, 3, 30.0));
        assert_eq!(st.len(), 3);
        assert_eq!(st.by_probe(ProbeId(1)).count(), 2);
        assert_eq!(st.by_region(10).count(), 2);
        assert_eq!(
            st.in_window(SimTime::from_hours(1), SimTime::from_hours(4))
                .count(),
            2
        );
    }

    #[test]
    fn response_rate_counts_losses() {
        let mut st = ResultStore::new();
        st.push(sample(1, 0, 0, 10.0));
        let mut lost = sample(2, 0, 0, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        st.push(lost);
        assert!(!st.samples()[1].responded());
        assert_eq!(st.response_rate(), 0.5);
        assert_eq!(st.responded().count(), 1);
    }

    #[test]
    fn empty_store_rate_is_nan_not_perfect() {
        // No rounds means no evidence, not a 100 % reply rate.
        assert!(ResultStore::new().response_rate().is_nan());
        assert!(ResultStore::new().is_empty());
    }

    #[test]
    fn all_lost_store_rate_is_zero_not_nan() {
        // A fully gappy store (every round lost — e.g. a blackout
        // campaign) is evidence of total failure, not absence of data.
        let mut st = ResultStore::new();
        for probe in 0..3 {
            let mut lost = sample(probe, 0, 0, 0.0);
            lost.received = 0;
            lost.min_ms = f32::INFINITY;
            lost.avg_ms = f32::INFINITY;
            st.push(lost);
        }
        assert_eq!(st.response_rate(), 0.0);
        assert_eq!(st.responded().count(), 0);
    }

    #[test]
    fn partial_store_rate_counts_exact_fraction() {
        // 3 of 8 rounds lost, including partial replies (received < sent
        // but > 0 still counts as a response).
        let mut st = ResultStore::new();
        for i in 0..5u32 {
            let mut s = sample(i, 0, 0, 10.0);
            if i == 0 {
                s.received = 1; // partial reply is still a reply
            }
            st.push(s);
        }
        for i in 5..8u32 {
            let mut lost = sample(i, 0, 0, 0.0);
            lost.received = 0;
            lost.min_ms = f32::INFINITY;
            lost.avg_ms = f32::INFINITY;
            st.push(lost);
        }
        assert_eq!(st.response_rate(), 5.0 / 8.0);
        // Merging an empty store does not disturb the rate.
        st.merge(ResultStore::new());
        assert_eq!(st.response_rate(), 5.0 / 8.0);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let text = st.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = ResultStore::from_jsonl(&text).unwrap();
        assert_eq!(back.samples(), st.samples());
    }

    #[test]
    fn jsonl_round_trips_lost_rounds() {
        // Lost rounds carry INFINITY markers, which JSON cannot express;
        // the null mapping must preserve them exactly.
        let mut st = ResultStore::new();
        let mut lost = sample(9, 4, 6, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        st.push(lost);
        let text = st.to_jsonl();
        assert!(text.contains("null"), "{text}");
        let back = ResultStore::from_jsonl(&text).unwrap();
        assert_eq!(back.samples(), st.samples());
        assert!(!back.samples()[0].responded());
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(ResultStore::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn jsonl_error_reports_the_offending_line() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let mut text = st.to_jsonl();
        text.push_str("\n{ definitely broken\n"); // blank line, then junk
        let err = ResultStore::from_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 4, "blank lines still count towards numbering");
        assert!(err.to_string().starts_with("line 4:"), "{err}");
        // Mid-file garbage points at its own line, not the end.
        let err = ResultStore::from_jsonl("junk\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn jsonl_lossy_tolerates_only_a_torn_tail() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let text = st.to_jsonl();
        // Cut the dump mid-record, as a crashed exporter would.
        let cut = &text[..text.len() - 10];
        assert!(ResultStore::from_jsonl(cut).is_err(), "strict parse rejects");
        let (recovered, torn) = ResultStore::from_jsonl_lossy(cut).unwrap();
        assert!(torn);
        assert_eq!(recovered.samples(), &st.samples()[..1]);
        // A pristine dump round-trips with no torn flag.
        let (full, torn) = ResultStore::from_jsonl_lossy(&text).unwrap();
        assert!(!torn);
        assert_eq!(full.samples(), st.samples());
        // Mid-file garbage is NOT forgiven by the lossy parser.
        let mut poisoned = String::from("garbage\n");
        poisoned.push_str(&text);
        let err = ResultStore::from_jsonl_lossy(&poisoned).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = ResultStore::new();
        a.push(sample(1, 0, 0, 1.0));
        let mut b = ResultStore::new();
        b.push(sample(2, 0, 0, 2.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }
}
