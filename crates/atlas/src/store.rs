//! Result storage.
//!
//! The campaign produces millions of samples (the paper's dataset holds
//! 3.2 M datapoints; the production north-star is 30–100× that), so the
//! store is columnar: one dense vector per field (struct-of-arrays)
//! rather than a flat `Vec<RttSample>`. Analysis kernels that only need
//! one or two fields — per-probe minima, percentile scans, windowed
//! queries — iterate dense `f32`/`u64` columns instead of striding
//! 24-byte records, and the journal's columnar block format decodes
//! straight into these vectors with no per-sample materialisation.
//!
//! Row-oriented callers are still served: [`ResultStore::get`] and
//! [`ResultStore::iter`] materialise [`RttSample`] values on the fly
//! (cheap — seven column reads), and [`ResultStore::samples`] collects
//! them into a `Vec` for code that wants the historical flat view.

use serde::{Deserialize, Serialize};
use shears_netsim::SimTime;

use crate::probe::ProbeId;

/// One ping (or TCP-connect) measurement result.
///
/// 24 bytes packed: at 3.2 M samples the paper-scale store stays well
/// under 100 MB. Since the columnar refactor this is the *materialised
/// row view* — the store keeps each field in its own column and builds
/// `RttSample` values on demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RttSample {
    /// Originating probe.
    pub probe: ProbeId,
    /// Target region as an index into the cloud catalogue.
    pub region: u16,
    /// When the round fired.
    pub at: SimTime,
    /// Minimum RTT over the round's packets, ms. `NaN` never appears:
    /// rounds with zero replies are stored with `received == 0` and
    /// `min_ms`/`avg_ms` set to `f32::INFINITY`. JSON cannot carry
    /// infinities, so (de)serialisation maps them to/from `null`.
    #[serde(with = "inf_as_null")]
    pub min_ms: f32,
    /// Mean RTT over received packets, ms (`INFINITY` if none).
    #[serde(with = "inf_as_null")]
    pub avg_ms: f32,
    /// Packets sent.
    pub sent: u8,
    /// Replies received in time.
    pub received: u8,
}

/// Serialises non-finite RTT markers as JSON `null` (JSON has no
/// infinity literal; without this, lost-round samples would not survive
/// a dataset export/import round trip).
mod inf_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f32, ser: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            ser.serialize_some(v)
        } else {
            ser.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<f32, D::Error> {
        Ok(Option::<f32>::deserialize(de)?.unwrap_or(f32::INFINITY))
    }
}

impl RttSample {
    /// Whether at least one reply arrived.
    pub fn responded(&self) -> bool {
        self.received > 0
    }
}

/// Chunk width for the columnar count/sortedness sweeps below (one or
/// two vector registers of bytes).
const CHUNK: usize = 64;

/// Count of non-zero bytes, in chunk-sized strides of independent
/// compares so the loop autovectorises. This mirrors
/// `shears_analysis::kernels::chunked::count_nonzero` — the analysis
/// crate depends on this one, so the kernel cannot be imported here;
/// the kernel tests pin the two implementations equal.
fn count_nonzero_chunked(col: &[u8]) -> usize {
    let mut total = 0usize;
    let chunks = col.chunks_exact(CHUNK);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut c = 0u32;
        for &v in chunk {
            c += u32::from(v != 0);
        }
        total += c as usize;
    }
    total + tail.iter().filter(|&&v| v != 0).count()
}

/// Non-decreasing check in chunk-sized strides (mirrors the sortedness
/// sweep in `shears_analysis::kernels::chunked::range_partition`, with
/// the same seam pass).
fn is_sorted_chunked<T: Copy + Ord>(col: &[T]) -> bool {
    for w in col.chunks(CHUNK) {
        let mut bad = false;
        for k in w.windows(2) {
            bad |= k[0] > k[1];
        }
        if bad {
            return false;
        }
    }
    // windows(2) inside chunks misses the seams between them.
    let mut i = CHUNK;
    while i < col.len() {
        if col[i - 1] > col[i] {
            return false;
        }
        i += CHUNK;
    }
    true
}

/// Append-only columnar sample store with filtered iteration.
///
/// Every column has the same length; row `i` of the store is the
/// `RttSample` assembled from slot `i` of each column.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ResultStore {
    probe: Vec<ProbeId>,
    region: Vec<u16>,
    at: Vec<SimTime>,
    min_ms: Vec<f32>,
    avg_ms: Vec<f32>,
    sent: Vec<u8>,
    received: Vec<u8>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates every column for an expected sample count.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            probe: Vec::with_capacity(n),
            region: Vec::with_capacity(n),
            at: Vec::with_capacity(n),
            min_ms: Vec::with_capacity(n),
            avg_ms: Vec::with_capacity(n),
            sent: Vec::with_capacity(n),
            received: Vec::with_capacity(n),
        }
    }

    /// Appends a sample (one push per column).
    pub fn push(&mut self, sample: RttSample) {
        self.probe.push(sample.probe);
        self.region.push(sample.region);
        self.at.push(sample.at);
        self.min_ms.push(sample.min_ms);
        self.avg_ms.push(sample.avg_ms);
        self.sent.push(sample.sent);
        self.received.push(sample.received);
    }

    /// Materialises row `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn get(&self, i: usize) -> RttSample {
        RttSample {
            probe: self.probe[i],
            region: self.region[i],
            at: self.at[i],
            min_ms: self.min_ms[i],
            avg_ms: self.avg_ms[i],
            sent: self.sent[i],
            received: self.received[i],
        }
    }

    /// Materialising row iterator, in insertion (time-ish) order.
    pub fn iter(&self) -> impl Iterator<Item = RttSample> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// All samples materialised into one `Vec` — the historical flat
    /// view, kept for compatibility (tests, golden comparisons, small
    /// exports). O(n) allocation: hot paths should use [`Self::iter`]
    /// or the column accessors instead.
    pub fn samples(&self) -> Vec<RttSample> {
        self.iter().collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.probe.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.probe.is_empty()
    }

    // --- Dense column accessors (the analysis-kernel path) --------------

    /// Originating probe per row.
    pub fn probes(&self) -> &[ProbeId] {
        &self.probe
    }

    /// Target region per row.
    pub fn regions(&self) -> &[u16] {
        &self.region
    }

    /// Round fire time per row.
    pub fn ats(&self) -> &[SimTime] {
        &self.at
    }

    /// Minimum RTT per row (ms, `INFINITY` = lost round).
    pub fn min_ms(&self) -> &[f32] {
        &self.min_ms
    }

    /// Mean RTT per row (ms, `INFINITY` = lost round).
    pub fn avg_ms(&self) -> &[f32] {
        &self.avg_ms
    }

    /// Packets sent per row.
    pub fn sent(&self) -> &[u8] {
        &self.sent
    }

    /// Replies received per row.
    pub fn received(&self) -> &[u8] {
        &self.received
    }

    /// Whether row `i` got at least one reply (no materialisation).
    pub fn responded_at(&self, i: usize) -> bool {
        self.received[i] > 0
    }

    /// Mutable access to every column at once, for bulk decoders (the
    /// journal's columnar block reader) that extend the store without a
    /// per-sample `RttSample` detour. Crate-internal: callers must keep
    /// all columns the same length.
    #[allow(clippy::type_complexity)]
    pub(crate) fn columns_mut(
        &mut self,
    ) -> (
        &mut Vec<ProbeId>,
        &mut Vec<u16>,
        &mut Vec<SimTime>,
        &mut Vec<f32>,
        &mut Vec<f32>,
        &mut Vec<u8>,
        &mut Vec<u8>,
    ) {
        (
            &mut self.probe,
            &mut self.region,
            &mut self.at,
            &mut self.min_ms,
            &mut self.avg_ms,
            &mut self.sent,
            &mut self.received,
        )
    }

    // --- Filtered views --------------------------------------------------

    /// Samples from one probe.
    pub fn by_probe(&self, probe: ProbeId) -> impl Iterator<Item = RttSample> + '_ {
        (0..self.len()).filter_map(move |i| (self.probe[i] == probe).then(|| self.get(i)))
    }

    /// Samples towards one region.
    pub fn by_region(&self, region: u16) -> impl Iterator<Item = RttSample> + '_ {
        (0..self.len()).filter_map(move |i| (self.region[i] == region).then(|| self.get(i)))
    }

    /// The row range holding the half-open window `[from, to)` when the
    /// `at` column is non-decreasing (true for every round-major
    /// producer in the tree, and checked here with one chunked sweep);
    /// `None` when the column is interleaved and a per-row filter is
    /// required.
    pub fn window_bounds(&self, from: SimTime, to: SimTime) -> Option<(usize, usize)> {
        is_sorted_chunked(&self.at).then(|| {
            let lo = self.at.partition_point(|&t| t < from);
            let hi = self.at.partition_point(|&t| t < to);
            (lo, hi)
        })
    }

    /// Samples in the half-open interval `[from, to)`. When the `at`
    /// column is sorted this is a binary-searched slice scan instead of
    /// a full-store filter; the yield order (store order) is identical
    /// either way, since a sorted column's window rows are contiguous.
    pub fn in_window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = RttSample> + '_ {
        let (lo, hi, need_filter) = match self.window_bounds(from, to) {
            Some((lo, hi)) => (lo, hi, false),
            None => (0, self.len(), true),
        };
        (lo..hi).filter_map(move |i| {
            (!need_filter || (self.at[i] >= from && self.at[i] < to)).then(|| self.get(i))
        })
    }

    /// Only samples that got at least one reply.
    pub fn responded(&self) -> impl Iterator<Item = RttSample> + '_ {
        (0..self.len()).filter_map(move |i| (self.received[i] > 0).then(|| self.get(i)))
    }

    /// Number of samples that got at least one reply (one dense,
    /// chunked column count — no row materialisation, no branches in
    /// the loop body).
    pub fn responded_len(&self) -> usize {
        count_nonzero_chunked(&self.received)
    }

    /// Overall reply rate (fraction of rounds with ≥1 reply).
    ///
    /// Returns `f64::NAN` for an empty store: there is no evidence
    /// either way, and the old `1.0` sentinel let an empty campaign
    /// read as a perfect reply rate. Callers reporting the rate should
    /// gate on [`ResultStore::is_empty`] (or `is_finite`) first.
    pub fn response_rate(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.responded_len() as f64 / self.len() as f64
    }

    /// Merges another store into this one (used when campaigns run
    /// sharded across threads). Column-wise `extend` — no row
    /// materialisation.
    pub fn merge(&mut self, other: ResultStore) {
        self.probe.extend(other.probe);
        self.region.extend(other.region);
        self.at.extend(other.at);
        self.min_ms.extend(other.min_ms);
        self.avg_ms.extend(other.avg_ms);
        self.sent.extend(other.sent);
        self.received.extend(other.received);
    }

    /// Whether `self` is a strict row-for-row prefix of `other` (equal
    /// length counts as a prefix too). Used by the API's durable-resume
    /// path to decide append vs rebuild.
    pub fn is_prefix_of(&self, other: &ResultStore) -> bool {
        let n = self.len();
        n <= other.len()
            && self.probe == other.probe[..n]
            && self.region == other.region[..n]
            && self.at == other.at[..n]
            && self.min_ms == other.min_ms[..n]
            && self.avg_ms == other.avg_ms[..n]
            && self.sent == other.sent[..n]
            && self.received == other.received[..n]
    }

    /// Serialises to JSON Lines (one sample per line), the format the
    /// public dataset download uses. Every record is written directly
    /// into one output buffer — no per-sample `String` allocation.
    pub fn to_jsonl(&self) -> String {
        let mut out: Vec<u8> = Vec::with_capacity(self.len() * 96);
        for i in 0..self.len() {
            // Samples are plain records; serialisation cannot fail.
            serde_json::to_writer(&mut out, &self.get(i)).expect("sample serialises");
            out.push(b'\n');
        }
        String::from_utf8(out).expect("serde_json writes UTF-8")
    }

    /// Parses a JSON Lines dump produced by [`ResultStore::to_jsonl`].
    ///
    /// Errors carry the 1-based line number of the offending record.
    pub fn from_jsonl(text: &str) -> Result<Self, JsonlError> {
        let mut store = ResultStore::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str(line) {
                Ok(sample) => store.push(sample),
                Err(source) => {
                    return Err(JsonlError {
                        line: idx + 1,
                        source,
                    })
                }
            }
        }
        Ok(store)
    }

    /// Like [`ResultStore::from_jsonl`] but tolerates a *trailing*
    /// partial line — the signature of a dump truncated mid-write (a
    /// crashed exporter, a cut-short download). The torn record is
    /// dropped; the returned flag reports whether one was. Garbage
    /// anywhere before the final line is still an error: only a torn
    /// tail is forgivable, silent mid-file corruption is not.
    ///
    /// Single pass: a peekable line iterator decides "is this the last
    /// non-empty line" at the failure point, instead of collecting
    /// every line upfront.
    pub fn from_jsonl_lossy(text: &str) -> Result<(Self, bool), JsonlError> {
        let mut store = ResultStore::new();
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .peekable();
        while let Some((idx, line)) = lines.next() {
            match serde_json::from_str(line) {
                Ok(sample) => store.push(sample),
                Err(source) => {
                    if lines.peek().is_none() {
                        return Ok((store, true));
                    }
                    return Err(JsonlError {
                        line: idx + 1,
                        source,
                    });
                }
            }
        }
        Ok((store, false))
    }
}

/// A JSON Lines record failed to parse.
#[derive(Debug)]
pub struct JsonlError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// The underlying JSON parse error.
    pub source: serde_json::Error,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.source)
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(probe: u32, region: u16, at_h: u64, min: f32) -> RttSample {
        RttSample {
            probe: ProbeId(probe),
            region,
            at: SimTime::from_hours(at_h),
            min_ms: min,
            avg_ms: min + 1.0,
            sent: 3,
            received: 3,
        }
    }

    #[test]
    fn window_bounds_slices_sorted_stores_and_demotes_unsorted_ones() {
        let mut st = ResultStore::new();
        for h in 0..200u64 {
            st.push(sample(1, 10, h / 2, 12.0)); // non-decreasing, with ties
        }
        let (from, to) = (SimTime::from_hours(10), SimTime::from_hours(40));
        let (lo, hi) = st.window_bounds(from, to).expect("sorted column");
        let sliced: Vec<RttSample> = (lo..hi).map(|i| st.get(i)).collect();
        let filtered: Vec<RttSample> = (0..st.len())
            .filter(|&i| st.ats()[i] >= from && st.ats()[i] < to)
            .map(|i| st.get(i))
            .collect();
        assert_eq!(sliced, filtered);
        let via_iter: Vec<RttSample> = st.in_window(from, to).collect();
        assert_eq!(via_iter, filtered, "iterator order unchanged");
        // One out-of-order row — placed to land on a chunk seam —
        // demotes to the filter path, which must yield the same rows.
        st.push(sample(1, 10, 5, 9.0));
        assert_eq!(st.window_bounds(from, to), None);
        let filtered: Vec<RttSample> = (0..st.len())
            .filter(|&i| st.ats()[i] >= from && st.ats()[i] < to)
            .map(|i| st.get(i))
            .collect();
        let via_iter: Vec<RttSample> = st.in_window(from, to).collect();
        assert_eq!(via_iter, filtered);
    }

    #[test]
    fn responded_len_counts_across_chunk_boundaries() {
        let mut st = ResultStore::new();
        for i in 0..259u32 {
            let mut s = sample(i % 7, 10, u64::from(i), 12.0);
            if i % 3 == 0 {
                s.received = 0;
                s.min_ms = f32::INFINITY;
                s.avg_ms = f32::INFINITY;
            }
            st.push(s);
        }
        let reference = st.iter().filter(RttSample::responded).count();
        assert_eq!(st.responded_len(), reference);
        assert_eq!(st.response_rate(), reference as f64 / 259.0);
    }

    #[test]
    fn push_and_filter() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.0));
        st.push(sample(1, 11, 3, 15.0));
        st.push(sample(2, 10, 3, 30.0));
        assert_eq!(st.len(), 3);
        assert_eq!(st.by_probe(ProbeId(1)).count(), 2);
        assert_eq!(st.by_region(10).count(), 2);
        assert_eq!(
            st.in_window(SimTime::from_hours(1), SimTime::from_hours(4))
                .count(),
            2
        );
    }

    #[test]
    fn columns_and_rows_agree() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.0));
        let mut lost = sample(2, 11, 3, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        st.push(lost);
        for (i, s) in st.iter().enumerate() {
            assert_eq!(s, st.get(i));
            assert_eq!(s.probe, st.probes()[i]);
            assert_eq!(s.region, st.regions()[i]);
            assert_eq!(s.at, st.ats()[i]);
            assert_eq!(s.min_ms.to_bits(), st.min_ms()[i].to_bits());
            assert_eq!(s.avg_ms.to_bits(), st.avg_ms()[i].to_bits());
            assert_eq!(s.sent, st.sent()[i]);
            assert_eq!(s.received, st.received()[i]);
            assert_eq!(s.responded(), st.responded_at(i));
        }
        assert_eq!(st.samples(), st.iter().collect::<Vec<_>>());
    }

    #[test]
    fn prefix_detection_is_row_exact() {
        let mut a = ResultStore::new();
        a.push(sample(1, 10, 0, 12.0));
        a.push(sample(2, 11, 1, 15.0));
        let mut b = a.clone();
        b.push(sample(3, 12, 2, 20.0));
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a.clone()));
        assert!(!b.is_prefix_of(&a), "longer store is not a prefix");
        // A same-length store with one differing field is not a prefix.
        let mut c = a.clone();
        let (_, _, _, min_ms, ..) = c.columns_mut();
        min_ms[1] = 99.0;
        assert!(!c.is_prefix_of(&b));
    }

    #[test]
    fn response_rate_counts_losses() {
        let mut st = ResultStore::new();
        st.push(sample(1, 0, 0, 10.0));
        let mut lost = sample(2, 0, 0, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        st.push(lost);
        assert!(!st.samples()[1].responded());
        assert_eq!(st.response_rate(), 0.5);
        assert_eq!(st.responded().count(), 1);
        assert_eq!(st.responded_len(), 1);
    }

    #[test]
    fn empty_store_rate_is_nan_not_perfect() {
        // No rounds means no evidence, not a 100 % reply rate.
        assert!(ResultStore::new().response_rate().is_nan());
        assert!(ResultStore::new().is_empty());
    }

    #[test]
    fn all_lost_store_rate_is_zero_not_nan() {
        // A fully gappy store (every round lost — e.g. a blackout
        // campaign) is evidence of total failure, not absence of data.
        let mut st = ResultStore::new();
        for probe in 0..3 {
            let mut lost = sample(probe, 0, 0, 0.0);
            lost.received = 0;
            lost.min_ms = f32::INFINITY;
            lost.avg_ms = f32::INFINITY;
            st.push(lost);
        }
        assert_eq!(st.response_rate(), 0.0);
        assert_eq!(st.responded().count(), 0);
    }

    #[test]
    fn partial_store_rate_counts_exact_fraction() {
        // 3 of 8 rounds lost, including partial replies (received < sent
        // but > 0 still counts as a response).
        let mut st = ResultStore::new();
        for i in 0..5u32 {
            let mut s = sample(i, 0, 0, 10.0);
            if i == 0 {
                s.received = 1; // partial reply is still a reply
            }
            st.push(s);
        }
        for i in 5..8u32 {
            let mut lost = sample(i, 0, 0, 0.0);
            lost.received = 0;
            lost.min_ms = f32::INFINITY;
            lost.avg_ms = f32::INFINITY;
            st.push(lost);
        }
        assert_eq!(st.response_rate(), 5.0 / 8.0);
        // Merging an empty store does not disturb the rate.
        st.merge(ResultStore::new());
        assert_eq!(st.response_rate(), 5.0 / 8.0);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let text = st.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = ResultStore::from_jsonl(&text).unwrap();
        assert_eq!(back.samples(), st.samples());
        assert_eq!(back, st, "column-level equality too");
    }

    #[test]
    fn jsonl_round_trips_lost_rounds() {
        // Lost rounds carry INFINITY markers, which JSON cannot express;
        // the null mapping must preserve them exactly.
        let mut st = ResultStore::new();
        let mut lost = sample(9, 4, 6, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        st.push(lost);
        let text = st.to_jsonl();
        assert!(text.contains("null"), "{text}");
        let back = ResultStore::from_jsonl(&text).unwrap();
        assert_eq!(back.samples(), st.samples());
        assert!(!back.samples()[0].responded());
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(ResultStore::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn jsonl_error_reports_the_offending_line() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let mut text = st.to_jsonl();
        text.push_str("\n{ definitely broken\n"); // blank line, then junk
        let err = ResultStore::from_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 4, "blank lines still count towards numbering");
        assert!(err.to_string().starts_with("line 4:"), "{err}");
        // Mid-file garbage points at its own line, not the end.
        let err = ResultStore::from_jsonl("junk\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn jsonl_lossy_tolerates_only_a_torn_tail() {
        let mut st = ResultStore::new();
        st.push(sample(1, 10, 0, 12.5));
        st.push(sample(2, 11, 3, 99.0));
        let text = st.to_jsonl();
        // Cut the dump mid-record, as a crashed exporter would.
        let cut = &text[..text.len() - 10];
        assert!(ResultStore::from_jsonl(cut).is_err(), "strict parse rejects");
        let (recovered, torn) = ResultStore::from_jsonl_lossy(cut).unwrap();
        assert!(torn);
        assert_eq!(recovered.samples(), &st.samples()[..1]);
        // A pristine dump round-trips with no torn flag.
        let (full, torn) = ResultStore::from_jsonl_lossy(&text).unwrap();
        assert!(!torn);
        assert_eq!(full.samples(), st.samples());
        // Mid-file garbage is NOT forgiven by the lossy parser.
        let mut poisoned = String::from("garbage\n");
        poisoned.push_str(&text);
        let err = ResultStore::from_jsonl_lossy(&poisoned).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = ResultStore::new();
        a.push(sample(1, 0, 0, 1.0));
        let mut b = ResultStore::new();
        b.push(sample(2, 0, 0, 2.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }
}
