//! # shears-atlas
//!
//! A RIPE-Atlas-style measurement platform over the simulated Internet
//! of [`shears_netsim`]: the substrate on which the latency-shears
//! measurement campaign runs.
//!
//! The real platform's concepts map one-to-one:
//!
//! | RIPE Atlas | Here |
//! |---|---|
//! | probe (id, geo, tags, status) | [`Probe`] |
//! | system/user tags (`ethernet`, `lte`, `datacentre`, …) | [`tags`] vocabulary + [`TagFilter`] |
//! | the 3200-probe vantage fleet in 166 countries | [`FleetBuilder`] synthesis |
//! | measurement definition (ping, interval, packets) | [`MeasurementSpec`] |
//! | credits & quotas | [`CreditLedger`] |
//! | result stream | [`RttSample`] in a [`ResultStore`] |
//! | nine-month campaign | [`Campaign`] over the discrete-event queue |
//!
//! The probe fleet is synthetic but carries the real fleet's biases —
//! EU/NA-heavy density, wired-dominant access, a minority of probes in
//! privileged (datacenter) locations that the analysis must filter out —
//! because those biases are what the paper's filtering steps exercise.
//!
//! ```
//! use shears_atlas::{FleetBuilder, FleetConfig};
//! use shears_geo::CountryAtlas;
//!
//! let atlas = CountryAtlas::global();
//! let fleet = FleetBuilder::new(FleetConfig { target_size: 400, seed: 7 })
//!     .build(&atlas);
//! assert!(fleet.len() >= 400);
//! // Every continent is covered.
//! use shears_geo::Continent;
//! for cont in Continent::ALL {
//!     assert!(fleet.iter().any(|p| p.continent == cont));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod campaign;
pub mod credits;
pub mod fleet;
pub mod journal;
pub mod measurement;
pub mod platform;
pub mod probe;
pub mod recovery;
pub mod store;
pub mod tags;

pub use availability::OutageSchedule;
pub use campaign::{
    Campaign, CampaignConfig, CampaignError, DurabilityConfig, DurableOutcome, ShardContext,
};
pub use credits::{CreditError, CreditLedger};
pub use fleet::{FleetBuilder, FleetConfig};
pub use journal::{JournalError, JournalHeader, JournalWriter, Replay, RoundMark};
pub use measurement::{MeasurementSpec, MeasurementType};
pub use platform::{Platform, PlatformConfig};
pub use probe::{Probe, ProbeId};
pub use recovery::{RetryPolicy, RetrySchedule};
pub use store::{JsonlError, ResultStore, RttSample};
pub use tags::TagFilter;
