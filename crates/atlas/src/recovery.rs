//! Measurement recovery policy: bounded retry with exponential backoff and
//! jitter, a per-measurement timeout, and optional credit refunds.
//!
//! The paper's nine-month campaign survived constant probe churn and loss
//! because Atlas retries failed measurements (and refunds the credits of
//! the ones it gives up on). [`RetryPolicy`] reproduces that recovery loop
//! deterministically: backoff jitter draws come from the campaign's
//! per-`(probe, round)` [`SimRng`] stream, and [`RetryPolicy::none`] — the
//! default — performs zero retries and zero extra RNG draws, so fault-free
//! campaigns stay bit-identical with PR 2.

use shears_netsim::stochastic::SimRng;
use shears_netsim::SimTime;

/// Bounded-retry policy for one measurement slot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: SimTime,
    /// Cap on a single backoff interval (before jitter).
    pub max_backoff: SimTime,
    /// Jitter factor: each backoff is scaled by `1 + jitter * U[0,1)`.
    /// Zero disables the jitter draw entirely.
    pub jitter: f64,
    /// A retry is abandoned when it would start later than this after the
    /// originally scheduled attempt.
    pub measurement_timeout: SimTime,
    /// Refund the credits of measurements that still fail after the last
    /// retry (Atlas refunds failed one-offs).
    pub refund_failures: bool,
}

impl RetryPolicy {
    /// No retries, no refunds, no extra RNG draws — the default policy,
    /// bit-identical to a campaign without recovery machinery.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: SimTime::ZERO,
            max_backoff: SimTime::ZERO,
            jitter: 0.0,
            measurement_timeout: SimTime::ZERO,
            refund_failures: false,
        }
    }

    /// The recovery loop used for degraded campaigns: two retries at
    /// 30 s / 60 s (+ up to 50% jitter), a 15-minute per-measurement
    /// budget, and refunds for measurements that never respond.
    pub const fn atlas_default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimTime::from_secs(30),
            max_backoff: SimTime::from_secs(240),
            jitter: 0.5,
            measurement_timeout: SimTime::from_secs(900),
            refund_failures: true,
        }
    }

    /// True for the do-nothing policy.
    pub fn is_none(&self) -> bool {
        self.max_retries == 0 && !self.refund_failures
    }

    /// Starts the retry schedule for a measurement scheduled at `at`.
    pub fn schedule(&self, at: SimTime) -> RetrySchedule {
        RetrySchedule {
            scheduled: at,
            at,
            retries: 0,
        }
    }

    /// Upper bound on the delay the schedule can accumulate past the
    /// scheduled instant: `max_retries` backoffs, each capped at
    /// `max_backoff * (1 + jitter)`, further clipped by the timeout.
    pub fn max_total_delay(&self) -> SimTime {
        if self.max_retries == 0 {
            return SimTime::ZERO;
        }
        let per_retry = self.max_backoff.as_millis_f64() * (1.0 + self.jitter.max(0.0));
        let unclipped = per_retry * f64::from(self.max_retries);
        let clipped = unclipped.min(self.measurement_timeout.as_millis_f64());
        SimTime::from_millis_f64(clipped)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Iterator-like state for one measurement's attempts under a
/// [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySchedule {
    scheduled: SimTime,
    at: SimTime,
    retries: u32,
}

impl RetrySchedule {
    /// Instant of the current attempt.
    pub fn attempt_at(&self) -> SimTime {
        self.at
    }

    /// Number of retries performed so far (0 during the first attempt).
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Advances to the next retry. Returns `false` (without drawing any
    /// jitter) when the retry budget is exhausted, and `false` when the
    /// backed-off attempt would start past the measurement timeout.
    pub fn next(&mut self, policy: &RetryPolicy, rng: &mut SimRng) -> bool {
        if self.retries >= policy.max_retries {
            return false;
        }
        let exp = policy.base_backoff.as_millis_f64() * 2.0_f64.powi(self.retries as i32);
        let capped = exp.min(policy.max_backoff.as_millis_f64());
        let jittered = if policy.jitter > 0.0 {
            capped * (1.0 + policy.jitter * rng.uniform())
        } else {
            capped
        };
        let next_at = self.at + SimTime::from_millis_f64(jittered);
        if next_at.saturating_since(self.scheduled) > policy.measurement_timeout {
            return false;
        }
        self.retries += 1;
        self.at = next_at;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_never_retries_and_never_draws() {
        let policy = RetryPolicy::none();
        let mut rng = SimRng::new(1);
        let mut twin = SimRng::new(1);
        let mut sched = policy.schedule(SimTime::from_hours(2));
        assert!(!sched.next(&policy, &mut rng));
        assert_eq!(sched.attempt_at(), SimTime::from_hours(2));
        assert_eq!(sched.retries(), 0);
        // The refusal consumed no RNG state.
        assert_eq!(rng.next_u64(), twin.next_u64());
        assert_eq!(policy.max_total_delay(), SimTime::ZERO);
    }

    #[test]
    fn retries_are_bounded_and_backoff_grows() {
        let policy = RetryPolicy {
            jitter: 0.0,
            refund_failures: false,
            ..RetryPolicy::atlas_default()
        };
        let mut rng = SimRng::new(2);
        let start = SimTime::from_hours(1);
        let mut sched = policy.schedule(start);
        assert!(sched.next(&policy, &mut rng));
        assert_eq!(sched.attempt_at(), start + SimTime::from_secs(30));
        assert!(sched.next(&policy, &mut rng));
        assert_eq!(sched.attempt_at(), start + SimTime::from_secs(90));
        assert!(!sched.next(&policy, &mut rng), "third retry exceeds budget");
        assert_eq!(sched.retries(), 2);
    }

    #[test]
    fn timeout_clips_the_schedule() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: SimTime::from_secs(60),
            max_backoff: SimTime::from_secs(60),
            jitter: 0.0,
            measurement_timeout: SimTime::from_secs(150),
            refund_failures: false,
        };
        let mut rng = SimRng::new(3);
        let mut sched = policy.schedule(SimTime::ZERO);
        let mut granted = 0;
        while sched.next(&policy, &mut rng) {
            granted += 1;
        }
        // 60 s and 120 s fit inside 150 s; 180 s does not.
        assert_eq!(granted, 2);
        assert!(sched.attempt_at() <= policy.measurement_timeout);
    }

    #[test]
    fn jitter_stays_within_the_declared_bound() {
        let policy = RetryPolicy::atlas_default();
        for seed in 0..50u64 {
            let mut rng = SimRng::new(seed);
            let start = SimTime::from_hours(3);
            let mut sched = policy.schedule(start);
            while sched.next(&policy, &mut rng) {}
            assert!(sched.retries() <= policy.max_retries);
            assert!(
                sched.attempt_at().saturating_since(start) <= policy.max_total_delay(),
                "seed {seed}"
            );
        }
    }
}
