//! Probe availability as connect/disconnect episodes.
//!
//! Real Atlas probes do not flip a coin every round: they disappear for
//! hours or days (power cuts, moved hardware, ISP churn) and come back.
//! §4.2 keeps such probes in the analysis ("the result includes probes
//! without a stable Internet connection"), so the campaign needs their
//! outage *pattern*, not just their average availability.
//!
//! The model is an alternating renewal process: exponentially
//! distributed up and down episodes whose means are chosen so the
//! long-run up fraction equals the probe's `stability`. A probe's whole
//! schedule is derived from one keyed seed, so availability at any
//! instant is deterministic and independent of query order.

use shears_netsim::stochastic::SimRng;
use shears_netsim::SimTime;

/// Mean length of an up episode, hours. Down episodes scale to match
/// the probe's stability: `mean_down = mean_up · (1 − s) / s`.
const MEAN_UP_HOURS: f64 = 24.0 * 7.0;

/// A probe's precomputed outage schedule over a campaign window.
#[derive(Debug, Clone)]
pub struct OutageSchedule {
    /// Sorted disjoint `[start, end)` down intervals.
    downtimes: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// Builds the schedule for a probe with the given `stability`
    /// (long-run up fraction, clamped to `[0.01, 1.0]`) over
    /// `[0, horizon)`. The caller supplies a per-probe `SimRng` (keyed
    /// fork) so schedules are order-independent.
    pub fn generate(rng: &mut SimRng, stability: f64, horizon: SimTime) -> Self {
        let s = stability.clamp(0.01, 1.0);
        if s >= 1.0 {
            return Self {
                downtimes: Vec::new(),
            };
        }
        let mean_up_ms = MEAN_UP_HOURS * 3_600_000.0;
        let mean_down_ms = mean_up_ms * (1.0 - s) / s;
        let mut downtimes = Vec::new();
        // Start in steady state: with probability (1-s) the probe is
        // down at t=0.
        let mut t_ms = 0.0;
        let mut up = rng.uniform() < s;
        let horizon_ms = horizon.as_millis_f64();
        while t_ms < horizon_ms {
            if up {
                t_ms += rng.exponential(mean_up_ms);
                up = false;
            } else {
                let end = t_ms + rng.exponential(mean_down_ms);
                downtimes.push((
                    SimTime::from_millis_f64(t_ms),
                    SimTime::from_millis_f64(end.min(horizon_ms)),
                ));
                t_ms = end;
                up = true;
            }
        }
        Self { downtimes }
    }

    /// Whether the probe is up at instant `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        // Binary search over sorted disjoint intervals.
        self.downtimes.binary_search_by(|&(start, end)| {
            if t < start {
                std::cmp::Ordering::Greater
            } else if t >= end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }).is_err()
    }

    /// Number of outage episodes in the window.
    pub fn outages(&self) -> usize {
        self.downtimes.len()
    }

    /// Fraction of the window spent up.
    pub fn up_fraction(&self, horizon: SimTime) -> f64 {
        let h = horizon.as_millis_f64();
        if h <= 0.0 {
            return 1.0;
        }
        let down: f64 = self
            .downtimes
            .iter()
            .map(|&(a, b)| (b.as_millis_f64().min(h) - a.as_millis_f64()).max(0.0))
            .sum();
        (1.0 - down / h).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::from_days(270) // nine months
    }

    #[test]
    fn perfect_stability_means_no_outages() {
        let mut rng = SimRng::new(1);
        let s = OutageSchedule::generate(&mut rng, 1.0, horizon());
        assert_eq!(s.outages(), 0);
        assert!(s.is_up(SimTime::from_days(100)));
        assert_eq!(s.up_fraction(horizon()), 1.0);
    }

    #[test]
    fn up_fraction_tracks_stability_in_aggregate() {
        // One probe's realisation is noisy; average many.
        let mut rng = SimRng::new(7);
        let target = 0.85;
        let n = 200;
        let mean: f64 = (0..n)
            .map(|_| {
                let mut child = rng.fork();
                OutageSchedule::generate(&mut child, target, horizon()).up_fraction(horizon())
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - target).abs() < 0.05,
            "mean up fraction {mean} vs stability {target}"
        );
    }

    #[test]
    fn outages_are_episodes_not_noise() {
        // At 85 % stability with week-scale episodes, a nine-month
        // window sees a handful of outages — not thousands of flips.
        let mut rng = SimRng::new(13);
        let s = OutageSchedule::generate(&mut rng, 0.85, horizon());
        assert!(s.outages() < 30, "{} outages", s.outages());
    }

    #[test]
    fn is_up_respects_interval_boundaries() {
        let mut rng = SimRng::new(5);
        let s = OutageSchedule::generate(&mut rng, 0.5, horizon());
        if let Some(&(start, end)) = s.downtimes.first() {
            assert!(!s.is_up(start));
            assert!(s.is_up(end), "intervals are half-open");
            if start > SimTime::ZERO {
                assert!(s.is_up(start - SimTime::from_nanos(1)));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut rng = SimRng::new(seed);
            OutageSchedule::generate(&mut rng, 0.8, horizon())
        };
        let a = build(42);
        let b = build(42);
        for h in (0..270 * 24).step_by(13) {
            let t = SimTime::from_hours(h);
            assert_eq!(a.is_up(t), b.is_up(t));
        }
    }

    #[test]
    fn zero_horizon_is_degenerate_but_sane() {
        let mut rng = SimRng::new(3);
        let s = OutageSchedule::generate(&mut rng, 0.5, SimTime::ZERO);
        // No window, so nothing to be down in — and up_fraction must not
        // divide by zero.
        assert_eq!(s.up_fraction(SimTime::ZERO), 1.0);
        assert_eq!(s.up_fraction(SimTime::from_hours(1)), 1.0);
    }

    #[test]
    fn back_to_back_outages_keep_boundaries_half_open() {
        // A schedule whose down intervals touch: [1h,2h) and [2h,3h).
        // Construction draws an up episode between them, but the query
        // logic itself must handle adjacency without gaps or overlap.
        let s = OutageSchedule {
            downtimes: vec![
                (SimTime::from_hours(1), SimTime::from_hours(2)),
                (SimTime::from_hours(2), SimTime::from_hours(3)),
            ],
        };
        assert!(s.is_up(SimTime::ZERO));
        assert!(!s.is_up(SimTime::from_hours(1)));
        assert!(
            !s.is_up(SimTime::from_hours(2)),
            "the shared boundary belongs to the second outage"
        );
        assert!(!s.is_up(SimTime::from_hours(3) - SimTime::from_nanos(1)));
        assert!(s.is_up(SimTime::from_hours(3)));
        assert_eq!(s.outages(), 2);
        // Two of four hours down.
        let got = s.up_fraction(SimTime::from_hours(4));
        assert!((got - 0.5).abs() < 1e-9, "up fraction {got}");
    }

    #[test]
    fn up_fraction_clips_intervals_at_the_queried_horizon() {
        // One outage [1h,3h); query at 2h: only 1 of 2 hours counts.
        let s = OutageSchedule {
            downtimes: vec![(SimTime::from_hours(1), SimTime::from_hours(3))],
        };
        let got = s.up_fraction(SimTime::from_hours(2));
        assert!((got - 0.5).abs() < 1e-9, "up fraction {got}");
        // Query exactly at the outage start: fully up before it.
        assert_eq!(s.up_fraction(SimTime::from_hours(1)), 1.0);
        // Query far past the horizon: 2 of 8 hours down.
        let got = s.up_fraction(SimTime::from_hours(8));
        assert!((got - 0.75).abs() < 1e-9, "up fraction {got}");
    }

    #[test]
    fn stability_is_clamped_at_both_ends() {
        let mut rng = SimRng::new(8);
        // Above 1.0 behaves like 1.0: always up.
        let s = OutageSchedule::generate(&mut rng, 7.5, horizon());
        assert_eq!(s.outages(), 0);
        // Far below the clamp floor behaves like 1%: mostly down, but
        // the schedule is still finite and well-formed.
        let s = OutageSchedule::generate(&mut rng, -3.0, horizon());
        assert!(s.up_fraction(horizon()) < 0.3);
        for w in s.downtimes.windows(2) {
            assert!(w[0].1 <= w[1].0, "intervals sorted and disjoint");
        }
    }

    #[test]
    fn low_stability_probes_are_mostly_down() {
        let mut rng = SimRng::new(99);
        let n = 100;
        let mean: f64 = (0..n)
            .map(|_| {
                let mut child = rng.fork();
                OutageSchedule::generate(&mut child, 0.1, horizon()).up_fraction(horizon())
            })
            .sum::<f64>()
            / n as f64;
        assert!(mean < 0.25, "mean up fraction {mean}");
    }
}
