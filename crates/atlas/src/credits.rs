//! Credit accounting.
//!
//! RIPE Atlas meters measurements in credits (a ping costs its packet
//! count). The paper's acknowledgements thank the Atlas team for
//! "supporting our measurements with increased quota limits" — so the
//! ledger supports exactly that: a base quota plus boosts.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// Why a debit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CreditError {
    /// The ledger does not hold enough credits.
    InsufficientCredits {
        /// Credits available at the time of the attempt.
        available: u64,
        /// Credits the operation needed.
        needed: u64,
    },
}

impl std::fmt::Display for CreditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreditError::InsufficientCredits { available, needed } => write!(
                f,
                "insufficient credits: have {available}, need {needed}"
            ),
        }
    }
}

impl std::error::Error for CreditError {}

/// A measurement owner's credit balance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CreditLedger {
    balance: u64,
    spent: u64,
    /// Credits returned for failed measurements (Atlas refunds one-offs
    /// that never respond). Absent in pre-recovery serialized ledgers.
    #[serde(default)]
    refunded: u64,
    /// Refund keys already honoured, guarding resumed campaigns against
    /// double-refunding the same `(measurement, round)`. Transient
    /// bookkeeping — journals persist only the three counters above.
    #[serde(skip)]
    refund_keys: HashSet<(u64, u32)>,
}

impl CreditLedger {
    /// Opens a ledger with an initial grant.
    pub fn new(initial: u64) -> Self {
        Self {
            balance: initial,
            spent: 0,
            refunded: 0,
            refund_keys: HashSet::new(),
        }
    }

    /// Rebuilds a ledger from journaled counters (crash recovery). The
    /// idempotence key set starts empty: replay never re-executes a
    /// journaled round, so no journaled refund can be re-attempted.
    pub fn restore(balance: u64, spent: u64, refunded: u64) -> Self {
        Self {
            balance,
            spent,
            refunded,
            refund_keys: HashSet::new(),
        }
    }

    /// Remaining credits.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Lifetime spend.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Grants additional credits (the "increased quota limits").
    pub fn boost(&mut self, amount: u64) {
        self.balance = self.balance.saturating_add(amount);
    }

    /// Cost of a ping round: one credit per packet (Atlas pricing for
    /// the default packet size).
    pub fn ping_cost(packets: u32) -> u64 {
        u64::from(packets)
    }

    /// Debits `amount`, failing without side effects if the balance is
    /// short.
    pub fn debit(&mut self, amount: u64) -> Result<(), CreditError> {
        if amount > self.balance {
            return Err(CreditError::InsufficientCredits {
                available: self.balance,
                needed: amount,
            });
        }
        self.balance -= amount;
        self.spent += amount;
        Ok(())
    }

    /// Returns up to `amount` previously spent credits to the balance
    /// (never more than the lifetime spend) and reports how much was
    /// actually refunded. Conserves `balance + spent`.
    pub fn refund(&mut self, amount: u64) -> u64 {
        let refunded = amount.min(self.spent);
        self.spent -= refunded;
        self.balance = self.balance.saturating_add(refunded);
        self.refunded = self.refunded.saturating_add(refunded);
        refunded
    }

    /// Lifetime refunds for failed measurements.
    pub fn refunded(&self) -> u64 {
        self.refunded
    }

    /// Refunds `amount` at most once per `(measurement, round)` key;
    /// repeat calls with the same key are no-ops returning 0. This is
    /// what keeps a resumed campaign from double-refunding a failure it
    /// already compensated before the crash.
    pub fn refund_once(&mut self, measurement: u64, round: u32, amount: u64) -> u64 {
        if !self.refund_keys.insert((measurement, round)) {
            return 0;
        }
        self.refund(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debit_and_balance() {
        let mut l = CreditLedger::new(10);
        assert!(l.debit(4).is_ok());
        assert_eq!(l.balance(), 6);
        assert_eq!(l.spent(), 4);
    }

    #[test]
    fn refuses_overdraft_without_side_effects() {
        let mut l = CreditLedger::new(3);
        let err = l.debit(5).unwrap_err();
        assert_eq!(
            err,
            CreditError::InsufficientCredits {
                available: 3,
                needed: 5
            }
        );
        assert_eq!(l.balance(), 3);
        assert_eq!(l.spent(), 0);
    }

    #[test]
    fn boost_extends_quota() {
        let mut l = CreditLedger::new(1);
        assert!(l.debit(2).is_err());
        l.boost(10);
        assert!(l.debit(2).is_ok());
        assert_eq!(l.balance(), 9);
    }

    #[test]
    fn ping_cost_per_packet() {
        assert_eq!(CreditLedger::ping_cost(3), 3);
        assert_eq!(CreditLedger::ping_cost(0), 0);
    }

    #[test]
    fn refund_restores_balance_and_conserves_totals() {
        let mut l = CreditLedger::new(10);
        l.debit(6).unwrap();
        assert_eq!(l.refund(4), 4);
        assert_eq!(l.balance(), 8);
        assert_eq!(l.spent(), 2);
        assert_eq!(l.refunded(), 4);
        assert_eq!(l.balance() + l.spent(), 10);
    }

    #[test]
    fn refund_is_capped_by_lifetime_spend() {
        let mut l = CreditLedger::new(10);
        l.debit(3).unwrap();
        assert_eq!(l.refund(100), 3, "cannot refund more than was spent");
        assert_eq!(l.balance(), 10);
        assert_eq!(l.spent(), 0);
        assert_eq!(l.refund(1), 0, "nothing left to refund");
    }

    #[test]
    fn refund_once_is_idempotent_per_measurement_round() {
        let mut l = CreditLedger::new(10);
        l.debit(6).unwrap();
        assert_eq!(l.refund_once(7, 3, 2), 2);
        assert_eq!(l.refund_once(7, 3, 2), 0, "same key must not refund twice");
        assert_eq!(l.refund_once(7, 4, 2), 2, "different round is a new key");
        assert_eq!(l.refund_once(8, 3, 2), 2, "different measurement too");
        assert_eq!(l.balance() + l.spent(), 10, "conservation holds throughout");
        assert_eq!(l.refunded(), 6);
    }

    #[test]
    fn restore_rebuilds_counters_with_a_fresh_key_set() {
        let mut l = CreditLedger::restore(8, 2, 4);
        assert_eq!(l.balance(), 8);
        assert_eq!(l.spent(), 2);
        assert_eq!(l.refunded(), 4);
        // Keys do not survive a restore; the first refund per key lands.
        assert_eq!(l.refund_once(1, 1, 1), 1);
        assert_eq!(l.refund_once(1, 1, 1), 0);
    }

    #[test]
    fn error_displays() {
        let e = CreditError::InsufficientCredits {
            available: 1,
            needed: 2,
        };
        assert!(e.to_string().contains("insufficient"));
    }
}
