//! Platform assembly: world topology + cloud datacenters + probe fleet.
//!
//! [`Platform::build`] wires the three substrates together exactly as
//! §4.1 describes the real setup: a VM ("end-point") in every selected
//! cloud region, probes ("vantage points") attached to their national
//! access infrastructure, and a target list per probe that covers the
//! same-continent datacenters plus the adjacent-continent rule for
//! Africa and Latin America.

use shears_cloud::{Catalog, Provider, Region};
use shears_geo::{Continent, CountryAtlas};
use shears_netsim::{NodeId, RouteTable, Topology, WorldNet, WorldNetConfig};

use crate::fleet::{FleetBuilder, FleetConfig};
use crate::probe::{Probe, ProbeId};

/// Platform construction parameters.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct PlatformConfig {
    /// Fleet synthesis parameters.
    pub fleet: FleetConfig,
    /// World topology parameters.
    pub world: WorldNetConfig,
    /// Restrict the catalogue to regions launched in or before this
    /// year (`None` = full 2020 catalogue). Drives the EXT3 ablation.
    pub catalog_year: Option<u16>,
    /// Restrict to a single provider (`None` = all seven).
    pub provider: Option<Provider>,
}


impl PlatformConfig {
    /// A small configuration for tests and examples: a few hundred
    /// probes, full catalogue.
    pub fn quick(seed: u64) -> Self {
        Self {
            fleet: FleetConfig {
                target_size: 300,
                seed,
            },
            ..Self::default()
        }
    }
}

/// The assembled measurement platform.
pub struct Platform {
    countries: CountryAtlas,
    catalog: Catalog,
    probes: Vec<Probe>,
    world: WorldNet,
    probe_nodes: Vec<NodeId>,
    dc_nodes: Vec<NodeId>,
    region_continents: Vec<Continent>,
}

impl Platform {
    /// Builds the platform: world backbone, datacenter attachments for
    /// every catalogue region, then the probe fleet.
    pub fn build(cfg: &PlatformConfig) -> Self {
        let countries = CountryAtlas::global();
        let mut catalog = Catalog::global();
        if cfg.catalog_year.is_some() || cfg.provider.is_some() {
            catalog = catalog.snapshot(cfg.catalog_year.unwrap_or(u16::MAX), cfg.provider);
        }
        let mut world = WorldNet::build(&countries, &cfg.world);

        let dc_nodes: Vec<NodeId> = catalog
            .regions()
            .iter()
            .map(|r| {
                world.attach_datacenter(
                    r.location,
                    r.country,
                    r.provider.has_private_backbone(),
                    &cfg.world,
                )
            })
            .collect();
        let region_continents: Vec<Continent> = catalog
            .regions()
            .iter()
            .map(|r| {
                countries
                    .by_code(r.country)
                    .expect("catalogue countries exist in the atlas")
                    .continent
            })
            .collect();

        let probes = FleetBuilder::new(cfg.fleet).build(&countries);
        let probe_nodes: Vec<NodeId> = probes
            .iter()
            .map(|p| world.attach_probe(p.location, &p.country, p.access))
            .collect();

        Self {
            countries,
            catalog,
            probes,
            world,
            probe_nodes,
            dc_nodes,
            region_continents,
        }
    }

    /// The country atlas the platform was built from.
    pub fn countries(&self) -> &CountryAtlas {
        &self.countries
    }

    /// The (possibly snapshot-restricted) cloud catalogue.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The probe fleet.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// The fleet minus §4.1 privileged probes — the starting point of
    /// every analysis and of on-demand measurement selection.
    pub fn unprivileged_probes(&self) -> impl Iterator<Item = &Probe> {
        self.probes.iter().filter(|p| !p.is_privileged())
    }

    /// The underlying world (for attaching extension nodes such as edge
    /// sites).
    pub fn world_mut(&mut self) -> &mut WorldNet {
        &mut self.world
    }

    /// Read access to the world.
    pub fn world(&self) -> &WorldNet {
        &self.world
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.world.topology()
    }

    /// The topology node of a probe.
    pub fn probe_node(&self, id: ProbeId) -> NodeId {
        self.probe_nodes[id.index()]
    }

    /// The topology node of a catalogue region.
    pub fn dc_node(&self, region_index: usize) -> NodeId {
        self.dc_nodes[region_index]
    }

    /// The catalogue region record by index.
    pub fn region(&self, region_index: usize) -> &Region {
        &self.catalog.regions()[region_index]
    }

    /// The continent a region sits on.
    pub fn region_continent(&self, region_index: usize) -> Continent {
        self.region_continents[region_index]
    }

    /// The measurement targets of a probe, as catalogue indices:
    /// the `same_continent` nearest regions on the probe's continent,
    /// plus — for probes on continents with low datacenter density
    /// (Africa, Latin America) — the `adjacent` nearest regions on the
    /// paper's designated adjacent continent.
    pub fn targets_for(
        &self,
        probe: &Probe,
        same_continent: usize,
        adjacent: usize,
    ) -> Vec<u16> {
        let by_continent =
            |continent: Continent, n: usize, out: &mut Vec<u16>| {
                let mut candidates: Vec<(f64, u16)> = self
                    .catalog
                    .regions()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.region_continents[*i] == continent)
                    .map(|(i, r)| (probe.location.distance_km(r.location), i as u16))
                    .collect();
                candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                out.extend(candidates.into_iter().take(n).map(|(_, i)| i));
            };
        let mut targets = Vec::with_capacity(same_continent + adjacent);
        by_continent(probe.continent, same_continent, &mut targets);
        for &adj in probe.continent.adjacent_measurement_targets() {
            by_continent(adj, adjacent, &mut targets);
        }
        targets
    }

    /// Precomputes the routes from every probe to its measurement
    /// targets (per [`Platform::targets_for`]) into a frozen
    /// [`RouteTable`], fanning the per-probe searches over `threads`
    /// workers. The table is thread-count invariant and can be shared
    /// read-only by any number of probers.
    pub fn route_table(
        &self,
        same_continent: usize,
        adjacent: usize,
        threads: usize,
    ) -> RouteTable {
        let wants: Vec<(NodeId, Vec<NodeId>)> = self
            .probes
            .iter()
            .map(|p| {
                (
                    self.probe_node(p.id),
                    self.targets_for(p, same_continent, adjacent)
                        .iter()
                        .map(|&region| self.dc_node(region as usize))
                        .collect(),
                )
            })
            .collect();
        RouteTable::build(self.topology(), &wants, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_platform() -> Platform {
        Platform::build(&PlatformConfig::quick(3))
    }

    #[test]
    fn builds_with_all_regions_attached() {
        let p = quick_platform();
        assert_eq!(p.dc_nodes.len(), 101);
        assert_eq!(p.probe_nodes.len(), p.probes().len());
        assert!(p.probes().len() >= 300);
    }

    #[test]
    fn targets_are_same_continent() {
        let p = quick_platform();
        let eu_probe = p
            .probes()
            .iter()
            .find(|pr| pr.continent == Continent::Europe)
            .unwrap();
        let targets = p.targets_for(eu_probe, 5, 3);
        assert_eq!(targets.len(), 5, "no adjacency rule for Europe");
        for &t in &targets {
            assert_eq!(p.region_continent(t as usize), Continent::Europe);
        }
    }

    #[test]
    fn african_probes_also_target_europe() {
        let p = quick_platform();
        let af_probe = p
            .probes()
            .iter()
            .find(|pr| pr.continent == Continent::Africa)
            .unwrap();
        let targets = p.targets_for(af_probe, 5, 3);
        // Africa has exactly one region, so 1 + 3 adjacent.
        assert_eq!(targets.len(), 1 + 3);
        assert_eq!(p.region_continent(targets[0] as usize), Continent::Africa);
        for &t in &targets[1..] {
            assert_eq!(p.region_continent(t as usize), Continent::Europe);
        }
    }

    #[test]
    fn latam_probes_also_target_north_america() {
        let p = quick_platform();
        let la = p
            .probes()
            .iter()
            .find(|pr| pr.continent == Continent::LatinAmerica)
            .unwrap();
        let targets = p.targets_for(la, 4, 2);
        assert!(targets.len() > 4, "adjacency targets missing");
        assert!(targets[4..]
            .iter()
            .all(|&t| p.region_continent(t as usize) == Continent::NorthAmerica));
    }

    #[test]
    fn targets_sorted_by_distance() {
        let p = quick_platform();
        let probe = &p.probes()[0];
        let targets = p.targets_for(probe, 5, 0);
        let dists: Vec<f64> = targets
            .iter()
            .map(|&t| probe.location.distance_km(p.region(t as usize).location))
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }

    #[test]
    fn snapshot_platform_has_fewer_regions() {
        let cfg = PlatformConfig {
            catalog_year: Some(2010),
            ..PlatformConfig::quick(3)
        };
        let p = Platform::build(&cfg);
        assert!(p.catalog().regions().len() < 20, "2010 cloud was tiny");
        assert!(!p.catalog().regions().is_empty());
    }

    #[test]
    fn route_table_resolves_probe_targets() {
        let p = quick_platform();
        let table = p.route_table(2, 1, 4);
        assert!(!table.is_empty());
        let probe = &p.probes()[0];
        let from = p.probe_node(probe.id);
        for &t in &p.targets_for(probe, 2, 1) {
            let to = p.dc_node(t as usize);
            let path = table.path(from, to).expect("platform graph is connected");
            assert_eq!(path.source(), from);
            assert_eq!(path.dest(), to);
        }
    }

    #[test]
    fn provider_restriction() {
        let cfg = PlatformConfig {
            provider: Some(Provider::Linode),
            ..PlatformConfig::quick(3)
        };
        let p = Platform::build(&cfg);
        assert_eq!(p.catalog().regions().len(), 10);
        assert!(p
            .catalog()
            .regions()
            .iter()
            .all(|r| r.provider == Provider::Linode));
    }
}
