//! The probe model.

use serde::{Deserialize, Serialize};
use shears_geo::{Continent, GeoPoint};
use shears_netsim::access::AccessLink;

/// Platform-wide probe identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ProbeId(pub u32);

impl ProbeId {
    /// Raw index (probes are stored densely).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A measurement probe: the platform's vantage point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Probe {
    /// Identifier, dense from 0.
    pub id: ProbeId,
    /// Host location.
    pub location: GeoPoint,
    /// ISO country code.
    pub country: String,
    /// Continent (copied from the country atlas at synthesis time so
    /// analysis grouping needs no joins).
    pub continent: Continent,
    /// The probe's last-mile model.
    pub access: AccessLink,
    /// System + user tags (see [`crate::tags`]).
    pub tags: Vec<String>,
    /// Probability the probe is online in any given round. Real Atlas
    /// probes disappear for days; the paper keeps them ("the result
    /// includes probes without a stable Internet connection").
    pub stability: f64,
}

impl Probe {
    /// Whether the probe carries any of the given tags.
    pub fn has_any_tag(&self, set: &[&str]) -> bool {
        self.tags.iter().any(|t| set.iter().any(|s| s == t))
    }

    /// Whether the probe is in a privileged location (to be excluded by
    /// the paper's methodology).
    pub fn is_privileged(&self) -> bool {
        self.has_any_tag(crate::tags::PRIVILEGED_TAGS)
    }

    /// Whether the probe's user tags mark it wireless.
    pub fn is_wireless_tagged(&self) -> bool {
        self.has_any_tag(crate::tags::WIRELESS_TAGS)
    }

    /// Whether the probe's user tags mark it wired (and not wireless —
    /// dual-tagged probes count as wireless, see [`crate::tags`]).
    pub fn is_wired_tagged(&self) -> bool {
        self.has_any_tag(crate::tags::WIRED_TAGS) && !self.is_wireless_tagged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_netsim::access::AccessTechnology;

    fn probe_with_tags(tags: &[&str]) -> Probe {
        Probe {
            id: ProbeId(1),
            location: GeoPoint::new(0.0, 0.0),
            country: "DE".into(),
            continent: Continent::Europe,
            access: AccessLink::new(AccessTechnology::Dsl, 1.0),
            tags: tags.iter().map(|s| s.to_string()).collect(),
            stability: 0.95,
        }
    }

    #[test]
    fn privileged_detection() {
        assert!(probe_with_tags(&["datacentre"]).is_privileged());
        assert!(probe_with_tags(&["cloud", "ethernet"]).is_privileged());
        assert!(!probe_with_tags(&["home", "dsl"]).is_privileged());
    }

    #[test]
    fn wired_wireless_tagging() {
        assert!(probe_with_tags(&["ethernet"]).is_wired_tagged());
        assert!(probe_with_tags(&["lte"]).is_wireless_tagged());
        let dual = probe_with_tags(&["ethernet", "wifi"]);
        assert!(dual.is_wireless_tagged());
        assert!(!dual.is_wired_tagged());
    }
}
