//! Measurement definitions, mirroring the Atlas measurement API.

use serde::{Deserialize, Serialize};
use shears_netsim::SimTime;

/// What kind of probe traffic a measurement sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasurementType {
    /// ICMP echo (the paper's primary method).
    Ping,
    /// TCP connect-time probing (§5's planned extension).
    TcpConnect,
}

/// A measurement definition: what to measure, how often, for how long.
///
/// Matches the fields of the Atlas `POST /measurements` API that the
/// paper's campaign uses: type, target, interval, packet count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementSpec {
    /// Platform-assigned id.
    pub id: u64,
    /// Probe type.
    pub kind: MeasurementType,
    /// Index of the target region in the cloud catalogue.
    pub target_region: usize,
    /// Inter-round interval. The paper used three hours.
    pub interval: SimTime,
    /// Packets per round (Atlas ping default: 3).
    pub packets: u32,
    /// Total campaign duration.
    pub duration: SimTime,
}

impl MeasurementSpec {
    /// The paper's configuration: ping, every 3 h, 3 packets.
    pub fn paper_ping(id: u64, target_region: usize, duration: SimTime) -> Self {
        Self {
            id,
            kind: MeasurementType::Ping,
            target_region,
            interval: SimTime::from_hours(3),
            packets: 3,
            duration,
        }
    }

    /// Number of rounds the spec schedules (floor of duration/interval,
    /// plus the round at t = 0).
    pub fn rounds(&self) -> u64 {
        if self.interval == SimTime::ZERO {
            return 1;
        }
        self.duration.as_nanos() / self.interval.as_nanos() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ping_defaults() {
        let spec = MeasurementSpec::paper_ping(1, 5, SimTime::from_days(270));
        assert_eq!(spec.kind, MeasurementType::Ping);
        assert_eq!(spec.packets, 3);
        assert_eq!(spec.interval, SimTime::from_hours(3));
        // Nine months at 8 rounds/day.
        assert_eq!(spec.rounds(), 270 * 8 + 1);
    }

    #[test]
    fn zero_interval_means_one_round() {
        let spec = MeasurementSpec {
            id: 1,
            kind: MeasurementType::Ping,
            target_region: 0,
            interval: SimTime::ZERO,
            packets: 3,
            duration: SimTime::from_days(1),
        };
        assert_eq!(spec.rounds(), 1);
    }
}
