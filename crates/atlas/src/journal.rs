//! Crash-safe campaign durability: a round-granular write-ahead journal.
//!
//! The paper's headline dataset is a nine-month, 3.2 M-sample campaign —
//! exactly the workload a single process crash destroys when results only
//! live in RAM. This module gives [`crate::Campaign`] a durable spine:
//!
//! * **Journal file** — an 8-byte magic + format version prologue followed
//!   by length-prefixed, CRC-32-checksummed frames. The first frame is a
//!   *header* (full config snapshot: seed, [`crate::CampaignConfig`],
//!   fault + retry policy, fleet/target digest, fault-plan digest); every
//!   completed round appends one *round* frame (the round's
//!   [`RttSample`]s plus the post-round [`CreditLedger`] counters);
//!   periodic *checkpoint* frames snapshot the whole store so the journal
//!   can be compacted (rewritten as header + checkpoint via temp file +
//!   atomic rename).
//! * **Replay** — [`replay`] walks the frames, tolerating a torn tail
//!   (a crash mid-append leaves a prefix of the final frame; it is
//!   discarded and resume re-runs that round) while rejecting real
//!   corruption (bit flips fail the CRC) with a typed [`JournalError`],
//!   never a panic.
//! * **Resume** — `Campaign::resume` validates the digests, truncates the
//!   torn tail, re-seeds the per-`(probe, round)` RNG streams at the next
//!   round boundary and continues; crash-at-round-*k* + resume is
//!   bit-identical to an uninterrupted run (pinned by
//!   `tests/crash_recovery.rs`).
//!
//! Everything is hand-rolled little-endian binary — no new dependencies,
//! and unlike the JSONL dataset dumps the journal round-trips `INFINITY`
//! loss markers bit-exactly (samples are stored as raw `f32` bits).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use shears_netsim::fault::FaultConfig;
use shears_netsim::SimTime;

use crate::campaign::CampaignConfig;
use crate::credits::CreditLedger;
use crate::measurement::MeasurementType;
use crate::probe::ProbeId;
use crate::recovery::RetryPolicy;
use crate::store::ResultStore;

/// File prologue: magic bytes identifying a shears campaign journal.
pub const MAGIC: [u8; 8] = *b"SHRSJNL\n";
/// Current journal format version (follows the magic in the prologue).
///
/// Version 2 promoted the sample block from row-major 24-byte records
/// to a **columnar block**: a `u64` count followed by one contiguous
/// array per field (probe, region, at, min bits, avg bits, sent,
/// received). Same bytes per sample, but replay decodes each array
/// straight into the matching [`ResultStore`] column — no per-sample
/// `RttSample` materialisation on the recovery path.
pub const FORMAT_VERSION: u32 = 2;

/// Frame type tags (first payload byte of every frame).
const FRAME_HEADER: u8 = 1;
const FRAME_ROUND: u8 = 2;
const FRAME_CHECKPOINT: u8 = 3;

/// Why a journal could not be written, read, or trusted.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the journal magic.
    BadMagic,
    /// The file was written by a newer (or mangled) format revision.
    UnsupportedVersion {
        /// Version number found in the prologue.
        found: u32,
    },
    /// The file ends before the prologue completes (e.g. an empty file).
    Truncated {
        /// Byte offset at which the file gave out.
        offset: u64,
    },
    /// The first frame is not a header frame.
    MissingHeader,
    /// A complete frame failed its CRC — a bit flip, not a torn write.
    ChecksumMismatch {
        /// Byte offset of the offending frame.
        offset: u64,
    },
    /// A frame decoded to nonsense (bad tag, short payload, out-of-order
    /// round, unknown enum code, …).
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What exactly failed to decode.
        what: &'static str,
    },
    /// The journal's config snapshot does not match the world it is being
    /// resumed against (different fleet, targets, or fault schedule).
    ConfigMismatch {
        /// Which digest disagreed.
        what: &'static str,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a campaign journal (bad magic)"),
            JournalError::UnsupportedVersion { found } => {
                write!(f, "unsupported journal format version {found}")
            }
            JournalError::Truncated { offset } => {
                write!(f, "journal truncated inside the prologue at byte {offset}")
            }
            JournalError::MissingHeader => {
                write!(f, "journal has no header frame")
            }
            JournalError::ChecksumMismatch { offset } => {
                write!(f, "journal frame at byte {offset} failed its checksum")
            }
            JournalError::Corrupt { offset, what } => {
                write!(f, "journal frame at byte {offset} is corrupt: {what}")
            }
            JournalError::ConfigMismatch { what } => {
                write!(f, "journal does not match this platform: {what} differs")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), table-driven, built at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the journal's per-frame integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian wire primitives (shared with the API's persistent
// measurement state).
// ---------------------------------------------------------------------------

/// Decode cursor over a frame payload. All getters fail soft (`Err`
/// with a static description) so replay can map them to
/// [`JournalError::Corrupt`] instead of panicking on bad input.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.remaining() < n {
            return Err("short read");
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, &'static str> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` as raw bits (round-trips `INFINITY` markers).
    pub fn f32_bits(&mut self) -> Result<f32, &'static str> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` as raw bits.
    pub fn f64_bits(&mut self) -> Result<f64, &'static str> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, &'static str> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8")
    }
}

/// Appends a length-prefixed UTF-8 string to a payload buffer.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Frames `payload` (length prefix + CRC) into a standalone byte vector.
///
/// A frame on disk is `[len: u32][crc32(payload): u32][payload]`; writers
/// emit the whole frame with a single `write_all` so a crash can only
/// ever leave a *prefix* of the final frame — which replay recognises as
/// a torn tail and discards.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads the frame starting at `at` inside `bytes`.
///
/// * `Ok(Some((payload, end)))` — a complete, checksum-valid frame.
/// * `Ok(None)` — the bytes from `at` to EOF are an incomplete frame
///   (torn tail); the caller should stop and treat `at` as the valid end.
/// * `Err(ChecksumMismatch)` — the frame is complete but its CRC fails:
///   real corruption, not a torn write.
pub fn read_frame(bytes: &[u8], at: usize) -> Result<Option<(&[u8], usize)>, JournalError> {
    if bytes.len() - at < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
    if bytes.len() - at - 8 < len {
        return Ok(None);
    }
    let payload = &bytes[at + 8..at + 8 + len];
    if crc32(payload) != crc {
        return Err(JournalError::ChecksumMismatch { offset: at as u64 });
    }
    Ok(Some((payload, at + 8 + len)))
}

// ---------------------------------------------------------------------------
// Header: the config snapshot a resumed run is validated against.
// ---------------------------------------------------------------------------

/// The journal's config snapshot: everything needed to reconstruct the
/// campaign (and to prove the world it is resumed against is the world
/// it was crashed out of).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalHeader {
    /// The full campaign configuration, byte-for-byte recoverable.
    pub config: CampaignConfig,
    /// FNV-1a digest over the probe fleet and resolved target table.
    pub fleet_digest: u64,
    /// [`shears_netsim::FaultPlan::digest`] of the materialised fault
    /// schedule (0 when fault injection is disabled).
    pub plan_digest: u64,
}

fn kind_code(kind: MeasurementType) -> u8 {
    match kind {
        MeasurementType::Ping => 0,
        MeasurementType::TcpConnect => 1,
    }
}

fn kind_from_code(code: u8) -> Result<MeasurementType, &'static str> {
    match code {
        0 => Ok(MeasurementType::Ping),
        1 => Ok(MeasurementType::TcpConnect),
        _ => Err("unknown measurement type code"),
    }
}

impl JournalHeader {
    /// Serialises the header as a standalone wire payload — the exact
    /// byte layout of the journal's header frame — for handing a
    /// campaign config and its digests across a process boundary (the
    /// distributed coordinator ships this to registering workers).
    pub fn to_wire(&self) -> Vec<u8> {
        self.encode()
    }

    /// Decodes a [`JournalHeader::to_wire`] payload.
    pub fn from_wire(payload: &[u8]) -> Result<JournalHeader, &'static str> {
        Self::decode(payload)
    }

    fn encode(&self) -> Vec<u8> {
        let cfg = &self.config;
        let mut out = Vec::with_capacity(192);
        out.push(FRAME_HEADER);
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        out.extend_from_slice(&cfg.rounds.to_le_bytes());
        out.extend_from_slice(&cfg.interval.as_nanos().to_le_bytes());
        out.extend_from_slice(&cfg.packets.to_le_bytes());
        out.extend_from_slice(&(cfg.targets_per_probe as u64).to_le_bytes());
        out.extend_from_slice(&(cfg.adjacent_targets as u64).to_le_bytes());
        out.extend_from_slice(&cfg.credits.to_le_bytes());
        out.push(u8::from(cfg.churn));
        out.push(kind_code(cfg.kind));
        cfg.faults.encode(&mut out);
        out.extend_from_slice(&cfg.recovery.max_retries.to_le_bytes());
        out.extend_from_slice(&cfg.recovery.base_backoff.as_nanos().to_le_bytes());
        out.extend_from_slice(&cfg.recovery.max_backoff.as_nanos().to_le_bytes());
        out.extend_from_slice(&cfg.recovery.jitter.to_bits().to_le_bytes());
        out.extend_from_slice(&cfg.recovery.measurement_timeout.as_nanos().to_le_bytes());
        out.push(u8::from(cfg.recovery.refund_failures));
        out.extend_from_slice(&self.fleet_digest.to_le_bytes());
        out.extend_from_slice(&self.plan_digest.to_le_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Result<JournalHeader, &'static str> {
        let mut r = ByteReader::new(payload);
        if r.u8()? != FRAME_HEADER {
            return Err("not a header frame");
        }
        let seed = r.u64()?;
        let rounds = r.u32()?;
        let interval = SimTime::from_nanos(r.u64()?);
        let packets = r.u32()?;
        let targets_per_probe = r.u64()? as usize;
        let adjacent_targets = r.u64()? as usize;
        let credits = r.u64()?;
        let churn = r.u8()? != 0;
        let kind = kind_from_code(r.u8()?)?;
        let faults = FaultConfig::decode(r.take(FaultConfig::ENCODED_LEN)?)
            .ok_or("undecodable fault config")?;
        let recovery = RetryPolicy {
            max_retries: r.u32()?,
            base_backoff: SimTime::from_nanos(r.u64()?),
            max_backoff: SimTime::from_nanos(r.u64()?),
            jitter: r.f64_bits()?,
            measurement_timeout: SimTime::from_nanos(r.u64()?),
            refund_failures: r.u8()? != 0,
        };
        let fleet_digest = r.u64()?;
        let plan_digest = r.u64()?;
        if r.remaining() != 0 {
            return Err("trailing bytes after header");
        }
        Ok(JournalHeader {
            config: CampaignConfig {
                rounds,
                interval,
                packets,
                targets_per_probe,
                adjacent_targets,
                seed,
                credits,
                churn,
                kind,
                faults,
                recovery,
            },
            fleet_digest,
            plan_digest,
        })
    }
}

// ---------------------------------------------------------------------------
// Sample + ledger payload encoding shared by round and checkpoint frames.
// ---------------------------------------------------------------------------

const SAMPLE_WIRE_LEN: usize = 24;

/// Encodes rows `[from, store.len())` as one columnar block: a `u64`
/// count, then one contiguous little-endian array per field. 24 bytes
/// per sample plus the count, exactly like the old row-major layout —
/// only the byte order within the block changed, so both sides stream
/// dense columns instead of striding records.
fn put_samples(out: &mut Vec<u8>, store: &ResultStore, from: usize) {
    let n = store.len() - from;
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.reserve(n * SAMPLE_WIRE_LEN);
    for p in &store.probes()[from..] {
        out.extend_from_slice(&p.0.to_le_bytes());
    }
    for region in &store.regions()[from..] {
        out.extend_from_slice(&region.to_le_bytes());
    }
    for at in &store.ats()[from..] {
        out.extend_from_slice(&at.as_nanos().to_le_bytes());
    }
    for v in &store.min_ms()[from..] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in &store.avg_ms()[from..] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&store.sent()[from..]);
    out.extend_from_slice(&store.received()[from..]);
}

/// Decodes a columnar sample block, appending each array directly onto
/// the matching store column — no per-sample `RttSample` detour.
fn get_samples(r: &mut ByteReader<'_>, into: &mut ResultStore) -> Result<(), &'static str> {
    let n = r.u64()? as usize;
    if r.remaining() < n.saturating_mul(SAMPLE_WIRE_LEN) {
        return Err("sample block shorter than its declared count");
    }
    let (probe, region, at, min_ms, avg_ms, sent, received) = into.columns_mut();
    probe.reserve(n);
    for _ in 0..n {
        probe.push(ProbeId(r.u32()?));
    }
    region.reserve(n);
    for _ in 0..n {
        region.push(r.u16()?);
    }
    at.reserve(n);
    for _ in 0..n {
        at.push(SimTime::from_nanos(r.u64()?));
    }
    min_ms.reserve(n);
    for _ in 0..n {
        min_ms.push(r.f32_bits()?);
    }
    avg_ms.reserve(n);
    for _ in 0..n {
        avg_ms.push(r.f32_bits()?);
    }
    sent.extend_from_slice(r.take(n)?);
    received.extend_from_slice(r.take(n)?);
    Ok(())
}

/// Encodes a whole store in the journal's columnar block layout —
/// shared with the API's persistent measurement state, so that layer
/// needs no JSON (and no second codec) to survive restarts.
pub fn put_samples_wire(out: &mut Vec<u8>, store: &ResultStore) {
    put_samples(out, store, 0);
}

/// Decodes a [`put_samples_wire`] block straight into a columnar store.
pub fn get_samples_wire(r: &mut ByteReader<'_>) -> Result<ResultStore, &'static str> {
    let mut store = ResultStore::new();
    get_samples(r, &mut store)?;
    Ok(store)
}

fn put_ledger(out: &mut Vec<u8>, ledger: &CreditLedger) {
    out.extend_from_slice(&ledger.balance().to_le_bytes());
    out.extend_from_slice(&ledger.spent().to_le_bytes());
    out.extend_from_slice(&ledger.refunded().to_le_bytes());
}

fn get_ledger(r: &mut ByteReader<'_>) -> Result<CreditLedger, &'static str> {
    Ok(CreditLedger::restore(r.u64()?, r.u64()?, r.u64()?))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Append-side handle on a campaign journal.
///
/// Frames are written with single `write_all` calls (see [`frame`]);
/// `fsync` upgrades each append to a durable one at the cost of one
/// `fdatasync` per round.
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    header_payload: Vec<u8>,
    fsync: bool,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("path", &self.path)
            .field("fsync", &self.fsync)
            .finish()
    }
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the prologue
    /// and header frame.
    pub fn create(path: &Path, header: &JournalHeader, fsync: bool) -> Result<Self, JournalError> {
        let mut file = File::create(path)?;
        let header_payload = header.encode();
        let mut prologue = Vec::with_capacity(12 + 8 + header_payload.len());
        prologue.extend_from_slice(&MAGIC);
        prologue.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        prologue.extend_from_slice(&frame(&header_payload));
        file.write_all(&prologue)?;
        let mut w = Self {
            file,
            path: path.to_owned(),
            header_payload,
            fsync,
        };
        w.maybe_sync()?;
        Ok(w)
    }

    /// Reopens a replayed journal for appending, truncating any torn
    /// tail `replay` detected so the next frame starts on a valid
    /// boundary.
    pub fn open_append(path: &Path, replay: &Replay, fsync: bool) -> Result<Self, JournalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Self {
            file,
            path: path.to_owned(),
            header_payload: replay.header.encode(),
            fsync,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed round — the store rows from `from` to the
    /// end (the round's freshly merged samples) and the post-round
    /// ledger counters. Encoding reads the store columns in place; no
    /// row slice is materialised.
    pub fn append_round(
        &mut self,
        round: u32,
        store: &ResultStore,
        from: usize,
        ledger: &CreditLedger,
    ) -> Result<(), JournalError> {
        let n = store.len() - from;
        let mut payload = Vec::with_capacity(1 + 4 + 24 + 8 + n * SAMPLE_WIRE_LEN);
        payload.push(FRAME_ROUND);
        payload.extend_from_slice(&round.to_le_bytes());
        put_ledger(&mut payload, ledger);
        put_samples(&mut payload, store, from);
        self.file.write_all(&frame(&payload))?;
        self.maybe_sync()
    }

    /// Appends a checkpoint (full store snapshot + ledger + next round),
    /// then compacts the journal down to prologue + header + checkpoint
    /// via a temp file and an atomic rename.
    ///
    /// The append happens *before* the rewrite, so a crash at any point
    /// leaves a replayable file: either the old journal with the
    /// checkpoint frame at its tail (crash before the rename) or the
    /// compacted journal (crash after).
    pub fn checkpoint(
        &mut self,
        next_round: u32,
        store: &ResultStore,
        ledger: &CreditLedger,
    ) -> Result<(), JournalError> {
        let mut payload =
            Vec::with_capacity(1 + 4 + 24 + 8 + store.len() * SAMPLE_WIRE_LEN);
        payload.push(FRAME_CHECKPOINT);
        payload.extend_from_slice(&next_round.to_le_bytes());
        put_ledger(&mut payload, ledger);
        put_samples(&mut payload, store, 0);
        let framed = frame(&payload);
        // 1. Make the checkpoint durable in the live journal.
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        // 2. Compact: rewrite as prologue + header + checkpoint.
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&MAGIC)?;
            out.write_all(&FORMAT_VERSION.to_le_bytes())?;
            out.write_all(&frame(&self.header_payload))?;
            out.write_all(&framed)?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // 3. Continue appending to the compacted file.
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }

    /// Forces buffered appends to disk (always called by the graceful
    /// shutdown path; per-append when `fsync` is set).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn maybe_sync(&mut self) -> Result<(), JournalError> {
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay.
// ---------------------------------------------------------------------------

/// One durable round's location inside a replayed journal: the row
/// span its samples occupy in [`Replay::store`] plus its credit
/// deltas. This is the shard-framing hook for distributed workers —
/// a restarted worker re-frames any journaled round (samples, gross
/// spend, refund) straight from its WAL without recomputing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundMark {
    /// The round number.
    pub round: u32,
    /// First row of the round's samples in the replayed store.
    pub rows_start: usize,
    /// One past the last row of the round's samples.
    pub rows_end: usize,
    /// Gross credits debited during the round (spend before refunds).
    pub gross: u64,
    /// Credits refunded within the round.
    pub refund: u64,
}

/// Everything recovered from a journal: the state a resumed campaign
/// continues from.
#[derive(Debug)]
pub struct Replay {
    /// The config snapshot written at campaign start.
    pub header: JournalHeader,
    /// All samples of every durable round, in append order.
    pub store: ResultStore,
    /// Ledger counters as of the last durable round.
    pub ledger: CreditLedger,
    /// First round that is *not* in the journal (the resume point).
    pub next_round: u32,
    /// Whether a torn tail frame was discarded (crash mid-append).
    pub torn_tail: bool,
    /// Byte length of the valid prefix (the torn tail starts here).
    pub valid_len: u64,
    /// Per-round sample spans and credit deltas for every round frame
    /// replayed *after* the last checkpoint (a checkpoint folds prior
    /// rounds into one snapshot, so only rounds appended since remain
    /// individually addressable). Journals written with checkpoints
    /// disabled — worker shard WALs — keep every round here.
    pub marks: Vec<RoundMark>,
}

impl Replay {
    /// True when every scheduled round is already in the journal.
    pub fn complete(&self) -> bool {
        self.next_round >= self.header.config.rounds
    }

    /// The replayed mark for `round`, if it is individually
    /// addressable (appended after the last checkpoint).
    pub fn mark(&self, round: u32) -> Option<&RoundMark> {
        self.marks.iter().find(|m| m.round == round)
    }
}

/// Replays the journal at `path`.
///
/// Returns the recovered state, or a typed [`JournalError`]; never
/// panics on malformed input. A torn tail (incomplete final frame, the
/// signature of a crash mid-append) is discarded and flagged; a
/// complete frame with a failing checksum is corruption and is an error.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 12 {
        return Err(JournalError::Truncated {
            offset: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(JournalError::UnsupportedVersion { found: version });
    }

    let mut at = 12usize;
    let mut header: Option<JournalHeader> = None;
    let mut store = ResultStore::new();
    let mut ledger = CreditLedger::new(0);
    let mut next_round = 0u32;
    let mut torn_tail = false;
    let mut marks: Vec<RoundMark> = Vec::new();

    while at < bytes.len() {
        let offset = at as u64;
        let Some((payload, end)) = read_frame(&bytes, at)? else {
            // Incomplete trailing frame: a torn write. Drop it.
            torn_tail = true;
            break;
        };
        let corrupt = |what| JournalError::Corrupt { offset, what };
        let tag = *payload.first().ok_or(corrupt("empty frame"))?;
        match tag {
            FRAME_HEADER => {
                if header.is_some() {
                    return Err(corrupt("second header frame"));
                }
                header = Some(JournalHeader::decode(payload).map_err(corrupt)?);
            }
            FRAME_ROUND => {
                let h = header.as_ref().ok_or(JournalError::MissingHeader)?;
                let mut r = ByteReader::new(&payload[1..]);
                let round = r.u32().map_err(corrupt)?;
                if round != next_round {
                    return Err(corrupt("round frame out of order"));
                }
                if round >= h.config.rounds {
                    return Err(corrupt("round beyond the campaign's schedule"));
                }
                let rows_start = store.len();
                // Credit deltas vs the pre-frame counters: `spent` is
                // net of refunds, so the round's gross spend is the
                // spent delta plus the refund delta.
                let (prev_spent, prev_refunded) = (ledger.spent(), ledger.refunded());
                ledger = get_ledger(&mut r).map_err(corrupt)?;
                get_samples(&mut r, &mut store).map_err(corrupt)?;
                if r.remaining() != 0 {
                    return Err(corrupt("trailing bytes after round frame"));
                }
                let refund = ledger.refunded().saturating_sub(prev_refunded);
                marks.push(RoundMark {
                    round,
                    rows_start,
                    rows_end: store.len(),
                    gross: ledger.spent().saturating_sub(prev_spent).saturating_add(refund),
                    refund,
                });
                next_round = round + 1;
            }
            FRAME_CHECKPOINT => {
                if header.is_none() {
                    return Err(JournalError::MissingHeader);
                }
                let mut r = ByteReader::new(&payload[1..]);
                let checkpoint_next = r.u32().map_err(corrupt)?;
                let checkpoint_ledger = get_ledger(&mut r).map_err(corrupt)?;
                let mut snapshot = ResultStore::new();
                get_samples(&mut r, &mut snapshot).map_err(corrupt)?;
                if r.remaining() != 0 {
                    return Err(corrupt("trailing bytes after checkpoint frame"));
                }
                // A checkpoint replaces the accumulated state outright —
                // this is what makes "checkpoint appended, crash before
                // the compaction rename" replay identically to the
                // compacted file.
                store = snapshot;
                ledger = checkpoint_ledger;
                next_round = checkpoint_next;
                marks.clear();
            }
            _ => return Err(corrupt("unknown frame tag")),
        }
        at = end;
    }

    let header = header.ok_or(JournalError::MissingHeader)?;
    Ok(Replay {
        header,
        store,
        ledger,
        next_round,
        torn_tail,
        valid_len: at as u64,
        marks,
    })
}

// ---------------------------------------------------------------------------
// Fleet digest helper (used by Campaign to build the header).
// ---------------------------------------------------------------------------

/// FNV-1a digest over the probe fleet and its resolved target table.
///
/// Everything that shapes the measurement schedule goes in: probe ids,
/// countries, stability, access-link floor, and each probe's resolved
/// target regions. Two platforms digest equal iff they would schedule
/// identical campaigns.
pub fn fleet_digest(probes: &[crate::probe::Probe], targets: &[Vec<u16>]) -> u64 {
    let mut h = shears_netsim::fault::Fnv1a::new();
    h.write_u64(probes.len() as u64);
    for p in probes {
        h.write_u64(u64::from(p.id.0));
        h.write(p.country.as_bytes());
        h.write_u64(p.stability.to_bits());
        h.write_u64(p.access.floor_one_way_ms().to_bits());
        let t = &targets[p.id.index()];
        h.write_u64(t.len() as u64);
        for &region in t {
            h.write_u64(u64::from(region));
        }
    }
    h.finish()
}

/// FNV-1a digest identifying one shard of a campaign's fleet: the
/// shard coordinates mixed with the fleet digest of exactly the probes
/// in the shard (resolved against the full target table, which
/// [`fleet_digest`] indexes by probe id). Worker-side shard journals
/// carry this in the header's fleet-digest slot, so a WAL can never be
/// resumed against the wrong shard or a different partition geometry.
pub fn shard_digest(
    shard: u32,
    shard_count: u32,
    probes: &[crate::probe::Probe],
    targets: &[Vec<u16>],
) -> u64 {
    let mut h = shears_netsim::fault::Fnv1a::new();
    h.write_u64(u64::from(shard));
    h.write_u64(u64::from(shard_count));
    h.write_u64(fleet_digest(probes, targets));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RttSample;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "shears-journal-{}-{tag}-{n}.journal",
            std::process::id()
        ))
    }

    fn sample(probe: u32, region: u16, at_h: u64, min: f32) -> RttSample {
        RttSample {
            probe: ProbeId(probe),
            region,
            at: SimTime::from_hours(at_h),
            min_ms: min,
            avg_ms: min + 1.0,
            sent: 3,
            received: 3,
        }
    }

    /// A store holding exactly these rows (append_round and
    /// put_samples now encode straight from store columns).
    fn store_of(samples: &[RttSample]) -> ResultStore {
        let mut store = ResultStore::with_capacity(samples.len());
        for &s in samples {
            store.push(s);
        }
        store
    }

    fn header() -> JournalHeader {
        JournalHeader {
            config: CampaignConfig::quick(),
            fleet_digest: 0xFEE7,
            plan_digest: 0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_frame_round_trips_every_config_field() {
        let mut cfg = CampaignConfig::paper_scale();
        cfg.churn = true;
        cfg.kind = MeasurementType::TcpConnect;
        cfg.faults = shears_netsim::fault::FaultConfig::chaos();
        cfg.recovery = RetryPolicy::atlas_default();
        cfg.seed = 0xDEAD_BEEF;
        let h = JournalHeader {
            config: cfg,
            fleet_digest: 42,
            plan_digest: 7,
        };
        let decoded = JournalHeader::decode(&h.encode()).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn journal_round_trips_rounds_and_ledger() {
        let path = tmp_path("roundtrip");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let mut ledger = CreditLedger::new(100);
        ledger.debit(9).unwrap();
        w.append_round(0, &store_of(&[sample(1, 10, 0, 12.5)]), 0, &ledger).unwrap();
        ledger.debit(9).unwrap();
        let mut lost = sample(2, 11, 3, 0.0);
        lost.received = 0;
        lost.min_ms = f32::INFINITY;
        lost.avg_ms = f32::INFINITY;
        w.append_round(1, &store_of(&[sample(1, 10, 3, 11.0), lost]), 0, &ledger)
            .unwrap();
        drop(w);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.header, header());
        assert_eq!(replayed.next_round, 2);
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.store.len(), 3);
        assert_eq!(replayed.store.samples()[0], sample(1, 10, 0, 12.5));
        // Loss markers survive bit-exactly.
        assert!(replayed.store.samples()[2].min_ms.is_infinite());
        assert!(!replayed.store.samples()[2].responded());
        assert_eq!(replayed.ledger.balance(), 82);
        assert_eq!(replayed.ledger.spent(), 18);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_a_typed_error() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        match replay(&path) {
            Err(JournalError::Truncated { offset: 0 }) => {}
            other => panic!("want Truncated, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"NOTAJOURNALFILE!").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadMagic)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let path = tmp_path("version");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            replay(&path),
            Err(JournalError::UnsupportedVersion { found: 99 })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_only_journal_recovers_at_round_zero() {
        let path = tmp_path("header-only");
        JournalWriter::create(&path, &header(), false).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.next_round, 0);
        assert!(replayed.store.is_empty());
        assert!(!replayed.torn_tail);
        assert!(!replayed.complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = tmp_path("torn");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let ledger = CreditLedger::new(5);
        w.append_round(0, &store_of(&[sample(1, 10, 0, 12.5)]), 0, &ledger).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();

        // Simulate a crash at every byte inside a second appended frame.
        let mut w2_path_bytes = full.clone();
        let mut extra = Vec::new();
        {
            let mut payload = vec![FRAME_ROUND];
            payload.extend_from_slice(&1u32.to_le_bytes());
            put_ledger(&mut payload, &ledger);
            put_samples(&mut payload, &store_of(&[sample(2, 4, 3, 9.0)]), 0);
            extra = frame(&payload);
        }
        for cut in 1..extra.len() {
            w2_path_bytes.truncate(full.len());
            w2_path_bytes.extend_from_slice(&extra[..cut]);
            std::fs::write(&path, &w2_path_bytes).unwrap();
            let replayed = replay(&path).unwrap_or_else(|e| {
                panic!("cut at {cut} bytes must recover, got {e}")
            });
            assert!(replayed.torn_tail, "cut at {cut}");
            assert_eq!(replayed.next_round, 1, "cut at {cut}");
            assert_eq!(replayed.store.len(), 1, "cut at {cut}");
            assert_eq!(replayed.valid_len, full.len() as u64, "cut at {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_fails_the_checksum_never_panics() {
        let path = tmp_path("flip");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let ledger = CreditLedger::new(5);
        w.append_round(0, &store_of(&[sample(1, 10, 0, 12.5)]), 0, &ledger).unwrap();
        drop(w);
        let pristine = std::fs::read(&path).unwrap();
        // Flip one bit in every payload byte position of the round frame
        // (skipping the frame's own length/CRC prefix, whose damage shows
        // up as either checksum or framing errors; the point is: typed
        // errors, no panics, no silent acceptance).
        let mut accepted = 0usize;
        for pos in 12..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            match replay(&path) {
                Ok(r) => {
                    // A flip in the *length* prefix can masquerade as a
                    // torn tail (the declared length overruns EOF) —
                    // that is a safe, data-preserving outcome.
                    assert!(r.torn_tail, "flip at {pos} silently accepted");
                    accepted += 1;
                }
                Err(
                    JournalError::ChecksumMismatch { .. }
                    | JournalError::Corrupt { .. }
                    | JournalError::BadMagic
                    | JournalError::UnsupportedVersion { .. }
                    | JournalError::MissingHeader,
                ) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other}"),
            }
        }
        assert!(accepted < pristine.len() - 12, "flips must not all pass");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_order_round_is_corrupt() {
        let path = tmp_path("order");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let ledger = CreditLedger::new(5);
        w.append_round(1, &store_of(&[sample(1, 10, 0, 12.5)]), 0, &ledger).unwrap();
        drop(w);
        assert!(matches!(
            replay(&path),
            Err(JournalError::Corrupt {
                what: "round frame out of order",
                ..
            })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_and_replays_identically() {
        let path = tmp_path("compact");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let mut ledger = CreditLedger::new(1000);
        let mut store = ResultStore::new();
        for round in 0..10u32 {
            ledger.debit(3).unwrap();
            let s = sample(round, 1, u64::from(round) * 3, 10.0 + round as f32);
            store.push(s);
            w.append_round(round, &store_of(&[s]), 0, &ledger).unwrap();
        }
        let before = replay(&path).unwrap();
        let uncompacted_len = std::fs::metadata(&path).unwrap().len();
        w.checkpoint(10, &store, &ledger).unwrap();
        drop(w);
        let compacted_len = std::fs::metadata(&path).unwrap().len();
        assert!(
            compacted_len < uncompacted_len + 8 + 1 + 4 + 24 + 8,
            "compaction must strip the per-round framing ({uncompacted_len} -> {compacted_len})"
        );
        let after = replay(&path).unwrap();
        assert_eq!(after.next_round, 10);
        assert_eq!(after.store.samples(), before.store.samples());
        assert_eq!(after.ledger.balance(), before.ledger.balance());
        assert_eq!(after.ledger.spent(), before.ledger.spent());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_then_crash_before_truncate_still_replays() {
        // Reconstruct the exact on-disk state between checkpoint()'s
        // append and its compaction rename: full journal + checkpoint
        // frame at the tail.
        let path = tmp_path("precompact");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let mut ledger = CreditLedger::new(1000);
        let mut store = ResultStore::new();
        for round in 0..4u32 {
            ledger.debit(3).unwrap();
            let s = sample(round, 1, u64::from(round) * 3, 10.0);
            store.push(s);
            w.append_round(round, &store_of(&[s]), 0, &ledger).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let mut payload = vec![FRAME_CHECKPOINT];
        payload.extend_from_slice(&4u32.to_le_bytes());
        put_ledger(&mut payload, &ledger);
        put_samples(&mut payload, &store, 0);
        bytes.extend_from_slice(&frame(&payload));
        std::fs::write(&path, &bytes).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.next_round, 4);
        assert_eq!(replayed.store.samples(), store.samples());
        assert_eq!(replayed.ledger.spent(), 12);
        assert!(!replayed.torn_tail);

        // And with further rounds after the un-compacted checkpoint.
        let mut payload = vec![FRAME_ROUND];
        payload.extend_from_slice(&4u32.to_le_bytes());
        put_ledger(&mut payload, &ledger);
        put_samples(&mut payload, &store_of(&[sample(9, 9, 12, 5.0)]), 0);
        bytes.extend_from_slice(&frame(&payload));
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.next_round, 5);
        assert_eq!(replayed.store.len(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_append_truncates_the_torn_tail() {
        let path = tmp_path("truncate");
        let mut w = JournalWriter::create(&path, &header(), false).unwrap();
        let ledger = CreditLedger::new(5);
        w.append_round(0, &store_of(&[sample(1, 10, 0, 12.5)]), 0, &ledger).unwrap();
        drop(w);
        let valid = std::fs::metadata(&path).unwrap().len();
        // Torn garbage at the tail…
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.torn_tail);
        // …is cut off on reopen, and appends continue cleanly.
        let mut w = JournalWriter::open_append(&path, &replayed, false).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);
        w.append_round(1, &store_of(&[sample(2, 4, 3, 8.0)]), 0, &ledger).unwrap();
        w.sync().unwrap();
        drop(w);
        let replayed = replay(&path).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.next_round, 2);
        assert_eq!(replayed.store.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_primitives_fail_soft() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u64().is_err(), "short read errors instead of panicking");
        let mut out = Vec::new();
        put_string(&mut out, "héllo");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }
}
