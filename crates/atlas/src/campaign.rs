//! The measurement campaign: the nine-month, three-hourly ping schedule.
//!
//! Rounds are driven by the discrete-event queue; within a round every
//! online probe pings each of its targets. Randomness is keyed by
//! `(probe, round)` so results are independent of execution order —
//! which is what makes [`Campaign::run_parallel`] bit-identical to the
//! sequential run.

use std::path::PathBuf;

use crossbeam::thread;
use shears_netsim::access::AccessLink;
use shears_netsim::fault::{FaultConfig, FaultPlan};
use shears_netsim::ping::{PingConfig, PingProber};
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::stochastic::SimRng;
use shears_netsim::tcp::{TcpConfig, TcpProber};
use shears_netsim::{EventQueue, RouteTable, SimTime};

use crate::availability::OutageSchedule;
use crate::credits::{CreditError, CreditLedger};
use crate::journal::{self, JournalError, JournalHeader, JournalWriter};
use crate::measurement::MeasurementType;
use crate::platform::Platform;
use crate::probe::Probe;
use crate::recovery::RetryPolicy;
use crate::store::{ResultStore, RttSample};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Number of measurement rounds (the paper: 9 months × 8/day ≈ 2160;
    /// its public dataset holds 3.2 M samples ≈ 200 full-fleet rounds).
    pub rounds: u32,
    /// Round interval (paper: 3 h).
    pub interval: SimTime,
    /// Packets per ping (paper/Atlas default: 3).
    pub packets: u32,
    /// Same-continent targets per probe.
    pub targets_per_probe: usize,
    /// Adjacent-continent targets for Africa/LatAm probes.
    pub adjacent_targets: usize,
    /// Master seed (keyed per probe × round).
    pub seed: u64,
    /// Credit grant; [`CampaignConfig::credits_needed`] credits are
    /// required for a full run.
    pub credits: u64,
    /// Availability model: `false` = per-round Bernoulli at the probe's
    /// stability (fast, memoryless); `true` = episode churn via
    /// [`OutageSchedule`] — probes disappear for days and return, as on
    /// the real platform.
    pub churn: bool,
    /// Probe type: ICMP ping (the paper's method) or TCP connect-time
    /// probing (§5's planned extension). TCP rounds store the connect
    /// time as the sample's RTT with one "packet" per round.
    pub kind: MeasurementType,
    /// Fault injection: link cuts, loss/latency bursts and DC blackouts
    /// drawn from keyed streams off the campaign seed. The default
    /// ([`FaultConfig::none`]) disables the machinery entirely.
    pub faults: FaultConfig,
    /// Recovery policy for failed measurements. The default
    /// ([`RetryPolicy::none`]) performs no retries and no refunds and is
    /// bit-identical to the pre-recovery campaign loop.
    pub recovery: RetryPolicy,
}

impl CampaignConfig {
    /// The paper-scale default: 3.2 M-ish samples on the full fleet.
    pub fn paper_scale() -> Self {
        Self {
            rounds: 200,
            interval: SimTime::from_hours(3),
            packets: 3,
            targets_per_probe: 5,
            adjacent_targets: 3,
            seed: 0x10DE,
            credits: u64::MAX,
            churn: false,
            kind: MeasurementType::Ping,
            faults: FaultConfig::none(),
            recovery: RetryPolicy::none(),
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            rounds: 10,
            ..Self::paper_scale()
        }
    }

    /// Derives a campaign configuration from an Atlas-style measurement
    /// definition: the spec's interval, packet count, probe type and
    /// duration (converted to rounds) override the defaults.
    pub fn from_spec(spec: &crate::measurement::MeasurementSpec) -> Self {
        Self {
            rounds: spec.rounds().min(u64::from(u32::MAX)) as u32,
            interval: spec.interval,
            packets: spec.packets,
            kind: spec.kind,
            ..Self::paper_scale()
        }
    }

    /// Upper bound on the credits a full run can spend (each retry is a
    /// fresh debit, so the bound scales with the retry budget).
    pub fn credits_needed(&self, probes: usize, targets_per_probe_max: usize) -> u64 {
        self.rounds as u64
            * probes as u64
            * targets_per_probe_max as u64
            * CreditLedger::ping_cost(self.packets)
            * u64::from(self.recovery.max_retries + 1)
    }
}

/// A campaign bound to a platform.
pub struct Campaign<'p> {
    platform: &'p Platform,
    cfg: CampaignConfig,
}

/// Internal round event payload.
struct RoundEvent {
    round: u32,
}

/// The per-worker prober, chosen by the campaign's measurement type.
/// Every worker reads routes from the campaign's shared [`RouteTable`],
/// so no shard ever re-runs Dijkstra or clones a path.
enum RoundProber<'t> {
    Ping(PingProber<'t>),
    Tcp(TcpProber<'t>),
}

impl<'t> RoundProber<'t> {
    /// With a fault plan the prober routes through the plan's link-cut
    /// epochs (the dynamic path); otherwise it reads the shared table.
    fn new(
        platform: &'t Platform,
        kind: MeasurementType,
        table: &'t RouteTable,
        faults: Option<&'t FaultPlan>,
    ) -> Self {
        match (kind, faults) {
            (MeasurementType::Ping, None) => {
                RoundProber::Ping(PingProber::with_table(platform.topology(), table))
            }
            (MeasurementType::Ping, Some(plan)) => {
                RoundProber::Ping(PingProber::with_faults(platform.topology(), plan))
            }
            (MeasurementType::TcpConnect, None) => {
                RoundProber::Tcp(TcpProber::with_table(platform.topology(), table))
            }
            (MeasurementType::TcpConnect, Some(plan)) => {
                RoundProber::Tcp(TcpProber::with_faults(platform.topology(), plan))
            }
        }
    }
}

impl<'p> Campaign<'p> {
    /// Creates a campaign over the platform.
    pub fn new(platform: &'p Platform, cfg: CampaignConfig) -> Self {
        Self { platform, cfg }
    }

    /// The targets of each probe, resolved once (they do not change
    /// between rounds).
    fn target_table(&self) -> Vec<Vec<u16>> {
        self.platform
            .probes()
            .iter()
            .map(|p| {
                self.platform
                    .targets_for(p, self.cfg.targets_per_probe, self.cfg.adjacent_targets)
            })
            .collect()
    }

    /// Resolves the shared route table for the campaign's probe→DC
    /// pairs: one shortest-path-tree search per probe, fanned out over
    /// `threads` workers, assembled deterministically.
    fn route_table(&self, targets: &[Vec<u16>], threads: usize) -> RouteTable {
        let wants: Vec<_> = self
            .platform
            .probes()
            .iter()
            .map(|p| {
                (
                    self.platform.probe_node(p.id),
                    targets[p.id.index()]
                        .iter()
                        .map(|&region| self.platform.dc_node(region as usize))
                        .collect(),
                )
            })
            .collect();
        RouteTable::build(self.platform.topology(), &wants, threads)
    }

    /// Exact upper bound on the samples the given probes can produce
    /// over the whole campaign (used to pre-size result stores).
    fn sample_bound(&self, targets: &[Vec<u16>], probes: &[Probe]) -> usize {
        probes
            .iter()
            .map(|p| targets[p.id.index()].len())
            .sum::<usize>()
            * self.cfg.rounds as usize
    }

    /// A probe's schedule offset within the round: real campaigns spread
    /// probes over the interval to avoid thundering herds. Deterministic
    /// per probe.
    fn probe_offset(&self, probe: &Probe) -> SimTime {
        let spread_ns = self.cfg.interval.as_nanos() / 2;
        if spread_ns == 0 {
            return SimTime::ZERO;
        }
        let h = (u64::from(probe.id.0))
            .wrapping_mul(0x9E3779B97F4A7C15)
            .rotate_left(17);
        SimTime::from_nanos(h % spread_ns)
    }

    /// Materialises the fault schedule over the campaign window, or
    /// `None` when fault injection is disabled. Deterministic in
    /// `(topology, faults config, seed)` — `run` and `run_parallel`
    /// build identical plans, and analysis code can call this after a
    /// run to reconstruct exactly the plan the measurements saw.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if !self.cfg.faults.enabled {
            return None;
        }
        let horizon = SimTime::from_nanos(
            self.cfg.interval.as_nanos() * u64::from(self.cfg.rounds) + 1,
        );
        Some(FaultPlan::generate(
            self.platform.topology(),
            &self.cfg.faults,
            self.cfg.seed,
            horizon,
        ))
    }

    /// Precomputes the per-probe outage schedules when churn is on.
    fn outage_table(&self, master: &SimRng) -> Option<Vec<OutageSchedule>> {
        if !self.cfg.churn {
            return None;
        }
        let horizon = SimTime::from_nanos(
            self.cfg.interval.as_nanos() * u64::from(self.cfg.rounds) + 1,
        );
        Some(
            self.platform
                .probes()
                .iter()
                .map(|p| {
                    // A dedicated keyed stream per probe, disjoint from
                    // the per-round streams (which never use u64::MAX).
                    let mut rng = master.fork_keyed(u64::from(p.id.0), u64::MAX);
                    OutageSchedule::generate(&mut rng, p.stability, horizon)
                })
                .collect(),
        )
    }

    /// Measures one probe in one round, appending its samples.
    #[allow(clippy::too_many_arguments)]
    fn run_probe_round(
        &self,
        prober: &mut RoundProber<'_>,
        master: &SimRng,
        targets: &[u16],
        outages: Option<&[OutageSchedule]>,
        probe: &Probe,
        round: u32,
        store: &mut ResultStore,
        ledger: &mut CreditLedger,
    ) -> Result<(), CreditError> {
        let mut rng = master.fork_keyed(u64::from(probe.id.0), u64::from(round));
        let at = SimTime::from_nanos(
            self.cfg.interval.as_nanos() * u64::from(round) + self.probe_offset(probe).as_nanos(),
        );
        // Probe availability: episode churn when enabled, otherwise a
        // memoryless per-round draw at the probe's stability.
        let up = match outages {
            Some(schedules) => schedules[probe.id.index()].is_up(at),
            None => rng.chance(probe.stability),
        };
        if !up {
            return Ok(());
        }
        let ping_cfg = PingConfig {
            packets: self.cfg.packets,
            ..PingConfig::default()
        };
        let policy = &self.cfg.recovery;
        let cost = CreditLedger::ping_cost(self.cfg.packets);
        for &region in targets {
            let from = self.platform.probe_node(probe.id);
            let to = self.platform.dc_node(region as usize);
            // Bounded-retry measurement loop. Each attempt is debited like
            // a fresh measurement; retries fire at backed-off instants but
            // the recorded sample keeps the scheduled round time, and its
            // `sent` field accumulates every attempt's packets so the
            // retry count survives into the store. A disconnected pair
            // (link cuts can sever it outright) degrades to a lost sample
            // instead of aborting the round.
            let mut schedule = policy.schedule(at);
            let mut attempts = 0u32;
            let mut ping_ok: Option<shears_netsim::ping::PingOutcome> = None;
            let mut tcp_ok: Option<shears_netsim::tcp::TcpOutcome> = None;
            loop {
                ledger.debit(cost)?;
                attempts += 1;
                let when = schedule.attempt_at();
                let succeeded = match prober {
                    RoundProber::Ping(prober) => {
                        let outcome = prober.ping(
                            from,
                            to,
                            Some(self.access_of(probe)),
                            DiurnalLoad::residential(),
                            when,
                            &ping_cfg,
                            &mut rng,
                        );
                        let ok = outcome.as_ref().is_some_and(|o| o.received > 0);
                        if ok || ping_ok.is_none() {
                            ping_ok = outcome;
                        }
                        ok
                    }
                    RoundProber::Tcp(prober) => {
                        let outcome = prober.connect(
                            from,
                            to,
                            Some(self.access_of(probe)),
                            DiurnalLoad::residential(),
                            when,
                            &TcpConfig::default(),
                            &mut rng,
                        );
                        let ok = outcome.as_ref().is_some_and(|o| o.established());
                        if ok || tcp_ok.is_none() {
                            tcp_ok = outcome;
                        }
                        ok
                    }
                };
                if succeeded || !schedule.next(policy, &mut rng) {
                    if !succeeded && policy.refund_failures {
                        // Keyed by (probe, target, round) so a resumed
                        // campaign can never refund the same failed
                        // measurement twice.
                        let key = (u64::from(probe.id.0) << 16) | u64::from(region);
                        ledger.refund_once(
                            key,
                            round,
                            cost.saturating_mul(u64::from(attempts)),
                        );
                    }
                    break;
                }
            }
            let sample = match prober {
                RoundProber::Ping(_) => {
                    let (min_ms, avg_ms, received) = ping_ok.map_or(
                        (f32::INFINITY, f32::INFINITY, 0u8),
                        |o| {
                            (
                                o.min_ms().map_or(f32::INFINITY, |v| v as f32),
                                o.avg_ms().map_or(f32::INFINITY, |v| v as f32),
                                o.received.min(u32::from(u8::MAX)) as u8,
                            )
                        },
                    );
                    RttSample {
                        probe: probe.id,
                        region,
                        at,
                        min_ms,
                        avg_ms,
                        sent: (self.cfg.packets.saturating_mul(attempts))
                            .min(u32::from(u8::MAX)) as u8,
                        received,
                    }
                }
                RoundProber::Tcp(_) => {
                    let connect = tcp_ok.as_ref().and_then(|o| o.connect_ms);
                    let ms = connect.map_or(f32::INFINITY, |v| v as f32);
                    RttSample {
                        probe: probe.id,
                        region,
                        at,
                        min_ms: ms,
                        avg_ms: ms,
                        sent: attempts.min(u32::from(u8::MAX)) as u8,
                        received: u8::from(connect.is_some()),
                    }
                }
            };
            store.push(sample);
        }
        Ok(())
    }

    fn access_of(&self, probe: &Probe) -> AccessLink {
        probe.access
    }

    /// Runs the campaign sequentially, driven by the event queue. Routes
    /// are resolved once into a [`RouteTable`] (built in parallel — the
    /// build is embarrassingly parallel even when the measurement loop
    /// is not) before the first round fires.
    pub fn run(&self) -> Result<ResultStore, CreditError> {
        let targets = self.target_table();
        let build_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let table = self.route_table(&targets, build_threads);
        let plan = self.fault_plan();
        let master = SimRng::new(self.cfg.seed);
        let outages = self.outage_table(&master);
        let mut ledger = CreditLedger::new(self.cfg.credits);
        let mut store =
            ResultStore::with_capacity(self.sample_bound(&targets, self.platform.probes()));
        let mut prober = RoundProber::new(self.platform, self.cfg.kind, &table, plan.as_ref());
        let mut queue: EventQueue<RoundEvent> = EventQueue::new();
        for round in 0..self.cfg.rounds {
            queue.schedule(
                SimTime::from_nanos(self.cfg.interval.as_nanos() * u64::from(round)),
                RoundEvent { round },
            );
        }
        let mut failure = None;
        while let Some(ev) = queue.pop() {
            let round = ev.payload.round;
            for probe in self.platform.probes() {
                if let Err(e) = self.run_probe_round(
                    &mut prober,
                    &master,
                    &targets[probe.id.index()],
                    outages.as_deref(),
                    probe,
                    round,
                    &mut store,
                    &mut ledger,
                ) {
                    failure = Some(e);
                    break;
                }
            }
            if failure.is_some() {
                break;
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(store),
        }
    }

    /// Runs the campaign sharded over `threads` worker threads. Probes
    /// are partitioned contiguously; per-`(probe, round)` keyed RNG
    /// makes each sample identical to the sequential run (the store is
    /// ordered probe-major instead of round-major; analysis is
    /// order-insensitive).
    ///
    /// Credit accounting is per-shard against an even split of the
    /// grant.
    pub fn run_parallel(&self, threads: usize) -> Result<ResultStore, CreditError> {
        let threads = threads.max(1);
        let targets = self.target_table();
        // One table for the whole run, shared read-only by every shard.
        let table = self.route_table(&targets, threads);
        // One fault plan for the whole run: generation is a pure function
        // of (topology, config, seed), so this is the same plan `run`
        // builds — each shard consults it read-only.
        let plan = self.fault_plan();
        let outage_master = SimRng::new(self.cfg.seed);
        let outages = self.outage_table(&outage_master);
        let probes = self.platform.probes();
        let chunk = probes.len().div_ceil(threads);
        let results = thread::scope(|s| {
            let mut handles = Vec::new();
            for shard in probes.chunks(chunk.max(1)) {
                let targets = &targets;
                let outages = &outages;
                let table = &table;
                let plan = &plan;
                handles.push(s.spawn(move |_| -> Result<ResultStore, CreditError> {
                    let master = SimRng::new(self.cfg.seed);
                    let mut ledger = CreditLedger::new(self.cfg.credits / threads as u64);
                    let mut store =
                        ResultStore::with_capacity(self.sample_bound(targets, shard));
                    let mut prober =
                        RoundProber::new(self.platform, self.cfg.kind, table, plan.as_ref());
                    for round in 0..self.cfg.rounds {
                        for probe in shard {
                            self.run_probe_round(
                                &mut prober,
                                &master,
                                &targets[probe.id.index()],
                                outages.as_deref(),
                                probe,
                                round,
                                &mut store,
                                &mut ledger,
                            )?;
                        }
                    }
                    Ok(store)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign shard panicked"))
                .collect::<Vec<_>>()
        })
        .expect("campaign scope");
        let mut merged = ResultStore::with_capacity(self.sample_bound(&targets, probes));
        for r in results {
            merged.merge(r?);
        }
        Ok(merged)
    }

    /// The journal header this campaign would write: the full config
    /// plus the fleet/target and fault-plan digests a resume validates
    /// against.
    pub fn journal_header(&self) -> JournalHeader {
        let targets = self.target_table();
        JournalHeader {
            config: self.cfg,
            fleet_digest: journal::fleet_digest(self.platform.probes(), &targets),
            plan_digest: self.fault_plan().map_or(0, |p| p.digest()),
        }
    }

    /// Runs the campaign with crash-safe durability: every completed
    /// round is appended to the write-ahead journal at `durability.path`
    /// before the next round starts, with periodic compacted
    /// checkpoints. If the process dies at any point,
    /// [`Campaign::resume`] picks up from the last durable round and the
    /// final results are bit-identical to an uninterrupted run.
    ///
    /// Durable rounds are executed behind a round barrier: probes are
    /// sharded over `threads` workers and each round's shard outputs are
    /// merged in shard order, so the store is round-major in probe order
    /// — byte-identical for every thread count (and to `threads == 1`).
    /// Credit enforcement happens at round granularity (the whole
    /// round's gross spend is debited at the barrier), unlike the
    /// per-attempt debits of [`Campaign::run`].
    pub fn run_durable(
        &self,
        threads: usize,
        durability: &DurabilityConfig,
    ) -> Result<DurableOutcome, CampaignError> {
        let mut journal =
            JournalWriter::create(&durability.path, &self.journal_header(), durability.fsync)?;
        let targets = self.target_table();
        let mut store =
            ResultStore::with_capacity(self.sample_bound(&targets, self.platform.probes()));
        let mut ledger = CreditLedger::new(self.cfg.credits);
        self.run_rounds_durable(
            0,
            threads,
            &targets,
            &mut store,
            &mut ledger,
            &mut journal,
            durability,
        )?;
        Ok(DurableOutcome { store, ledger })
    }

    /// Resumes a crashed (or cleanly stopped) durable campaign from its
    /// journal: replays the durable rounds, validates that `platform`
    /// still digests to the fleet/targets and fault plan the journal was
    /// written against, truncates any torn tail frame, and re-runs the
    /// remaining rounds. The per-`(probe, round)` keyed RNG streams make
    /// the continuation independent of where the crash fell: the result
    /// is bit-identical to a run that never crashed.
    pub fn resume(
        platform: &'p Platform,
        durability: &DurabilityConfig,
        threads: usize,
    ) -> Result<DurableOutcome, CampaignError> {
        let replay = journal::replay(&durability.path)?;
        let campaign = Campaign::new(platform, replay.header.config);
        let expected = campaign.journal_header();
        if expected.fleet_digest != replay.header.fleet_digest {
            return Err(JournalError::ConfigMismatch {
                what: "fleet/target digest",
            }
            .into());
        }
        if expected.plan_digest != replay.header.plan_digest {
            return Err(JournalError::ConfigMismatch {
                what: "fault-plan digest",
            }
            .into());
        }
        let mut journal = JournalWriter::open_append(&durability.path, &replay, durability.fsync)?;
        let targets = campaign.target_table();
        let mut store = replay.store;
        let mut ledger = replay.ledger;
        campaign.run_rounds_durable(
            replay.next_round,
            threads,
            &targets,
            &mut store,
            &mut ledger,
            &mut journal,
            durability,
        )?;
        Ok(DurableOutcome { store, ledger })
    }

    /// One shard's slice of one round, measured against a scratch ledger
    /// (campaign credits are settled by the caller at the round
    /// barrier). Returns the shard's samples plus its gross spend and
    /// refund for the round.
    fn run_shard_round(
        &self,
        prober: &mut RoundProber<'_>,
        shard: &[Probe],
        targets: &[Vec<u16>],
        outages: Option<&[OutageSchedule]>,
        round: u32,
    ) -> (ResultStore, u64, u64) {
        let master = SimRng::new(self.cfg.seed);
        let mut scratch = CreditLedger::new(u64::MAX);
        let mut store = ResultStore::new();
        for probe in shard {
            self.run_probe_round(
                prober,
                &master,
                &targets[probe.id.index()],
                outages,
                probe,
                round,
                &mut store,
                &mut scratch,
            )
            .expect("scratch ledger cannot run dry");
        }
        // `spent()` is net of refunds; reconstruct the gross figure so
        // the caller can mirror the sequential debit-then-refund order.
        (
            store,
            scratch.spent() + scratch.refunded(),
            scratch.refunded(),
        )
    }

    /// The durable round loop shared by `run_durable` and `resume`:
    /// barriered rounds, shard-order merge, journal append after every
    /// round, periodic checkpoint compaction.
    #[allow(clippy::too_many_arguments)]
    fn run_rounds_durable(
        &self,
        start: u32,
        threads: usize,
        targets: &[Vec<u16>],
        store: &mut ResultStore,
        ledger: &mut CreditLedger,
        journal: &mut JournalWriter,
        durability: &DurabilityConfig,
    ) -> Result<(), CampaignError> {
        let threads = threads.max(1);
        let table = self.route_table(targets, threads);
        let plan = self.fault_plan();
        let master = SimRng::new(self.cfg.seed);
        let outages = self.outage_table(&master);
        let probes = self.platform.probes();
        let chunk = probes.len().div_ceil(threads).max(1);
        let shards: Vec<&[Probe]> = probes.chunks(chunk).collect();
        // Probers persist across rounds so fault-epoch routers stay warm
        // instead of re-running Dijkstra every round.
        let mut probers: Vec<RoundProber<'_>> = shards
            .iter()
            .map(|_| RoundProber::new(self.platform, self.cfg.kind, &table, plan.as_ref()))
            .collect();
        for round in start..self.cfg.rounds {
            let round_start = store.len();
            let shard_results: Vec<(ResultStore, u64, u64)> = if shards.len() == 1 {
                vec![self.run_shard_round(
                    &mut probers[0],
                    shards[0],
                    targets,
                    outages.as_deref(),
                    round,
                )]
            } else {
                thread::scope(|s| {
                    let mut handles = Vec::new();
                    for (shard, prober) in shards.iter().zip(probers.iter_mut()) {
                        let outages = &outages;
                        handles.push(s.spawn(move |_| {
                            self.run_shard_round(prober, shard, targets, outages.as_deref(), round)
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("durable campaign shard panicked"))
                        .collect()
                })
                .expect("campaign scope")
            };
            // Settle credits at the barrier, mirroring the sequential
            // debit-then-refund order so the counters match `run`'s.
            let gross: u64 = shard_results.iter().map(|(_, s, _)| s).sum();
            let refunds: u64 = shard_results.iter().map(|(_, _, r)| r).sum();
            ledger.debit(gross).map_err(CampaignError::Credits)?;
            ledger.refund(refunds);
            for (shard_store, _, _) in shard_results {
                store.merge(shard_store);
            }
            // The round becomes durable here: one framed append, then
            // (optionally) a compacting checkpoint.
            journal.append_round(round, store, round_start, ledger)?;
            let done = round + 1;
            if durability.checkpoint_every != 0
                && done % durability.checkpoint_every == 0
                && done < self.cfg.rounds
            {
                journal.checkpoint(done, store, ledger)?;
            }
            if durability.crash_after_round == Some(round) {
                return Err(CampaignError::SimulatedCrash { round });
            }
        }
        journal.sync()?;
        Ok(())
    }

    /// The deterministic contiguous partition of the probe fleet into
    /// (at most) `count` shards: the exact `chunks(ceil(n / count))`
    /// split the durable round barrier uses, expressed as probe-index
    /// ranges. Merging per-round shard outputs in this order yields a
    /// store bit-identical to [`Campaign::run`], which is the invariant
    /// the distributed coordinator builds on. When `count` exceeds what
    /// the fleet can fill, fewer (never empty) shards are returned —
    /// callers must treat `shard_ranges(count).len()` as the real shard
    /// count.
    pub fn shard_ranges(&self, count: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.platform.probes().len();
        let chunk = n.div_ceil(count.max(1)).max(1);
        (0..n).step_by(chunk).map(|s| s..(s + chunk).min(n)).collect()
    }

    /// Builds the execution context for shard `shard` of a `count`-way
    /// partition (see [`Campaign::shard_ranges`]). The context resolves
    /// the target table, fault plan, and churn outages eagerly; the
    /// shard's route table is built lazily on the first
    /// [`Campaign::run_shard`] call, so a coordinator that only ever
    /// synthesises lost rounds never pays for routing.
    ///
    /// # Panics
    /// Panics when `shard` is out of range for the partition.
    pub fn shard_context(&self, shard: usize, count: usize) -> ShardContext {
        let ranges = self.shard_ranges(count);
        let range = ranges[shard].clone();
        let master = SimRng::new(self.cfg.seed);
        ShardContext {
            shard: shard as u32,
            count: ranges.len() as u32,
            range,
            targets: self.target_table(),
            plan: self.fault_plan(),
            outages: self.outage_table(&master),
            table: None,
        }
    }

    /// The journal header a worker writes at the head of its per-shard
    /// WAL: the campaign config with the fleet-digest slot holding the
    /// [`journal::shard_digest`] of this shard, so a shard WAL can only
    /// ever be resumed by a worker holding the same shard of the same
    /// partition of the same fleet.
    pub fn shard_header(&self, ctx: &ShardContext) -> JournalHeader {
        let probes = &self.platform.probes()[ctx.range.clone()];
        JournalHeader {
            config: self.cfg,
            fleet_digest: journal::shard_digest(ctx.shard, ctx.count, probes, &ctx.targets),
            plan_digest: self.fault_plan().map_or(0, |p| p.digest()),
        }
    }

    /// One shard's slice of one round — the public entry point for
    /// out-of-process workers. Returns the shard's samples in probe
    /// order plus its gross credit spend and refund for the round,
    /// exactly what [`Campaign::run_durable`]'s in-process shards feed
    /// the round barrier: merging every shard's output in shard order
    /// and settling `debit(Σgross)` then `refund(Σrefund)` reproduces
    /// the sequential run bit for bit.
    pub fn run_shard(&self, ctx: &mut ShardContext, round: u32) -> (ResultStore, u64, u64) {
        if ctx.table.is_none() {
            ctx.table = Some(self.shard_route_table(ctx));
        }
        let table = ctx.table.as_ref().expect("shard route table just built");
        let mut prober = RoundProber::new(self.platform, self.cfg.kind, table, ctx.plan.as_ref());
        let shard = &self.platform.probes()[ctx.range.clone()];
        self.run_shard_round(&mut prober, shard, &ctx.targets, ctx.outages.as_deref(), round)
    }

    /// Synthesises the samples a lost shard-round *would have
    /// scheduled*, every one marked lost (`min/avg = ∞`,
    /// `sent = received = 0`). The availability draw consumes the same
    /// keyed-stream prefix as a real round, so exactly the probes that
    /// would have measured appear, at their scheduled timestamps.
    /// Degraded-completion coordinators merge these in place of a shard
    /// whose workers all died: the loss is attributed in the store
    /// (mirroring how fault-injected campaigns record lost samples)
    /// without shifting any other shard's rows. `sent = 0`
    /// distinguishes "never measured" from a measured-but-unanswered
    /// sample, whose `sent` counts its attempts.
    pub fn lost_shard_round(&self, ctx: &ShardContext, round: u32) -> ResultStore {
        let master = SimRng::new(self.cfg.seed);
        let mut store = ResultStore::new();
        for probe in &self.platform.probes()[ctx.range.clone()] {
            let mut rng = master.fork_keyed(u64::from(probe.id.0), u64::from(round));
            let at = SimTime::from_nanos(
                self.cfg.interval.as_nanos() * u64::from(round)
                    + self.probe_offset(probe).as_nanos(),
            );
            let up = match ctx.outages.as_deref() {
                Some(schedules) => schedules[probe.id.index()].is_up(at),
                None => rng.chance(probe.stability),
            };
            if !up {
                continue;
            }
            for &region in &ctx.targets[probe.id.index()] {
                store.push(RttSample {
                    probe: probe.id,
                    region,
                    at,
                    min_ms: f32::INFINITY,
                    avg_ms: f32::INFINITY,
                    sent: 0,
                    received: 0,
                });
            }
        }
        store
    }

    /// Routes for exactly the shard's probe→DC pairs (the table is
    /// keyed by node pair, so a subset build answers every lookup the
    /// shard will make while skipping the rest of the fleet's searches).
    fn shard_route_table(&self, ctx: &ShardContext) -> RouteTable {
        let wants: Vec<_> = self.platform.probes()[ctx.range.clone()]
            .iter()
            .map(|p| {
                (
                    self.platform.probe_node(p.id),
                    ctx.targets[p.id.index()]
                        .iter()
                        .map(|&region| self.platform.dc_node(region as usize))
                        .collect(),
                )
            })
            .collect();
        RouteTable::build(self.platform.topology(), &wants, 1)
    }
}

/// Everything a worker needs to execute one shard of a campaign round
/// by round: the shard's probe range and partition coordinates, the
/// resolved target table, the materialised fault plan and churn
/// outages, and (built lazily) the shard-restricted route table. Built
/// once per assignment via [`Campaign::shard_context`], then fed to
/// [`Campaign::run_shard`] for each round.
pub struct ShardContext {
    shard: u32,
    count: u32,
    range: std::ops::Range<usize>,
    targets: Vec<Vec<u16>>,
    plan: Option<FaultPlan>,
    outages: Option<Vec<OutageSchedule>>,
    table: Option<RouteTable>,
}

impl ShardContext {
    /// The shard index within its partition.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The partition's (non-empty) shard count.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The probe-index range this shard covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }
}

/// Durability knobs for [`Campaign::run_durable`] / [`Campaign::resume`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Journal file path.
    pub path: PathBuf,
    /// Compact the journal (full-store checkpoint + truncation) every
    /// this many rounds; `0` disables checkpoints.
    pub checkpoint_every: u32,
    /// `fdatasync` after every append (durable against power loss, not
    /// just process crashes). Off by default: simulation workloads care
    /// about process faults.
    pub fsync: bool,
    /// Test hook: report a simulated crash *after* the given round has
    /// been journaled, leaving the file exactly as a real mid-campaign
    /// kill would.
    pub crash_after_round: Option<u32>,
}

impl DurabilityConfig {
    /// Journal at `path` with the default checkpoint cadence (64
    /// rounds), no per-append fsync, no simulated crash.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            checkpoint_every: 64,
            fsync: false,
            crash_after_round: None,
        }
    }
}

/// What a durable run hands back: the samples plus the settled ledger
/// (needed by resume-aware callers like the API service).
#[derive(Debug)]
pub struct DurableOutcome {
    /// Every sample of every round, round-major in probe order.
    pub store: ResultStore,
    /// The campaign ledger as of the last completed round.
    pub ledger: CreditLedger,
}

/// Why a durable campaign stopped.
#[derive(Debug)]
pub enum CampaignError {
    /// The credit grant ran out (round-granular in durable mode).
    Credits(CreditError),
    /// The journal could not be written, read, or trusted.
    Journal(JournalError),
    /// The [`DurabilityConfig::crash_after_round`] test hook fired.
    SimulatedCrash {
        /// The last round that was journaled before the simulated kill.
        round: u32,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Credits(e) => write!(f, "campaign stopped: {e}"),
            CampaignError::Journal(e) => write!(f, "campaign journal failed: {e}"),
            CampaignError::SimulatedCrash { round } => {
                write!(f, "simulated crash after round {round}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Credits(e) => Some(e),
            CampaignError::Journal(e) => Some(e),
            CampaignError::SimulatedCrash { .. } => None,
        }
    }
}

impl From<CreditError> for CampaignError {
    fn from(e: CreditError) -> Self {
        CampaignError::Credits(e)
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformConfig;
    use crate::probe::ProbeId;

    fn tiny_platform() -> Platform {
        Platform::build(&PlatformConfig {
            fleet: crate::fleet::FleetConfig {
                target_size: 60,
                seed: 5,
            },
            ..PlatformConfig::default()
        })
    }

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            rounds: 3,
            targets_per_probe: 2,
            adjacent_targets: 1,
            ..CampaignConfig::quick()
        }
    }

    #[test]
    fn produces_samples_for_online_probes() {
        let p = tiny_platform();
        let store = Campaign::new(&p, tiny_cfg()).run().unwrap();
        assert!(!store.is_empty());
        // Expected scale: probes × targets × rounds × stability ≈ 85 %.
        let max = p.probes().len() * 3 * 3;
        assert!(store.len() <= max);
        assert!(store.len() > max / 3);
        // Overwhelmingly responsive.
        assert!(store.response_rate() > 0.95, "{}", store.response_rate());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = tiny_platform();
        let a = Campaign::new(&p, tiny_cfg()).run().unwrap();
        let b = Campaign::new(&p, tiny_cfg()).run().unwrap();
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn parallel_matches_sequential_modulo_order() {
        let p = tiny_platform();
        let seq = Campaign::new(&p, tiny_cfg()).run().unwrap();
        let par = Campaign::new(&p, tiny_cfg()).run_parallel(4).unwrap();
        assert_eq!(seq.len(), par.len());
        let key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
        let mut a: Vec<_> = seq.samples().to_vec();
        let mut b: Vec<_> = par.samples().to_vec();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_out_of_credits() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            credits: 10,
            ..tiny_cfg()
        };
        let err = Campaign::new(&p, cfg).run().unwrap_err();
        matches!(err, CreditError::InsufficientCredits { .. });
    }

    #[test]
    fn credits_needed_bounds_actual_spend() {
        let p = tiny_platform();
        let cfg = tiny_cfg();
        let needed = cfg.credits_needed(p.probes().len(), cfg.targets_per_probe + cfg.adjacent_targets);
        let generous = CampaignConfig {
            credits: needed,
            ..cfg
        };
        assert!(Campaign::new(&p, generous).run().is_ok());
    }

    #[test]
    fn samples_are_timestamped_within_campaign_window() {
        let p = tiny_platform();
        let cfg = tiny_cfg();
        let store = Campaign::new(&p, cfg).run().unwrap();
        let end = SimTime::from_nanos(cfg.interval.as_nanos() * u64::from(cfg.rounds));
        for s in store.samples() {
            assert!(s.at < end);
        }
    }

    #[test]
    fn from_spec_maps_measurement_definitions() {
        let spec = crate::measurement::MeasurementSpec::paper_ping(
            7,
            3,
            SimTime::from_days(9),
        );
        let cfg = CampaignConfig::from_spec(&spec);
        assert_eq!(cfg.rounds, 9 * 8 + 1);
        assert_eq!(cfg.interval, SimTime::from_hours(3));
        assert_eq!(cfg.packets, 3);
        assert_eq!(cfg.kind, MeasurementType::Ping);
    }

    #[test]
    fn tcp_campaign_produces_connect_times() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            kind: MeasurementType::TcpConnect,
            ..tiny_cfg()
        };
        let store = Campaign::new(&p, cfg).run().unwrap();
        assert!(!store.is_empty());
        // TCP rounds carry exactly one attempt and min == avg.
        for s in store.samples() {
            assert_eq!(s.sent, 1);
            assert!(s.received <= 1);
            if s.responded() {
                assert_eq!(s.min_ms, s.avg_ms);
                assert!(s.min_ms > 0.0);
            }
        }
        // TCP connect medians sit at or above ping minima on the same
        // platform (no min-of-3 smoothing).
        let ping_store = Campaign::new(&p, tiny_cfg()).run().unwrap();
        let med = |st: &ResultStore| {
            let mut v: Vec<f32> = st
                .samples()
                .iter()
                .filter(|s| s.responded())
                .map(|s| s.min_ms)
                .collect();
            v.sort_by(f32::total_cmp);
            v[v.len() / 2]
        };
        assert!(med(&store) >= med(&ping_store) * 0.8);
    }

    #[test]
    fn churn_mode_produces_episodic_gaps() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            rounds: 24,
            churn: true,
            ..tiny_cfg()
        };
        let store = Campaign::new(&p, cfg).run().unwrap();
        assert!(!store.is_empty());
        // Episodic availability: some probe has a contiguous block of
        // missed rounds followed by a return (a memoryless model of the
        // same average would virtually never produce week-long gaps,
        // but with 3-hourly rounds over 3 days we check the weaker
        // episode property: per-probe round participation is bursty —
        // a probe that is up in round r is very likely up in r+1).
        let mut same_state = 0u32;
        let mut transitions = 0u32;
        for probe in p.probes() {
            let mut up_rounds = vec![false; cfg.rounds as usize];
            for s in store.by_probe(probe.id) {
                let round = (s.at.as_nanos() / cfg.interval.as_nanos()) as usize;
                if round < up_rounds.len() {
                    up_rounds[round] = true;
                }
            }
            for w in up_rounds.windows(2) {
                if w[0] == w[1] {
                    same_state += 1;
                } else {
                    transitions += 1;
                }
            }
        }
        let persistence = f64::from(same_state) / f64::from(same_state + transitions);
        assert!(
            persistence > 0.9,
            "availability should be strongly autocorrelated, got {persistence}"
        );
    }

    #[test]
    fn churn_mode_is_deterministic_and_parallel_safe() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            rounds: 6,
            churn: true,
            ..tiny_cfg()
        };
        let seq = Campaign::new(&p, cfg).run().unwrap();
        let par = Campaign::new(&p, cfg).run_parallel(3).unwrap();
        let key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
        let mut a: Vec<_> = seq.samples().to_vec();
        let mut b: Vec<_> = par.samples().to_vec();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn passthrough_fault_plan_reproduces_fault_free_samples_exactly() {
        // The tentpole invariant: an enabled-but-empty fault plan routes
        // through the dynamic fault path yet must not move a single draw.
        let p = tiny_platform();
        let clean = Campaign::new(&p, tiny_cfg()).run().unwrap();
        let cfg = CampaignConfig {
            faults: FaultConfig::passthrough(),
            ..tiny_cfg()
        };
        let faulty = Campaign::new(&p, cfg).run().unwrap();
        assert_eq!(clean.samples(), faulty.samples());
        // And the same through the parallel path.
        let faulty_par = Campaign::new(&p, cfg).run_parallel(4).unwrap();
        let key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
        let mut a: Vec<_> = clean.samples().to_vec();
        let mut b: Vec<_> = faulty_par.samples().to_vec();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_rounds_stay_well_formed_and_gappy() {
        // Heavy loss + recovery: every scheduled measurement must still
        // yield exactly one (possibly lost) sample, retries must show up
        // in `sent`, and losses must leave gaps rather than aborting.
        let p = tiny_platform();
        let mut faults = FaultConfig::lossy();
        faults.loss_bursts = 8;
        faults.loss_burst_mean_hours = 10_000.0;
        faults.loss_burst_extra = 0.9;
        let cfg = CampaignConfig {
            faults,
            recovery: RetryPolicy::atlas_default(),
            ..tiny_cfg()
        };
        let degraded = Campaign::new(&p, cfg).run().unwrap();
        let clean = Campaign::new(&p, tiny_cfg()).run().unwrap();
        assert_eq!(
            degraded.len(),
            clean.len(),
            "graceful degradation keeps one sample per scheduled measurement"
        );
        assert!(
            degraded.response_rate() < clean.response_rate(),
            "a 90% extra-loss burst must depress the response rate"
        );
        assert!(
            degraded
                .samples()
                .iter()
                .any(|s| u32::from(s.sent) > cfg.packets),
            "some measurements must have retried"
        );
        for s in degraded.samples() {
            assert_eq!(u32::from(s.sent) % cfg.packets, 0, "whole attempts only");
            assert!(u32::from(s.sent) <= cfg.packets * (cfg.recovery.max_retries + 1));
        }
    }

    #[test]
    fn chaos_faults_are_deterministic_across_run_modes() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            faults: FaultConfig::chaos(),
            recovery: RetryPolicy::atlas_default(),
            ..tiny_cfg()
        };
        let seq = Campaign::new(&p, cfg).run().unwrap();
        let par = Campaign::new(&p, cfg).run_parallel(3).unwrap();
        let key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
        let mut a: Vec<_> = seq.samples().to_vec();
        let mut b: Vec<_> = par.samples().to_vec();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    fn tmp_journal(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "shears-campaign-{}-{tag}-{n}.journal",
            std::process::id()
        ))
    }

    #[test]
    fn durable_run_matches_plain_run_bit_for_bit() {
        let p = tiny_platform();
        let seq = Campaign::new(&p, tiny_cfg()).run().unwrap();
        for threads in [1usize, 3] {
            let path = tmp_journal("match");
            let d = DurabilityConfig::new(&path);
            let out = Campaign::new(&p, tiny_cfg()).run_durable(threads, &d).unwrap();
            assert_eq!(
                out.store.samples(),
                seq.samples(),
                "durable({threads} threads) must be byte-identical to run()"
            );
            // And the journal replays to the same store.
            let replayed = crate::journal::replay(&path).unwrap();
            assert_eq!(replayed.store.samples(), seq.samples());
            assert!(replayed.complete());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn crash_and_resume_is_bit_identical_to_uninterrupted() {
        let p = tiny_platform();
        let clean_path = tmp_journal("clean");
        let clean = Campaign::new(&p, tiny_cfg())
            .run_durable(2, &DurabilityConfig::new(&clean_path))
            .unwrap();
        let path = tmp_journal("crash");
        let mut d = DurabilityConfig::new(&path);
        d.crash_after_round = Some(1);
        let err = Campaign::new(&p, tiny_cfg()).run_durable(2, &d).unwrap_err();
        assert!(matches!(err, CampaignError::SimulatedCrash { round: 1 }));
        d.crash_after_round = None;
        let resumed = Campaign::resume(&p, &d, 2).unwrap();
        assert_eq!(resumed.store.samples(), clean.store.samples());
        assert_eq!(resumed.ledger.balance(), clean.ledger.balance());
        assert_eq!(resumed.ledger.spent(), clean.ledger.spent());
        assert_eq!(resumed.ledger.refunded(), clean.ledger.refunded());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&clean_path);
    }

    #[test]
    fn resume_rejects_a_drifted_platform() {
        let p = tiny_platform();
        let path = tmp_journal("drift");
        let mut d = DurabilityConfig::new(&path);
        d.crash_after_round = Some(0);
        let _ = Campaign::new(&p, tiny_cfg()).run_durable(1, &d).unwrap_err();
        d.crash_after_round = None;
        // A different fleet digests differently: resume must refuse.
        let other = Platform::build(&PlatformConfig {
            fleet: crate::fleet::FleetConfig {
                target_size: 80,
                seed: 6,
            },
            ..PlatformConfig::default()
        });
        match Campaign::resume(&other, &d, 1) {
            Err(CampaignError::Journal(JournalError::ConfigMismatch { .. })) => {}
            other => panic!("want ConfigMismatch, got {other:?}"),
        }
        // The original platform still resumes fine.
        assert!(Campaign::resume(&p, &d, 1).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_cadence_preserves_bit_identical_resume() {
        let p = tiny_platform();
        let cfg = CampaignConfig {
            rounds: 8,
            ..tiny_cfg()
        };
        let clean_path = tmp_journal("ckpt-clean");
        let clean = Campaign::new(&p, cfg)
            .run_durable(1, &DurabilityConfig::new(&clean_path))
            .unwrap();
        let path = tmp_journal("ckpt");
        let mut d = DurabilityConfig::new(&path);
        d.checkpoint_every = 2;
        d.crash_after_round = Some(5);
        let _ = Campaign::new(&p, cfg).run_durable(1, &d).unwrap_err();
        d.crash_after_round = None;
        let resumed = Campaign::resume(&p, &d, 1).unwrap();
        assert_eq!(resumed.store.samples(), clean.store.samples());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&clean_path);
    }

    #[test]
    fn each_sample_has_known_probe_and_region() {
        let p = tiny_platform();
        let store = Campaign::new(&p, tiny_cfg()).run().unwrap();
        for s in store.samples() {
            assert!(s.probe.index() < p.probes().len());
            assert!((s.region as usize) < p.catalog().regions().len());
            assert_eq!(s.probe, p.probes()[s.probe.index()].id);
        }
        let _ = ProbeId(0);
    }

    #[test]
    fn shard_ranges_partition_the_fleet_contiguously() {
        let p = tiny_platform();
        let c = Campaign::new(&p, tiny_cfg());
        let n = p.probes().len();
        for count in [1usize, 2, 3, 7, n, n + 5] {
            let ranges = c.shard_ranges(count);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= count);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "shards must be contiguous");
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
        }
    }

    #[test]
    fn public_shard_rounds_merge_to_run_bit_for_bit() {
        let p = tiny_platform();
        let cfg = tiny_cfg();
        let c = Campaign::new(&p, cfg);
        let expected = c.run().unwrap();

        for count in [1usize, 3] {
            let shards = c.shard_ranges(count).len();
            let mut ctxs: Vec<ShardContext> =
                (0..shards).map(|s| c.shard_context(s, count)).collect();
            let mut store = ResultStore::new();
            let mut ledger = CreditLedger::new(cfg.credits);
            for round in 0..cfg.rounds {
                let outputs: Vec<_> =
                    ctxs.iter_mut().map(|ctx| c.run_shard(ctx, round)).collect();
                let gross: u64 = outputs.iter().map(|(_, g, _)| g).sum();
                let refunds: u64 = outputs.iter().map(|(_, _, r)| r).sum();
                ledger.debit(gross).unwrap();
                ledger.refund(refunds);
                for (shard_store, _, _) in outputs {
                    store.merge(shard_store);
                }
            }
            assert_eq!(
                store.samples(),
                expected.samples(),
                "{count}-way public shard merge must equal run()"
            );
        }
    }

    #[test]
    fn lost_shard_round_schedules_exactly_the_live_probes() {
        let p = tiny_platform();
        let cfg = tiny_cfg();
        let c = Campaign::new(&p, cfg);
        let mut ctx = c.shard_context(0, 2);
        for round in 0..cfg.rounds {
            let (real, _, _) = c.run_shard(&mut ctx, round);
            let lost = c.lost_shard_round(&ctx, round);
            // Same probes, regions, and timestamps row for row; values
            // are the lost-sample sentinels.
            assert_eq!(lost.len(), real.len());
            assert_eq!(lost.probes(), real.probes());
            assert_eq!(lost.regions(), real.regions());
            assert_eq!(lost.ats(), real.ats());
            for s in lost.samples() {
                assert!(s.min_ms.is_infinite() && s.avg_ms.is_infinite());
                assert_eq!((s.sent, s.received), (0, 0));
            }
        }
    }

    #[test]
    fn shard_headers_pin_partition_geometry() {
        let p = tiny_platform();
        let c = Campaign::new(&p, tiny_cfg());
        let h00 = c.shard_header(&c.shard_context(0, 2));
        let h01 = c.shard_header(&c.shard_context(1, 2));
        let h03 = c.shard_header(&c.shard_context(0, 3));
        assert_ne!(h00.fleet_digest, h01.fleet_digest, "shard index must matter");
        assert_ne!(h00.fleet_digest, h03.fleet_digest, "shard count must matter");
        assert_eq!(
            h00.fleet_digest,
            c.shard_header(&c.shard_context(0, 2)).fleet_digest,
            "digest must be deterministic"
        );
        // Wire round-trip preserves the header exactly.
        let wire = h00.to_wire();
        let back = JournalHeader::from_wire(&wire).unwrap();
        assert_eq!(back.fleet_digest, h00.fleet_digest);
        assert_eq!(back.plan_digest, h00.plan_digest);
        assert_eq!(back.config, h00.config);
    }
}
