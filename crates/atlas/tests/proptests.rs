//! Property-based tests for the measurement platform's invariants.

use proptest::prelude::*;
use shears_atlas::{
    CreditLedger, FleetBuilder, FleetConfig, OutageSchedule, ProbeId, ResultStore, RttSample,
    TagFilter,
};
use shears_geo::CountryAtlas;
use shears_netsim::stochastic::SimRng;
use shears_netsim::SimTime;

fn arb_sample() -> impl Strategy<Value = RttSample> {
    (
        any::<u32>(),
        0u16..101,
        0u64..1_000_000_000_000,
        0.1f32..2000.0,
        0u8..=3,
    )
        .prop_map(|(probe, region, at_ns, rtt, received)| RttSample {
            probe: ProbeId(probe),
            region,
            at: SimTime::from_nanos(at_ns),
            min_ms: if received == 0 { f32::INFINITY } else { rtt },
            avg_ms: if received == 0 {
                f32::INFINITY
            } else {
                rtt * 1.1
            },
            sent: 3,
            received,
        })
}

proptest! {
    #[test]
    fn store_jsonl_round_trips_arbitrary_samples(
        samples in proptest::collection::vec(arb_sample(), 0..80),
    ) {
        let mut store = ResultStore::new();
        for s in &samples {
            store.push(*s);
        }
        let text = store.to_jsonl();
        let back = ResultStore::from_jsonl(&text).expect("own dump parses");
        prop_assert_eq!(back.samples(), store.samples());
    }

    #[test]
    fn response_rate_is_a_probability(
        samples in proptest::collection::vec(arb_sample(), 0..80),
    ) {
        let mut store = ResultStore::new();
        for s in &samples {
            store.push(*s);
        }
        let rate = store.response_rate();
        if samples.is_empty() {
            // An empty store has no reply-rate evidence: NaN, not 1.0.
            prop_assert!(rate.is_nan());
        } else {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        prop_assert_eq!(
            store.responded().count(),
            samples.iter().filter(|s| s.received > 0).count()
        );
    }

    #[test]
    fn ledger_conserves_credits(
        initial in 0u64..1_000_000,
        debits in proptest::collection::vec(1u64..10_000, 0..50),
    ) {
        let mut ledger = CreditLedger::new(initial);
        for &d in &debits {
            let before = (ledger.balance(), ledger.spent());
            match ledger.debit(d) {
                Ok(()) => {
                    prop_assert_eq!(ledger.balance(), before.0 - d);
                    prop_assert_eq!(ledger.spent(), before.1 + d);
                }
                Err(_) => {
                    // Refused debits must not change state.
                    prop_assert_eq!((ledger.balance(), ledger.spent()), before);
                }
            }
            // Invariant: balance + spent == initial, always.
            prop_assert_eq!(ledger.balance() + ledger.spent(), initial);
        }
    }

    #[test]
    fn tag_filters_never_match_excluded(
        probe_tags in proptest::collection::vec("[a-z]{1,6}", 0..8),
        exclude in "[a-z]{1,6}",
    ) {
        let f = TagFilter::any().reject(&exclude);
        if probe_tags.iter().any(|t| t == &exclude) {
            prop_assert!(!f.matches(&probe_tags));
            prop_assert!(!f.matches_any(&probe_tags));
        } else {
            prop_assert!(f.matches(&probe_tags));
        }
    }

    #[test]
    fn allocation_is_at_least_one_everywhere_and_near_target(
        target in 200usize..4000,
        seed in any::<u64>(),
    ) {
        let atlas = CountryAtlas::global();
        let counts = FleetBuilder::new(FleetConfig { target_size: target, seed })
            .allocate(&atlas);
        prop_assert_eq!(counts.len(), atlas.len());
        prop_assert!(counts.iter().all(|&c| c >= 1));
        let total: usize = counts.iter().sum();
        // Rounding + minimums keep the total within the country count
        // of the target.
        prop_assert!(total >= target.saturating_sub(atlas.len()));
        prop_assert!(total <= target + atlas.len());
    }

    #[test]
    fn outage_schedule_up_fraction_is_sane(
        seed in any::<u64>(),
        stability in 0.05f64..1.0,
        horizon_days in 1u64..400,
    ) {
        let mut rng = SimRng::new(seed);
        let horizon = SimTime::from_days(horizon_days);
        let schedule = OutageSchedule::generate(&mut rng, stability, horizon);
        let f = schedule.up_fraction(horizon);
        prop_assert!((0.0..=1.0).contains(&f));
        // Sampling is_up on a grid agrees with the interval arithmetic
        // to coarse precision.
        let n = 200u64;
        let step = horizon.as_nanos() / n;
        prop_assume!(step > 0);
        let sampled = (0..n)
            .filter(|i| schedule.is_up(SimTime::from_nanos(i * step)))
            .count() as f64
            / n as f64;
        prop_assert!((sampled - f).abs() < 0.15, "sampled {sampled} vs exact {f}");
    }
}
