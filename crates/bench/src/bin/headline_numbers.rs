//! TEXT1 — regenerates every in-text headline number of §4/§5 with the
//! paper's claimed value alongside.

use shears_analysis::headline::headline_numbers;
use shears_analysis::report::{pct, Table};
use shears_bench::{campaign_prologue, view};

fn main() {
    let (platform, store) = campaign_prologue("headline");
    let data = view(&platform, &store);
    let h = headline_numbers(&data);

    let mut t = Table::new(vec!["statistic", "paper", "measured"]);
    t.row(vec![
        "countries with min RTT < 10 ms".to_string(),
        "32".to_string(),
        h.countries_under_10ms.to_string(),
    ]);
    t.row(vec![
        "countries in 10-20 ms".to_string(),
        "21".to_string(),
        h.countries_10_to_20ms.to_string(),
    ]);
    t.row(vec![
        "countries above PL".to_string(),
        "16 (mostly Africa)".to_string(),
        format!("{} ({} African)", h.countries_above_pl, h.countries_above_pl_african),
    ]);
    t.row(vec![
        "EU probes within MTP".to_string(),
        "~80%".to_string(),
        pct(h.eu_probes_within_mtp),
    ]);
    t.row(vec![
        "NA probes within MTP".to_string(),
        "~80%".to_string(),
        pct(h.na_probes_within_mtp),
    ]);
    t.row(vec![
        "Oceania probes within 50 ms".to_string(),
        "almost all".to_string(),
        pct(h.oceania_within_50ms),
    ]);
    t.row(vec![
        "Africa probes within PL".to_string(),
        "~75%".to_string(),
        pct(h.africa_within_pl),
    ]);
    t.row(vec![
        "LatAm probes within PL".to_string(),
        "~75%".to_string(),
        pct(h.latam_within_pl),
    ]);
    t.row(vec![
        "EU+NA rounds <= 40 ms (Facebook check)".to_string(),
        "\"rarely above 40 ms\"".to_string(),
        pct(h.eu_na_rounds_under_40ms),
    ]);
    t.row(vec![
        "wireless / wired ratio".to_string(),
        "~2.5x".to_string(),
        h.wireless_ratio
            .map(|r| format!("{r:.2}x"))
            .unwrap_or_else(|| "-".into()),
    ]);
    print!("{}", t.render());

    println!(
        "\nimplied feasibility zone: {:.1}..{:.1} ms, >= {:.0} GB/entity/day",
        h.feasibility_zone.latency_floor_ms,
        h.feasibility_zone.latency_ceiling_ms,
        h.feasibility_zone.bandwidth_gain_gb_per_day
    );
}
