//! EXT6 — per-provider comparison (the CloudCmp angle): floor RTT to
//! each provider's nearest region per continent, plus the
//! footprint-controlled private-vs-public backbone split at Frankfurt.

use shears_analysis::providers::{controlled_city_comparison, provider_comparison};
use shears_analysis::report::{ms, ms_opt, Table};
use shears_bench::{build_platform, Scale};
use shears_geo::Continent;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ext6] scale: {} probes", scale.probes);
    let platform = build_platform(scale);

    let report = provider_comparison(&platform, 800);
    let mut headers = vec!["provider".to_string(), "backbone".to_string()];
    headers.extend(Continent::ALL.iter().map(|c| c.to_string()));
    headers.push("global".to_string());
    let mut t = Table::new(headers);
    for row in &report.rows {
        let mut cells = vec![
            row.provider.to_string(),
            if row.provider.has_private_backbone() {
                "private"
            } else {
                "transit"
            }
            .to_string(),
        ];
        cells.extend(
            Continent::ALL
                .iter()
                .map(|&c| ms_opt(row.continent(c))),
        );
        cells.push(ms_opt(row.global_median_ms));
        t.row(cells);
    }
    print!("{}", t.render());
    println!("(medians of floor RTT to each provider's nearest region, ms)\n");

    println!("footprint-controlled: all providers' Frankfurt regions, probes >1500 km away:");
    let mut t = Table::new(vec!["provider", "backbone", "median floor RTT ms"]);
    for (provider, median) in controlled_city_comparison(&platform, "Frankfurt", 1500.0, 800) {
        t.row(vec![
            provider.to_string(),
            if provider.has_private_backbone() {
                "private"
            } else {
                "transit"
            }
            .to_string(),
            ms(median),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npaper reading (§4.1): providers with \"private, large bandwidth,\n\
         low latency network backbones with wide-scale ISP peering\" beat\n\
         public-transit providers once the path crosses the core; nearby\n\
         users see footprint, not backbone."
    );
}
