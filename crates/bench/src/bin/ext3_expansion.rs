//! EXT3 — the cloud-expansion ablation: §4's motivation ("Amazon's
//! cloud has increased from 3 to 22 datacenter locations" since 2010;
//! CDN latencies fell from ~100 ms to 10–25 ms) tested by running the
//! same fleet against the 2010 catalogue snapshot and the full
//! 2019/2020 catalogue.

use shears_analysis::expansion::compare;
use shears_analysis::report::{ms_opt, Table};
use shears_analysis::CampaignData;
use shears_atlas::{Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig};
use shears_bench::Scale;

fn run(year: Option<u16>, scale: Scale) -> (Platform, shears_atlas::ResultStore) {
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: scale.probes,
            seed: 42, // identical fleet in both runs
        },
        catalog_year: year,
        ..PlatformConfig::default()
    });
    let cfg = CampaignConfig {
        rounds: scale.rounds,
        ..CampaignConfig::paper_scale()
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let store = Campaign::new(&platform, cfg).run_parallel(threads).unwrap();
    (platform, store)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ext3] scale: {} probes x {} rounds, two campaigns", scale.probes, scale.rounds);

    let (p2010, s2010) = run(Some(2010), scale);
    eprintln!(
        "[ext3] 2010 catalogue: {} regions",
        p2010.catalog().regions().len()
    );
    let (p2020, s2020) = run(None, scale);
    eprintln!(
        "[ext3] 2020 catalogue: {} regions",
        p2020.catalog().regions().len()
    );

    let report = compare(
        &CampaignData::new(&p2010, &s2010),
        "2010",
        &CampaignData::new(&p2020, &s2020),
        "2020",
    );

    let mut t = Table::new(vec![
        "continent",
        "median min RTT 2010 ms",
        "median min RTT 2020 ms",
        "improvement",
        "KS distance",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.continent.to_string(),
            ms_opt(row.old_median_ms),
            ms_opt(row.new_median_ms),
            row.improvement()
                .map(|f| format!("{f:.2}x"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", row.ks),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npaper expectation: a decade of build-out moved the cloud from\n\
         ~100 ms to 10-25 ms for most users — the improvement factors\n\
         above quantify that on identical fleets."
    );
}
