//! Exports the campaign dataset the way the paper publishes its own
//! (3.2 M datapoints, "available for public use"): a JSON-Lines sample
//! file plus JSON metadata for probes and regions, then verifies the
//! dump round-trips.
//!
//! ```sh
//! cargo run --release -p shears-bench --bin export_dataset -- /tmp/shears-dataset
//! SHEARS_SCALE=paper cargo run --release -p shears-bench --bin export_dataset -- out/
//! ```

use std::fs;
use std::path::PathBuf;

use shears_atlas::ResultStore;
use shears_bench::campaign_prologue;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("shears-dataset"));
    let (platform, store) = campaign_prologue("export");

    fs::create_dir_all(&out_dir).expect("create output directory");

    // Samples as JSON Lines.
    let samples_path = out_dir.join("samples.jsonl");
    fs::write(&samples_path, store.to_jsonl()).expect("write samples");

    // Probe metadata (the fields analysis joins on).
    let probes: Vec<serde_json::Value> = platform
        .probes()
        .iter()
        .map(|p| {
            serde_json::json!({
                "id": p.id.0,
                "country": p.country,
                "continent": p.continent.short(),
                "lat": p.location.lat,
                "lon": p.location.lon,
                "tags": p.tags,
                "stability": p.stability,
            })
        })
        .collect();
    let probes_path = out_dir.join("probes.json");
    fs::write(
        &probes_path,
        serde_json::to_string_pretty(&probes).expect("probes serialise"),
    )
    .expect("write probes");

    // Region metadata.
    let regions: Vec<serde_json::Value> = platform
        .catalog()
        .regions()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            serde_json::json!({
                "index": i,
                "provider": r.provider.to_string(),
                "code": r.code,
                "city": r.city,
                "country": r.country,
                "launched": r.launched,
            })
        })
        .collect();
    let regions_path = out_dir.join("regions.json");
    fs::write(
        &regions_path,
        serde_json::to_string_pretty(&regions).expect("regions serialise"),
    )
    .expect("write regions");

    // Verify the dump round-trips before declaring success.
    let reloaded =
        ResultStore::from_jsonl(&fs::read_to_string(&samples_path).expect("re-read samples"))
            .expect("parse own dump");
    assert_eq!(reloaded.len(), store.len(), "round-trip lost samples");

    let size = |p: &PathBuf| fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!("dataset written to {}:", out_dir.display());
    println!(
        "  samples.jsonl  {:>12} bytes  ({} samples, verified round-trip)",
        size(&samples_path),
        store.len()
    );
    println!(
        "  probes.json    {:>12} bytes  ({} probes)",
        size(&probes_path),
        platform.probes().len()
    );
    println!(
        "  regions.json   {:>12} bytes  ({} regions)",
        size(&regions_path),
        platform.catalog().regions().len()
    );
}
