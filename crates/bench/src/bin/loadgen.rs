//! Open-loop load harness: spawns the API server in-process, offers
//! Poisson traffic at a configured rate over a keep-alive session
//! fleet, and folds p50/p99/p999 + throughput into `BENCH_api.json`.
//!
//! ```sh
//! cargo run --release -p shears-bench --bin loadgen                 # one run
//! cargo run --release -p shears-bench --bin loadgen -- --grid       # 3 rates × {64,1k,10k}
//! cargo run --release -p shears-bench --bin loadgen -- \
//!     --rate 1000 --sessions 1000 --secs 10 --mode pool
//! ```
//!
//! `--merge BENCH_api.json` (the default for `--grid`, used by
//! `scripts/bench.sh`) inserts the results under a `"loadgen"` key,
//! preserving the Criterion summaries already in the file.

use std::time::Duration;

use shears_api::dto::CreateMeasurementDto;
use shears_api::server::{ApiServer, ServerConfig, ServerMode};
use shears_api::service::AtlasService;
use shears_atlas::{Platform, PlatformConfig};
use shears_bench::loadgen::{LoadReport, TrafficMix, Workload};

struct Args {
    rate: f64,
    sessions: usize,
    secs: f64,
    seed: u64,
    mode: ServerMode,
    grid: bool,
    read_only: bool,
    merge: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        rate: 500.0,
        sessions: 64,
        secs: 5.0,
        seed: 42,
        mode: ServerMode::Reactor,
        grid: false,
        read_only: false,
        merge: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--rate" => args.rate = val("--rate").parse().expect("--rate: f64"),
            "--sessions" => args.sessions = val("--sessions").parse().expect("--sessions: usize"),
            "--secs" => args.secs = val("--secs").parse().expect("--secs: f64"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: u64"),
            "--mode" => {
                args.mode = match val("--mode").as_str() {
                    "reactor" => ServerMode::Reactor,
                    "pool" => ServerMode::WorkerPool,
                    other => panic!("--mode: reactor|pool, got {other}"),
                }
            }
            "--grid" => args.grid = true,
            "--read-only" => args.read_only = true,
            "--merge" => args.merge = Some(val("--merge")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn spawn_server(mode: ServerMode) -> ApiServer {
    let platform = Platform::build(&PlatformConfig::quick(8));
    let service = AtlasService::new(platform);
    // Seed the measurement the read mix targets through the service
    // directly — independent of JSON round-trips.
    let created = service.create_from_spec(&CreateMeasurementDto {
        target_region: 0,
        packets: 2,
        rounds: 2,
        probe_limit: 16,
        country: None,
        fault_profile: None,
        retries: None,
        durability: false,
    });
    assert_eq!(created.status, 201, "seed measurement failed");
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let config = match mode {
        ServerMode::Reactor => ServerConfig::reactor(2, cores.clamp(2, 32), 256),
        ServerMode::WorkerPool => ServerConfig::worker_pool(cores * 2, 256),
    }
    // Low-rate sessions in a big fleet legitimately sit idle for
    // minutes; don't let the idle wheel shear the fleet mid-run.
    .with_idle_timeout(Duration::from_secs(120))
    .with_max_connections(30_000);
    ApiServer::spawn_with("127.0.0.1:0", service, config).unwrap()
}

fn run_one(server: &ApiServer, rate: f64, sessions: usize, secs: f64, seed: u64, read_only: bool) -> LoadReport {
    let mut w = Workload::new(rate, sessions);
    w.duration = Duration::from_secs_f64(secs);
    w.seed = seed;
    if read_only {
        w.mix = TrafficMix::read_only();
    }
    let report = w.run(server.local_addr()).expect("load run failed");
    eprintln!(
        "[loadgen] rate={rate} sessions={sessions}: {} completed, p50={:.2}ms p99={:.2}ms p999={:.2}ms",
        report.completed,
        report.latency.quantile(0.5),
        report.latency.quantile(0.99),
        report.latency.quantile(0.999),
    );
    report
}

/// Inserts `"loadgen": payload` into the JSON object in `path`,
/// preserving whatever `bench_summary` already put there. Textual
/// merge — no JSON parsing — so it behaves identically with the
/// offline serde stub. If the file is absent, isn't a single object,
/// or already carries a `"loadgen"` key (bench_summary regenerates it
/// fresh each run, so that means a stale manual run), it is replaced
/// wholesale.
fn merge_into(path: &str, payload: &str) {
    let fresh = format!("{{\"loadgen\":{payload}}}\n");
    let merged = match std::fs::read_to_string(path) {
        Ok(text) => {
            let trimmed = text.trim_end();
            let inner = trimmed
                .strip_suffix('}')
                .map(str::trim_end)
                .unwrap_or_default();
            if inner.starts_with('{') && inner != "{" && !trimmed.contains("\"loadgen\"") {
                format!("{inner},\"loadgen\":{payload}}}\n")
            } else {
                fresh
            }
        }
        Err(_) => fresh,
    };
    std::fs::write(path, merged).expect("writing BENCH file");
    eprintln!("[loadgen] merged into {path}");
}

fn main() {
    let args = parse_args();
    let server = spawn_server(args.mode);
    let mode_name = match args.mode {
        ServerMode::Reactor => "reactor",
        ServerMode::WorkerPool => "pool",
    };

    let runs: Vec<(f64, usize)> = if args.grid {
        let mut grid = Vec::new();
        for &rate in &[200.0, 1_000.0, 5_000.0] {
            for &sessions in &[64usize, 1_000, 10_000] {
                grid.push((rate, sessions));
            }
        }
        grid
    } else {
        vec![(args.rate, args.sessions)]
    };

    let mut entries = Vec::new();
    for (rate, sessions) in runs {
        let report = run_one(&server, rate, sessions, args.secs, args.seed, args.read_only);
        entries.push(report.to_json());
    }
    let payload = format!("{{\"mode\":\"{mode_name}\",\"runs\":[{}]}}", entries.join(","));
    println!("{payload}");

    if let Some(path) = &args.merge {
        merge_into(path, &payload);
    }
    server.shutdown().unwrap();
}
