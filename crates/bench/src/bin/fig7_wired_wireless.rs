//! FIG7 — regenerates Figure 7: wired vs wireless last-mile RTT over
//! the measurement period (paper: wireless ≈2.5× wired, 10–40 ms
//! added).

use shears_analysis::lastmile::last_mile_report;
use shears_analysis::report::{ms_opt, Table};
use shears_analysis::stats::bootstrap_median_ci;
use shears_bench::{campaign_prologue, view};
use shears_netsim::SimTime;

fn main() {
    let (platform, store) = campaign_prologue("fig7");
    let data = view(&platform, &store);
    let report = last_mile_report(&data, SimTime::from_hours(6))
        .expect("fleet contains both tagged sets");

    println!(
        "matched countries: {} | wired probes: {} | wireless probes: {}",
        report.matched_countries, report.wired_probes, report.wireless_probes
    );
    println!(
        "medians: wired {:.1} ms, wireless {:.1} ms  ->  ratio {:.2}x (paper ~2.5x), +{:.1} ms (paper 10-40 ms)",
        report.wired_median_ms, report.wireless_median_ms, report.ratio, report.added_ms
    );

    // Bootstrap 95% confidence intervals on the two campaign medians
    // (seeded, so the printed interval is reproducible).
    let wired_samples: Vec<f64> = data
        .filtered_responded()
        .filter(|(p, _)| p.is_wired_tagged())
        .map(|(_, s)| f64::from(s.min_ms))
        .collect();
    let wireless_samples: Vec<f64> = data
        .filtered_responded()
        .filter(|(p, _)| p.is_wireless_tagged())
        .map(|(_, s)| f64::from(s.min_ms))
        .collect();
    if let (Some(w), Some(wl)) = (
        bootstrap_median_ci(&wired_samples, 300, 0.95, 0xF17),
        bootstrap_median_ci(&wireless_samples, 300, 0.95, 0xF17),
    ) {
        println!(
            "95% bootstrap CIs: wired [{:.1}, {:.1}] ms, wireless [{:.1}, {:.1}] ms — disjoint: {}\n",
            w.lo,
            w.hi,
            wl.lo,
            wl.hi,
            w.hi < wl.lo
        );
    }

    let mut t = Table::new(vec!["t (h)", "wired median ms", "wireless median ms"]);
    for bin in &report.bins {
        t.row(vec![
            bin.at.as_hours().to_string(),
            ms_opt(bin.wired_ms),
            ms_opt(bin.wireless_ms),
        ]);
    }
    print!("{}", t.render());
}
