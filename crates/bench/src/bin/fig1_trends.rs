//! FIG1 — regenerates Figure 1: search interest and publications for
//! "cloud computing" vs "edge computing", 2004–2019, with the detected
//! era boundaries (CDN → Cloud → Edge).

use shears_analysis::report::Table;
use shears_trends::{
    crawl_publications, detect_eras, Keyword, ScholarService, TrendDataset, TrendSeries,
};

fn main() {
    let mut data = TrendDataset::figure1(42);

    // Publication counts go through the scholar crawler, as in the
    // paper (reference [38]): synthetic service, real parsing/backoff.
    let mut scholar = ScholarService::from_dataset(&data, 0.15, 7);
    let (cloud_pubs, cloud_stats) =
        crawl_publications(&mut scholar, Keyword::CloudComputing, 20)
            .expect("crawl within retry budget");
    let (edge_pubs, edge_stats) =
        crawl_publications(&mut scholar, Keyword::EdgeComputing, 20)
            .expect("crawl within retry budget");
    eprintln!(
        "[fig1] scholar crawl: {} pages fetched, {} CAPTCHAs retried",
        cloud_stats.fetched + edge_stats.fetched,
        cloud_stats.throttled + edge_stats.throttled
    );
    data.cloud_pubs = cloud_pubs;
    data.edge_pubs = edge_pubs;

    let mut t = Table::new(vec![
        "year",
        "cloud search",
        "edge search",
        "cloud pubs",
        "edge pubs",
    ]);
    for year in TrendSeries::years() {
        t.row(vec![
            year.to_string(),
            format!("{:.1}", data.cloud_search.at(year).unwrap()),
            format!("{:.1}", data.edge_search.at(year).unwrap()),
            format!("{:.0}", data.cloud_pubs.at(year).unwrap()),
            format!("{:.0}", data.edge_pubs.at(year).unwrap()),
        ]);
    }
    print!("{}", t.render());

    println!("\ndetected eras (CUSUM changepoints):");
    for span in detect_eras(&data) {
        println!("  {:<10} {}-{}", span.era.name(), span.from, span.to);
    }
    println!("(paper narrative: CDN era through the late 2000s, cloud era to ~2015, edge era after)");
}
