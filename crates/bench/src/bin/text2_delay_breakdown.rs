//! TEXT2 — "Where is the Delay?" (§4.3), answered with traceroute-style
//! hop attribution: each continent's RTT decomposed into access, metro,
//! national-backbone, interconnect and datacenter segments.

use shears_analysis::breakdown::{delay_breakdown, Segment};
use shears_analysis::report::{ms, pct, Table};
use shears_bench::{build_platform, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[text2] scale: {} probes", scale.probes);
    let platform = build_platform(scale);
    let report = delay_breakdown(&platform, 200, 5, 0xDE1A);

    let mut headers = vec!["continent".to_string(), "probes".to_string(), "median RTT".to_string()];
    headers.extend(Segment::ALL.iter().map(|s| format!("{} ms", s.label())));
    let mut t = Table::new(headers);
    for row in &report.rows {
        let mut cells = vec![
            row.continent.to_string(),
            row.probes.to_string(),
            ms(row.median_rtt_ms),
        ];
        cells.extend(row.segment_ms.iter().map(|&v| ms(v)));
        t.row(cells);
    }
    print!("{}", t.render());

    println!("\nshares of the decomposed RTT:");
    let mut t = Table::new(
        std::iter::once("continent".to_string())
            .chain(Segment::ALL.iter().map(|s| s.label().to_string()))
            .collect::<Vec<_>>(),
    );
    for row in &report.rows {
        let mut cells = vec![row.continent.to_string()];
        cells.extend(Segment::ALL.iter().map(|&s| pct(row.share(s))));
        t.row(cells);
    }
    print!("{}", t.render());

    println!(
        "\npaper reading (§4.3): in EU/NA the access segment dominates —\n\
         \"the consensus of last-mile being the bottleneck is well\n\
         established\" — while under-served continents pay most of their\n\
         delay in the national backbone and interconnection segments,\n\
         i.e. \"insufficient infrastructure deployment\"."
    );
}
