//! FIG4 — regenerates Figure 4: per-country minimum RTT to the nearest
//! datacenter, in the paper's choropleth buckets, plus the in-text
//! headline counts (32 countries < 10 ms; 21 in 10–20 ms; all but 16
//! under the PL threshold).

use shears_analysis::proximity::{country_min_report, CountryMinReport, FIG4_BUCKETS};
use shears_analysis::report::{ms, AsciiWorldMap, Table};
use shears_bench::{campaign_prologue, view};

fn main() {
    let (platform, store) = campaign_prologue("fig4");
    let data = view(&platform, &store);
    let report = country_min_report(&data);

    let mut t = Table::new(vec!["bucket (ms)", "countries", "paper"]);
    let paper = ["32", "21", "-", "-", "-", "-"];
    for (i, &(lo, hi)) in FIG4_BUCKETS.iter().enumerate() {
        let label = if hi.is_infinite() {
            format!(">= {lo}")
        } else {
            format!("{lo}..{hi}")
        };
        t.row(vec![
            label,
            report.bucket_counts[i].to_string(),
            paper[i].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\ncountries measured: {} | above PL (paper: 16, mostly Africa): {}",
        report.countries_measured(),
        report.above_pl.len()
    );
    println!("above-PL countries: {}", report.above_pl.join(", "));

    // The choropleth, as a terminal map: each country's Fig. 4 bucket
    // digit (0 = <10 ms … 5 = >=200 ms) at its centroid; '#' marks
    // datacenter locations (the paper's red diamonds).
    let mut map = AsciiWorldMap::new();
    // Plot slow countries first so fast ones win shared cells.
    let mut rows: Vec<(&String, &f64)> = report.min_by_country.iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(a.1));
    for (cc, &rtt) in rows {
        if let Some(country) = platform.countries().by_code(cc) {
            let digit = char::from(b'0' + CountryMinReport::bucket_of(rtt) as u8);
            map.place(country.centroid.lat, country.centroid.lon, digit);
        }
    }
    for region in platform.catalog().regions() {
        map.place(region.location.lat, region.location.lon, '#');
    }
    println!("\nmap (bucket digit per country; # = datacenter):");
    print!("{}", map.render());

    // The choropleth itself, as rows (sorted fastest first).
    let mut rows: Vec<(&String, &f64)> = report.min_by_country.iter().collect();
    rows.sort_by(|a, b| a.1.total_cmp(b.1));
    let mut t = Table::new(vec!["country", "min RTT ms", "continent"]);
    for (cc, min) in &rows {
        let continent = platform
            .countries()
            .by_code(cc)
            .map(|c| c.continent.to_string())
            .unwrap_or_default();
        t.row(vec![cc.to_string(), ms(**min), continent]);
    }
    print!("\n{}", t.render());
}
