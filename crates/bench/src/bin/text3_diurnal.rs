//! TEXT3 — temporal structure: RTT by probe-local hour of day (the
//! residential evening congestion the bufferbloat literature predicts)
//! and per-day medians over the campaign (stationarity check behind
//! Fig. 7's flat series).

use shears_analysis::report::{ms, ms_opt, Table};
use shears_analysis::temporal::{diurnal_profile, stability_series};
use shears_bench::{campaign_prologue, view};
use shears_netsim::SimTime;

fn main() {
    let (platform, store) = campaign_prologue("text3");
    let data = view(&platform, &store);

    let profile = diurnal_profile(&data);
    println!("diurnal profile ({} samples, probe-local time):", profile.samples);
    let mut t = Table::new(vec!["local hour", "median RTT ms"]);
    for (h, v) in profile.buckets.iter().enumerate() {
        t.row(vec![format!("{h:02}:00"), ms_opt(*v)]);
    }
    print!("{}", t.render());
    if let (Some((quiet, busy)), Some(swing)) = (profile.extremes(), profile.swing()) {
        println!(
            "\nquietest hour {quiet:02}:00, busiest {busy:02}:00, peak/trough {swing:.2}x\n\
             (residential load model peaks ~21:00 local; pings average over\n\
             3 packets so the visible swing is modest, as on real paths)\n"
        );
    }

    let series = stability_series(&data, SimTime::from_hours(24));
    println!("per-day median of round minima:");
    let mut t = Table::new(vec!["day", "median min RTT ms"]);
    for (at, v) in &series.points {
        t.row(vec![format!("{}", at.as_hours() / 24), ms(*v)]);
    }
    print!("{}", t.render());
    if let Some(spread) = series.relative_spread() {
        println!(
            "\nrelative spread of daily medians: {spread:.3} — the campaign is\n\
             longitudinally stationary, so Fig. 4-6 aggregates are not an\n\
             artefact of a lucky week."
        );
    }
}
