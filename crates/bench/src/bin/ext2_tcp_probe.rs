//! EXT2 — TCP connect-time probing vs ICMP ping (§5 "Network vs.
//! application latency"): the planned methodology extension, run as two
//! full campaigns over the same fleet and targets so the two probing
//! methods flow through the identical storage and analysis pipeline.

use shears_analysis::distribution::all_samples_cdfs;
use shears_analysis::report::{ms, Table};
use shears_analysis::CampaignData;
use shears_atlas::{Campaign, CampaignConfig, MeasurementType};
use shears_bench::{build_platform, Scale};
use shears_geo::Continent;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[ext2] scale: {} probes x {} rounds, two campaigns (ping + tcp)",
        scale.probes, scale.rounds
    );
    let platform = build_platform(scale);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let base = CampaignConfig {
        rounds: scale.rounds,
        ..CampaignConfig::paper_scale()
    };

    let ping_store = Campaign::new(&platform, base)
        .run_parallel(threads)
        .expect("unlimited credits");
    let tcp_store = Campaign::new(
        &platform,
        CampaignConfig {
            kind: MeasurementType::TcpConnect,
            ..base
        },
    )
    .run_parallel(threads)
    .expect("unlimited credits");
    eprintln!(
        "[ext2] ping samples: {}, tcp samples: {} (tcp success rate {:.2}%)",
        ping_store.len(),
        tcp_store.len(),
        tcp_store.response_rate() * 100.0
    );

    let ping = all_samples_cdfs(&CampaignData::new(&platform, &ping_store));
    let tcp = all_samples_cdfs(&CampaignData::new(&platform, &tcp_store));

    let mut t = Table::new(vec![
        "continent",
        "ping median ms",
        "tcp connect median ms",
        "ping p95 ms",
        "tcp p95 ms",
        "tcp/ping median",
    ]);
    for c in Continent::ALL {
        let (Some(p), Some(q)) = (ping.continent(c), tcp.continent(c)) else {
            continue;
        };
        let (Some(pm), Some(tm)) = (p.median(), q.median()) else {
            continue;
        };
        t.row(vec![
            c.to_string(),
            ms(pm),
            ms(tm),
            ms(p.quantile(0.95).unwrap_or(f64::NAN)),
            ms(q.quantile(0.95).unwrap_or(f64::NAN)),
            format!("{:.2}x", tm / pm),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nreading: TCP connect medians track ICMP closely (no min-of-3\n\
         smoothing, so slightly above), while the p95 tail widens with\n\
         SYN retransmission — §5's expectation that TCP probing \"may\n\
         better reflect behavior of application traffic\" without moving\n\
         the paper's median-based conclusions."
    );
}
