//! FIG8 — regenerates Figure 8: the application plane overlaid with the
//! *measured* feasibility zone (latency gain zone between the observed
//! wireless floor and HRT; bandwidth gain zone at 1 GB/entity/day).

use shears_analysis::headline::headline_numbers;
use shears_analysis::report::Table;
use shears_apps::catalog;
use shears_bench::{campaign_prologue, view};

fn main() {
    let (platform, store) = campaign_prologue("fig8");
    let data = view(&platform, &store);
    let headline = headline_numbers(&data);
    let zone = headline.feasibility_zone;

    println!(
        "measured feasibility zone: latency {:.1}..{:.1} ms, data >= {:.0} GB/entity/day",
        zone.latency_floor_ms, zone.latency_ceiling_ms, zone.bandwidth_gain_gb_per_day
    );
    println!("(paper: 10 ms wireless floor .. HRT 250 ms, 1 GB/entity)\n");

    let apps = catalog::driving_applications();
    let mut t = Table::new(vec!["application", "verdict", "market 2025 B$"]);
    let mut rows: Vec<_> = apps.iter().collect();
    rows.sort_by(|a, b| {
        zone.classify(a)
            .in_zone()
            .cmp(&zone.classify(b).in_zone())
            .reverse()
            .then(a.name.cmp(b.name))
    });
    for app in rows {
        t.row(vec![
            app.name.to_string(),
            zone.classify(app).reason().to_string(),
            format!("{:.0}", app.market_2025_busd),
        ]);
    }
    print!("{}", t.render());

    let (inside, outside) = zone.market_split(&apps);
    println!(
        "\nmarket inside FZ: {inside:.0} B$ vs outside: {outside:.0} B$ — the paper's \
         \"predicted market share of applications within the edge FZ pales\" check"
    );
}
