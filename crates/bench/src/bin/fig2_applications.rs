//! FIG2 — regenerates Figure 2: the driving applications as envelopes
//! in the (data volume, latency) plane, with quadrant classification
//! and 2025 market sizes.

use shears_analysis::report::Table;
use shears_apps::{catalog, Quadrant};

fn main() {
    let apps = catalog::driving_applications();
    let mut t = Table::new(vec![
        "application",
        "latency ms (lo..hi)",
        "data GB/day (lo..hi)",
        "market 2025 B$",
        "quadrant",
        "human-centric",
    ]);
    let mut rows: Vec<_> = apps.iter().collect();
    rows.sort_by(|a, b| {
        Quadrant::classify(a)
            .label()
            .cmp(Quadrant::classify(b).label())
            .then(a.name.cmp(b.name))
    });
    for app in rows {
        t.row(vec![
            app.name.to_string(),
            format!("{:.1}..{:.0}", app.latency_ms.lo, app.latency_ms.hi),
            format!("{}..{}", app.data_gb_per_day.lo, app.data_gb_per_day.hi),
            format!("{:.0}", app.market_2025_busd),
            Quadrant::classify(app).label().to_string(),
            if app.human_centric { "yes" } else { "no" }.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\nper-quadrant totals:");
    for q in Quadrant::ALL {
        let members: Vec<&str> = apps
            .iter()
            .filter(|a| Quadrant::classify(a) == q)
            .map(|a| a.name)
            .collect();
        let market: f64 = apps
            .iter()
            .filter(|a| Quadrant::classify(a) == q)
            .map(|a| a.market_2025_busd)
            .sum();
        println!(
            "  {}: {} apps, {:.0} B$ — {}",
            q.label(),
            members.len(),
            market,
            members.join(", ")
        );
    }
    println!(
        "\nthresholds: MTP 20 ms (7 ms compute budget, 2.5 ms NASA HUD), PL 100 ms, HRT 250 ms"
    );
}
