//! Distributed-execution scaling harness: runs the in-process
//! coordinator + worker fleet at 1/2/4/8 workers, measures merged
//! shard-rounds per second, re-runs with a scheduled worker kill to
//! price reassignment recovery, then races the two work-plane
//! transports (per-request HTTP vs the pipelined binary stream)
//! under injected per-wait RTT to price the blocking waits each wire
//! pays. Results fold into `BENCH_dist.json` under a
//! `"dist_scaling"` key.
//!
//! ```sh
//! cargo run --release -p shears-bench --bin dist_scaling
//! cargo run --release -p shears-bench --bin dist_scaling -- \
//!     --probes 120 --rounds 6 --shards 8 --merge BENCH_dist.json
//! ```
//!
//! Everything crosses the real wire (HTTP registration, polls,
//! heartbeats, CRC-framed result frames, worker WALs on disk), so the
//! numbers include the full protocol cost — this is the distributed
//! counterpart of the `campaign_round` bench, not a function
//! microbenchmark.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use shears_atlas::{CampaignConfig, FleetConfig, PlatformConfig};
use shears_dist::{run_distributed, ChaosProxy, DistConfig, DistOutcome, FleetSpec, WorkTransport};

struct Args {
    probes: usize,
    rounds: u32,
    shards: u32,
    seed: u64,
    merge: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        probes: 120,
        rounds: 6,
        shards: 8,
        seed: 42,
        merge: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--probes" => args.probes = val("--probes").parse().expect("--probes: usize"),
            "--rounds" => args.rounds = val("--rounds").parse().expect("--rounds: u32"),
            "--shards" => args.shards = val("--shards").parse().expect("--shards: u32"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: u64"),
            "--merge" => args.merge = Some(val("--merge")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn platform_cfg(args: &Args) -> PlatformConfig {
    PlatformConfig {
        fleet: FleetConfig {
            target_size: args.probes,
            seed: args.seed,
        },
        ..PlatformConfig::default()
    }
}

fn campaign_cfg(args: &Args) -> CampaignConfig {
    CampaignConfig {
        rounds: args.rounds,
        targets_per_probe: 1,
        adjacent_targets: 1,
        seed: args.seed,
        credits: 500_000_000,
        ..CampaignConfig::quick()
    }
}

/// Bench-speed failure detection: tight enough that the recovery leg
/// measures reassignment, not timer slack.
fn dist_cfg(shards: u32) -> DistConfig {
    DistConfig {
        heartbeat_interval: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(120),
        round_timeout: Duration::from_millis(2_000),
        retry_base: Duration::from_millis(30),
        retry_cap: Duration::from_millis(150),
        stall_grace: Duration::from_millis(400),
        ..DistConfig::quick(shards)
    }
}

fn wal_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("shears-dist-bench-{}-{tag}", std::process::id()))
}

fn timed_run(args: &Args, fleet: FleetSpec, tag: &str) -> (DistOutcome, f64) {
    timed_run_rounds(args, args.rounds, fleet, tag)
}

fn timed_run_rounds(args: &Args, rounds: u32, fleet: FleetSpec, tag: &str) -> (DistOutcome, f64) {
    let root = wal_root(tag);
    let start = Instant::now();
    let out = run_distributed(
        &platform_cfg(args),
        CampaignConfig {
            rounds,
            ..campaign_cfg(args)
        },
        dist_cfg(args.shards),
        fleet,
        &root,
    )
    .expect("distributed run failed");
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&root);
    (out, secs)
}

/// Same textual merge as loadgen's: insert the key into the existing
/// JSON object without parsing it, so the offline serde stub behaves
/// identically. A file that is absent, malformed, or already carries
/// the key is replaced wholesale.
fn merge_into(path: &str, payload: &str) {
    let fresh = format!("{{\"dist_scaling\":{payload}}}\n");
    let merged = match std::fs::read_to_string(path) {
        Ok(text) => {
            let trimmed = text.trim_end();
            let inner = trimmed
                .strip_suffix('}')
                .map(str::trim_end)
                .unwrap_or_default();
            if inner.starts_with('{') && inner != "{" && !trimmed.contains("\"dist_scaling\"") {
                format!("{inner},\"dist_scaling\":{payload}}}\n")
            } else {
                fresh
            }
        }
        Err(_) => fresh,
    };
    std::fs::write(path, merged).expect("writing BENCH file");
    eprintln!("[dist_scaling] merged into {path}");
}

fn main() {
    let args = parse_args();
    let shard_rounds = (args.shards * args.rounds) as f64;

    // Scaling leg: clean fleets, 1..8 workers over the same campaign.
    let mut scaling = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let (out, secs) = timed_run(&args, FleetSpec::clean(workers), &format!("scale{workers}"));
        assert_eq!(out.metrics.lost_rounds, 0, "clean run lost rounds");
        let rps = shard_rounds / secs;
        eprintln!(
            "[dist_scaling] workers={workers}: {secs:.3}s, {rps:.1} shard-rounds/s, {} samples",
            out.store.len()
        );
        scaling.push(format!(
            "{{\"workers\":{workers},\"secs\":{secs:.4},\"shard_rounds_per_sec\":{rps:.2},\"samples\":{}}}",
            out.store.len()
        ));
    }

    // Recovery leg: kill one worker mid-campaign and price the
    // reassignment against the clean run at the same fleet size. The
    // delta folds in failure detection (heartbeat silence), shard
    // takeover, and the survivor re-running the orphaned rounds.
    let mut recovery = Vec::new();
    for &workers in &[2usize, 4] {
        let (_, clean_secs) = timed_run(&args, FleetSpec::clean(workers), "rec-clean");
        let fleet = FleetSpec::clean(workers).with_chaos(0, ChaosProxy::kill_at(1));
        let (out, chaos_secs) = timed_run(&args, fleet, &format!("rec{workers}"));
        assert_eq!(out.metrics.lost_rounds, 0, "recovery run lost rounds");
        assert!(
            out.metrics.shards_reassigned >= 1,
            "kill produced no reassignment"
        );
        let recovery_ms = ((chaos_secs - clean_secs) * 1e3).max(0.0);
        eprintln!(
            "[dist_scaling] workers={workers} kill@1: {chaos_secs:.3}s (clean {clean_secs:.3}s), \
             recovery ~{recovery_ms:.0}ms, {} shards reassigned",
            out.metrics.shards_reassigned
        );
        recovery.push(format!(
            "{{\"workers\":{workers},\"secs\":{chaos_secs:.4},\"clean_secs\":{clean_secs:.4},\
             \"recovery_ms\":{recovery_ms:.1},\"shards_reassigned\":{}}}",
            out.metrics.shards_reassigned
        ));
    }

    // Transport leg: one worker, both wires, same campaign, with an
    // injected per-blocking-wait RTT so the pipelining win shows up
    // in wall-clock and not only in the wait counters. HTTP pays a
    // round trip per request (register, poll, every frame submit);
    // the stream pays one per handshake/poll answer plus whatever the
    // in-flight window (8) forces it to drain — so the wait counts,
    // unlike the timings, are machine-independent.
    let t_rounds = args.rounds.max(8);
    let shard_count = f64::from(args.shards);
    let mut transport = Vec::new();
    for &rtt_ms in &[0u64, 5] {
        let mut legs = Vec::new();
        for (name, wire) in [("http", WorkTransport::Http), ("tcp", WorkTransport::Tcp)] {
            let fleet = FleetSpec::clean(1)
                .with_chaos(0, ChaosProxy::none().with_rtt(Duration::from_millis(rtt_ms)))
                .transport(wire);
            let (out, secs) =
                timed_run_rounds(&args, t_rounds, fleet, &format!("wire-{name}-{rtt_ms}"));
            assert_eq!(out.metrics.lost_rounds, 0, "transport leg lost rounds");
            let waits = out.worker_stats.blocking_waits;
            eprintln!(
                "[dist_scaling] transport={name} rtt={rtt_ms}ms: {secs:.3}s, \
                 {waits} blocking waits ({:.1}/shard), {} frames",
                waits as f64 / shard_count,
                out.worker_stats.frames_sent
            );
            legs.push((secs, waits));
        }
        let (http_secs, http_waits) = legs[0];
        let (tcp_secs, tcp_waits) = legs[1];
        let waits_ratio = http_waits as f64 / tcp_waits.max(1) as f64;
        let speedup = http_secs / tcp_secs.max(1e-9);
        eprintln!(
            "[dist_scaling] rtt={rtt_ms}ms: stream pays {waits_ratio:.1}x fewer blocking \
             waits than HTTP ({speedup:.2}x wall-clock)"
        );
        assert!(
            tcp_waits.saturating_mul(4) <= http_waits,
            "pipelined stream should pay >=4x fewer blocking waits \
             (http {http_waits}, tcp {tcp_waits})"
        );
        transport.push(format!(
            "{{\"rtt_ms\":{rtt_ms},\
             \"http\":{{\"secs\":{http_secs:.4},\"blocking_waits\":{http_waits},\
             \"waits_per_shard\":{:.2}}},\
             \"tcp\":{{\"secs\":{tcp_secs:.4},\"blocking_waits\":{tcp_waits},\
             \"waits_per_shard\":{:.2}}},\
             \"waits_ratio\":{waits_ratio:.2},\"speedup\":{speedup:.2}}}",
            http_waits as f64 / shard_count,
            tcp_waits as f64 / shard_count,
        ));
    }

    let payload = format!(
        "{{\"probes\":{},\"rounds\":{},\"shards\":{},\"scaling\":[{}],\"recovery\":[{}],\
         \"transport\":[{}]}}",
        args.probes,
        args.rounds,
        args.shards,
        scaling.join(","),
        recovery.join(","),
        transport.join(",")
    );
    println!("{payload}");
    if let Some(path) = &args.merge {
        merge_into(path, &payload);
    }
}
