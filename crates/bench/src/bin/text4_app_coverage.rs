//! TEXT4 — the abstract's claim, computed: "for most applications the
//! cloud is already 'close enough' for majority of the world's
//! population." Population-weighted cloud coverage per driving
//! application.

use shears_analysis::coverage::population_coverage;
use shears_analysis::report::{ms, pct, Table};
use shears_apps::catalog::driving_applications;
use shears_bench::{campaign_prologue, view};

fn main() {
    let (platform, store) = campaign_prologue("text4");
    let data = view(&platform, &store);
    let apps = driving_applications();
    let report = population_coverage(&data, &apps);

    println!(
        "population measured: {:.0} M (countries with responding probes)\n",
        report.population_measured_m
    );
    let mut t = Table::new(vec![
        "application",
        "needs <= ms",
        "population covered",
        "countries covered",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.name.to_string(),
            ms(row.required_ms),
            pct(row.population_covered),
            pct(row.countries_covered),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\n{} of driving applications are cloud-feasible (best case) for a\n\
         majority of the measured population — the abstract's \"for most\n\
         applications the cloud is already close enough for majority of\n\
         the world's population\".",
        pct(report.majority_covered_fraction())
    );
}
