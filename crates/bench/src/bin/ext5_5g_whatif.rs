//! EXT5 — the 5G what-if: can wireless users ever meet MTP, against
//! the cloud or against a basestation edge, under LTE as deployed,
//! early 5G as measured, and the ITU IMT-2020 promise?

use shears_analysis::report::{pct, Table};
use shears_analysis::whatif::fiveg_whatif;
use shears_bench::{build_platform, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ext5] scale: {} probes", scale.probes);
    let platform = build_platform(scale);
    let report = fiveg_whatif(&platform, 2000);

    let mut t = Table::new(vec![
        "last-mile assumption",
        "one-way access ms",
        "wireless probes meeting MTP via cloud",
        "via basestation edge",
        "edge within 7 ms compute budget",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.assumption.label.to_string(),
            format!("{:.1}", row.assumption.one_way_ms),
            pct(row.cloud_mtp),
            pct(row.edge_mtp),
            pct(row.edge_compute_budget),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\npaper reading (§5): with today's wireless, \"supporting strict\n\
         MTP thresholds, even with edge servers located at basestations,\n\
         seems uncertain\"; and once the last mile improves enough to\n\
         change that, the *cloud* becomes MTP-viable for a large share of\n\
         wireless users too — eroding the latency case for the edge from\n\
         the other side."
    );
}
