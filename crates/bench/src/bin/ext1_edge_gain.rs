//! EXT1 — the edge-at-the-metro reality check (§5's Hadzic/Cartas
//! argument): deploy an edge site at every metro PoP and measure what
//! it buys over the nearest cloud datacenter, per continent.

use shears_analysis::edgegain::edge_gain_study;
use shears_analysis::report::{ms, pct, Table};
use shears_bench::{build_platform, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[ext1] scale: {} probes (set SHEARS_SCALE=paper for the full fleet)",
        scale.probes
    );
    let mut platform = build_platform(scale);
    let report = edge_gain_study(&mut platform, 400);

    let mut t = Table::new(vec![
        "continent",
        "probes",
        "cloud median ms",
        "edge median ms",
        "median gain ms",
        "gain < 10 ms",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.continent.to_string(),
            row.probes.to_string(),
            ms(row.cloud_median_ms),
            ms(row.edge_median_ms),
            ms(row.median_gain_ms),
            pct(row.small_gain_fraction),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npaper expectation: minimal gains in well-connected continents\n\
         (edge \"yields little benefits in well-connected areas\"), large\n\
         gains only in under-served regions."
    );
}
