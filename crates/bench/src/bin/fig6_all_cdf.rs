//! FIG6 — regenerates Figure 6: CDF of *all* ping rounds from every
//! probe to its closest datacenter, by continent, plus the summary
//! table and the eastern-EU tail check.

use shears_analysis::distribution::{all_samples_cdfs, europe_tail_split};
use shears_analysis::report::{ms, pct, AsciiCdfChart, Table};
use shears_bench::{campaign_prologue, view};
use shears_geo::Continent;

const GRID: [f64; 12] = [
    5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0,
];

fn main() {
    let (platform, store) = campaign_prologue("fig6");
    let data = view(&platform, &store);
    let cdfs = all_samples_cdfs(&data);

    let mut headers = vec!["RTT <= ms".to_string()];
    headers.extend(Continent::ALL.iter().map(|c| c.to_string()));
    let mut t = Table::new(headers);
    for x in GRID {
        let mut row = vec![format!("{x}")];
        for c in Continent::ALL {
            row.push(pct(cdfs.fraction_within(c, x)));
        }
        t.row(row);
    }
    print!("{}", t.render());

    // The figure itself, as a terminal chart.
    let mut chart = AsciiCdfChart::new(1.0, 1000.0);
    let grid: Vec<f64> = (0..=40)
        .map(|i| 1.0 * (1000.0f64 / 1.0).powf(f64::from(i) / 40.0))
        .collect();
    for (c, marker) in Continent::ALL.iter().zip(['n', 'e', 'o', 'a', 'l', 'f']) {
        if let Some(ecdf) = cdfs.continent(*c) {
            chart.series(c.short(), marker, ecdf.curve(&grid));
        }
    }
    print!("\n{}", chart.render());

    let mut t = Table::new(vec![
        "continent", "n", "p25", "median", "mean", "p75", "p95",
    ]);
    for (c, s) in cdfs.summaries() {
        if let Some(s) = s {
            t.row(vec![
                c.to_string(),
                s.n.to_string(),
                ms(s.p25),
                ms(s.median),
                ms(s.mean),
                ms(s.p75),
                ms(s.p95),
            ]);
        }
    }
    print!("\n{}", t.render());

    println!("\npaper checkpoints:");
    for c in [Continent::NorthAmerica, Continent::Europe, Continent::Oceania] {
        println!(
            "  {c}: rounds below PL (paper: >75%): {}",
            pct(cdfs.fraction_within(c, 100.0))
        );
    }
    for c in [Continent::NorthAmerica, Continent::Europe] {
        let q25 = cdfs
            .continent(c)
            .and_then(|e| e.quantile(0.25))
            .unwrap_or(f64::NAN);
        println!("  {c}: p25 (paper: top quartile under MTP): {} ms", ms(q25));
    }
    if let Some((advanced, lower)) = europe_tail_split(&data) {
        println!(
            "  EU tail provenance: p95 advanced-infra {} ms vs lower-infra {} ms (paper: tail is eastern EU)",
            ms(advanced),
            ms(lower)
        );
    }
}
