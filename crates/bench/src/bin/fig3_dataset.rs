//! FIG3 — regenerates Figure 3a/3b: the measurement setup. 3a is the
//! distribution of cloud regions (seven providers, 101 regions, 21
//! countries); 3b is the probe fleet (3200+, 166+ countries) by
//! continent.

use shears_analysis::report::{pct, Table};
use shears_bench::{build_platform, Scale};
use shears_cloud::Provider;
use shears_geo::Continent;

fn main() {
    let scale = Scale::from_env();
    let platform = build_platform(scale);
    let catalog = platform.catalog();
    let atlas = platform.countries();

    println!("Figure 3a — cloud regions (targets):");
    let mut t = Table::new(vec!["provider", "regions", "countries", "backbone"]);
    for p in Provider::ALL {
        let regions: Vec<_> = catalog.by_provider(p).collect();
        let countries: std::collections::BTreeSet<_> =
            regions.iter().map(|r| r.country).collect();
        t.row(vec![
            p.to_string(),
            regions.len().to_string(),
            countries.len().to_string(),
            if p.has_private_backbone() {
                "private"
            } else {
                "public transit"
            }
            .to_string(),
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        catalog.regions().len().to_string(),
        catalog.countries().len().to_string(),
        String::new(),
    ]);
    print!("{}", t.render());

    let mut by_continent = Table::new(vec!["continent", "regions"]);
    for c in Continent::ALL {
        by_continent.row(vec![
            c.to_string(),
            catalog.on_continent(c, atlas).count().to_string(),
        ]);
    }
    print!("\n{}", by_continent.render());

    println!("\nFigure 3b — probe fleet (vantage points):");
    let probes = platform.probes();
    let countries: std::collections::BTreeSet<&str> =
        probes.iter().map(|p| p.country.as_str()).collect();
    println!(
        "{} probes in {} countries ({} privileged, excluded from analysis)",
        probes.len(),
        countries.len(),
        probes.iter().filter(|p| p.is_privileged()).count()
    );
    let mut t = Table::new(vec!["continent", "probes", "share", "wireless-tagged"]);
    for c in Continent::ALL {
        let n = probes.iter().filter(|p| p.continent == c).count();
        let wl = probes
            .iter()
            .filter(|p| p.continent == c && p.is_wireless_tagged())
            .count();
        t.row(vec![
            c.to_string(),
            n.to_string(),
            pct(n as f64 / probes.len() as f64),
            wl.to_string(),
        ]);
    }
    print!("{}", t.render());
}
