//! EXT7 — infrastructure-failure study: cut a whole submarine corridor
//! and measure the per-continent impact on cloud reachability. The
//! fragility counterpart of §6's "plausible deployments" argument:
//! regions whose connectivity hangs on one corridor need infrastructure
//! before they need edge servers.

use shears_analysis::report::{ms, ms_opt, pct, Table};
use shears_analysis::resilience::{corridor_cut, failure_study};
use shears_bench::{build_platform, Scale};
use shears_geo::Continent;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[ext7] scale: {} probes", scale.probes);
    let platform = build_platform(scale);

    let scenarios = [
        (
            corridor_cut(
                &platform,
                Continent::Europe,
                Continent::NorthAmerica,
                "transatlantic corridor down",
            ),
            // Measured against each probe's nearest NA datacenter: the
            // corridor's actual traffic.
            Some(Continent::NorthAmerica),
        ),
        (
            corridor_cut(
                &platform,
                Continent::LatinAmerica,
                Continent::NorthAmerica,
                "LatAm-NA (Miami) corridor down",
            ),
            Some(Continent::NorthAmerica),
        ),
        (
            corridor_cut(
                &platform,
                Continent::Africa,
                Continent::Europe,
                "Africa-Europe cables down",
            ),
            Some(Continent::Europe),
        ),
    ];

    for (scenario, target) in scenarios {
        let report = failure_study(&platform, &scenario, 300, target);
        println!(
            "== {} ({} links cut; targets: nearest {} DC) ==",
            report.scenario,
            report.links_cut,
            target.map(|c| c.short()).unwrap_or("any")
        );
        let mut t = Table::new(vec![
            "probe continent",
            "probes",
            "healthy median ms",
            "failed median ms",
            "degraded >25%",
            "disconnected",
        ]);
        for row in &report.rows {
            t.row(vec![
                row.continent.to_string(),
                row.probes.to_string(),
                ms(row.healthy_median_ms),
                ms_opt(row.failed_median_ms),
                pct(row.degraded_fraction),
                pct(row.disconnected_fraction),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
    println!(
        "reading: continents with redundant corridors degrade gracefully;\n\
         those served by thin infrastructure lose reachability outright —\n\
         §6's case for infrastructure investment over edge deployment in\n\
         under-served regions."
    );
}
