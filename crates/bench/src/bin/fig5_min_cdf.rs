//! FIG5 — regenerates Figure 5: CDF of every probe's campaign-wide
//! minimum RTT to any datacenter, grouped by continent.

use shears_analysis::proximity::probe_min_cdfs;
use shears_analysis::report::{pct, AsciiCdfChart, Table};
use shears_bench::{campaign_prologue, view};
use shears_geo::Continent;

const GRID: [f64; 12] = [
    5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0,
];

fn main() {
    let (platform, store) = campaign_prologue("fig5");
    let data = view(&platform, &store);
    let cdfs = probe_min_cdfs(&data);

    let mut headers = vec!["RTT <= ms".to_string()];
    headers.extend(Continent::ALL.iter().map(|c| c.to_string()));
    let mut t = Table::new(headers);
    for x in GRID {
        let mut row = vec![format!("{x}")];
        for c in Continent::ALL {
            row.push(pct(cdfs.fraction_within(c, x)));
        }
        t.row(row);
    }
    print!("{}", t.render());

    // The figure itself, as a terminal chart.
    let mut chart = AsciiCdfChart::new(1.0, 1000.0);
    let grid: Vec<f64> = (0..=40)
        .map(|i| 1.0 * (1000.0f64 / 1.0).powf(f64::from(i) / 40.0))
        .collect();
    for (c, marker) in Continent::ALL.iter().zip(['n', 'e', 'o', 'a', 'l', 'f']) {
        if let Some(ecdf) = cdfs.continent(*c) {
            chart.series(c.short(), marker, ecdf.curve(&grid));
        }
    }
    print!("\n{}", chart.render());

    println!("\npaper checkpoints:");
    println!(
        "  ~80% of EU probes within MTP (20 ms): measured {}",
        pct(cdfs.fraction_within(Continent::Europe, 20.0))
    );
    println!(
        "  ~80% of NA probes within MTP (20 ms): measured {}",
        pct(cdfs.fraction_within(Continent::NorthAmerica, 20.0))
    );
    println!(
        "  Oceania almost all within 50 ms: measured {}",
        pct(cdfs.fraction_within(Continent::Oceania, 50.0))
    );
    println!(
        "  ~75% of Africa within PL (100 ms): measured {}",
        pct(cdfs.fraction_within(Continent::Africa, 100.0))
    );
    println!(
        "  ~75% of LatAm within PL (100 ms): measured {}",
        pct(cdfs.fraction_within(Continent::LatinAmerica, 100.0))
    );
}
