//! EXT4 — the bandwidth side of the edge argument: per-application
//! backhaul load at a reference metro deployment, with and without edge
//! aggregation, plus the model-derived version of the paper's
//! "1 GB/entity/day" boundary.

use shears_analysis::bandwidth::{
    bandwidth_study, derived_bandwidth_boundary_gb_per_day, REFERENCE_ENTITIES_PER_METRO,
};
use shears_analysis::report::{pct, Table};
use shears_apps::catalog::driving_applications;

fn main() {
    println!(
        "metro uplink: 100 Gbit/s | reference household-scale metro: {:.0} k entities",
        REFERENCE_ENTITIES_PER_METRO / 1000.0
    );
    println!(
        "derived bandwidth-gain boundary: {:.2} GB/entity/day (paper: ~1 GB)\n",
        derived_bandwidth_boundary_gb_per_day()
    );

    let apps = driving_applications();
    let study = bandwidth_study(&apps);
    let mut t = Table::new(vec![
        "application",
        "entities/metro",
        "raw Gbit/s",
        "with edge Gbit/s",
        "uplink util raw",
        "util with edge",
        "backhaul saved",
        "edge material?",
    ]);
    let mut rows = study.clone();
    rows.sort_by(|a, b| b.raw_utilization.total_cmp(&a.raw_utilization));
    for row in &rows {
        let app = apps.iter().find(|a| a.name == row.name).unwrap();
        t.row(vec![
            row.name.to_string(),
            format!("{:.0}", app.entities_per_metro),
            format!("{:.2}", row.raw_metro_gbps),
            format!("{:.2}", row.reduced_metro_gbps),
            pct(row.raw_utilization),
            pct(row.reduced_utilization),
            pct(row.saving_fraction),
            if row.edge_materially_helps() { "yes" } else { "no" }.to_string(),
        ]);
    }
    print!("{}", t.render());

    let material: Vec<&str> = rows
        .iter()
        .filter(|r| r.edge_materially_helps())
        .map(|r| r.name)
        .collect();
    println!(
        "\napplications where edge aggregation materially saves backhaul: {}\n\
         (the blue 'bandwidth gain zone' of Fig. 8 — note the overlap with\n\
         the latency FZ is exactly the traffic-camera/video-analytics class)",
        material.join(", ")
    );
}
