//! Collects Criterion estimates from `target/criterion` into a compact
//! JSON summary so the perf trajectory of the campaign/analysis hot
//! paths survives across PRs (`scripts/bench.sh` writes it to
//! `BENCH_campaign.json`).
//!
//! ```sh
//! cargo run --release -p shears-bench --bin bench_summary -- \
//!     target/criterion BENCH_campaign.json
//! ```

use std::fs;
use std::path::Path;

/// One benchmark's headline estimates, in nanoseconds.
fn estimates(path: &Path) -> Option<(f64, f64)> {
    let text = fs::read_to_string(path).ok()?;
    let v: serde_json::Value = serde_json::from_str(&text).ok()?;
    let mean = v.get("mean")?.get("point_estimate")?.as_f64()?;
    let median = v.get("median")?.get("point_estimate")?.as_f64()?;
    Some((mean, median))
}

/// Walks a Criterion output tree, recording every `<id>/new/estimates.json`
/// under its slash-joined benchmark id.
fn collect(dir: &Path, id: &mut Vec<String>, out: &mut Vec<serde_json::Value>) {
    let new_estimates = dir.join("new").join("estimates.json");
    if let Some((mean, median)) = estimates(&new_estimates) {
        out.push(serde_json::json!({
            "id": id.join("/"),
            "mean_ns": mean,
            "median_ns": median,
        }));
        return;
    }
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<_> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name != "report" && name != "new" && name != "base")
        .collect();
    children.sort();
    for name in children {
        id.push(name.clone());
        collect(&dir.join(&name), id, out);
        id.pop();
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let criterion_dir = args
        .next()
        .unwrap_or_else(|| "target/criterion".to_string());
    let output = args
        .next()
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());

    let mut benchmarks = Vec::new();
    collect(Path::new(&criterion_dir), &mut Vec::new(), &mut benchmarks);
    benchmarks.sort_by(|a, b| a["id"].as_str().cmp(&b["id"].as_str()));

    if benchmarks.is_empty() {
        eprintln!(
            "bench_summary: no estimates under {criterion_dir} — run the benches first \
             (scripts/bench.sh)"
        );
        std::process::exit(1);
    }

    let summary = serde_json::json!({
        "source": criterion_dir,
        "unit": "ns",
        "benchmarks": benchmarks,
    });
    let text = serde_json::to_string_pretty(&summary).expect("summary serialises");
    fs::write(&output, text + "\n").expect("summary written");
    eprintln!(
        "bench_summary: {} benchmarks -> {output}",
        summary["benchmarks"].as_array().map_or(0, Vec::len)
    );
}
