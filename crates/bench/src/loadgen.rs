//! Open-loop API load generation.
//!
//! Models the client side the way fantoch's `Workload` does: traffic is
//! described by an **arrival rate** and a **mix**, not by a client
//! count. Requests are *scheduled* on a Poisson process (exponential
//! inter-arrival gaps from a seeded [`SimRng`], so a given
//! `(seed, rate, mix)` is the same request sequence on every run) and
//! each request's latency is measured from its **scheduled** time — if
//! the server (or the driver) falls behind, queueing delay lands in the
//! histogram instead of silently throttling the offered load. That is
//! the difference from a closed loop (like the `api_load` Criterion
//! bench, where N clients wait for each response before sending the
//! next): a closed loop can never show you an overloaded server, only a
//! slower client.
//!
//! The driver multiplexes all sessions on one thread with nonblocking
//! sockets — the same emulated-readiness idiom as the server's reactor
//! — so "10k sessions" is 10k sockets and one thread, and the generator
//! itself stays far from thread-scheduler artefacts. Scheduled requests
//! are pipelined onto their session's keep-alive connection; responses
//! are matched FIFO (HTTP/1.1 guarantees ordering per connection).
//!
//! Latencies land in a log-bucketed [`Histogram`] (~5% relative
//! resolution) from which the report pulls p50/p99/p999; a
//! [`LoadReport`] serialises itself to JSON by hand so the offline
//! serde stub cannot silently empty it.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use shears_api::http::ResponseParser;
use shears_netsim::stochastic::SimRng;

/// Relative width of one histogram bucket.
const BUCKET_GROWTH: f64 = 1.05;

/// How long past the scheduling window the driver keeps draining
/// in-flight responses before declaring them lost.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Request-type weights (normalised on use). The default mix leans on
/// reads the way a measurement dashboard does, with a trickle of
/// campaign creation — creates run a real campaign server-side, so
/// their weight dominates offered CPU cost.
#[derive(Debug, Clone, Copy)]
pub struct TrafficMix {
    /// `POST /api/v2/measurements` (runs a small campaign).
    pub create: f64,
    /// `GET /api/v2/measurements/{id}/stats`.
    pub stats: f64,
    /// `GET /api/v2/measurements/{id}/results`.
    pub results: f64,
    /// `GET /api/v2/measurements` (the listing).
    pub listing: f64,
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self {
            create: 0.02,
            stats: 0.38,
            results: 0.20,
            listing: 0.40,
        }
    }
}

/// The request kinds a mix draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Measurement creation.
    Create,
    /// Stats summary read.
    Stats,
    /// Raw results read.
    Results,
    /// Measurement listing.
    Listing,
}

impl TrafficMix {
    /// Read-only variant of the default mix (for environments where
    /// `POST` bodies cannot round-trip, e.g. the offline serde stub).
    pub fn read_only() -> Self {
        Self {
            create: 0.0,
            ..Self::default()
        }
    }

    /// Draws one request kind. Deterministic in the RNG stream.
    pub fn pick(&self, rng: &mut SimRng) -> Op {
        let total = (self.create + self.stats + self.results + self.listing).max(f64::MIN_POSITIVE);
        let r = rng.uniform() * total;
        if r < self.create {
            Op::Create
        } else if r < self.create + self.stats {
            Op::Stats
        } else if r < self.create + self.stats + self.results {
            Op::Results
        } else {
            Op::Listing
        }
    }
}

/// An open-loop workload: offered rate × mix × session fleet.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Offered load, requests per second across all sessions.
    pub rate: f64,
    /// Keep-alive sessions to spread requests over.
    pub sessions: usize,
    /// Scheduling window (requests are scheduled for this long; the
    /// driver then drains what is still in flight).
    pub duration: Duration,
    /// Request-type weights.
    pub mix: TrafficMix,
    /// RNG seed: fixes the arrival schedule, the session assignment,
    /// and the op sequence.
    pub seed: u64,
    /// Measurement id the read ops target (seed it before running).
    pub measurement_id: u64,
}

impl Workload {
    /// A workload at `rate` req/s over `sessions` sessions with the
    /// default mix, seed 42, 5-second window.
    pub fn new(rate: f64, sessions: usize) -> Self {
        Self {
            rate,
            sessions,
            duration: Duration::from_secs(5),
            mix: TrafficMix::default(),
            seed: 42,
            measurement_id: 1,
        }
    }

    /// The request bytes for one op (keep-alive framing).
    fn render(&self, op: Op) -> Vec<u8> {
        let id = self.measurement_id;
        match op {
            Op::Listing => b"GET /api/v2/measurements HTTP/1.1\r\nhost: l\r\ncontent-length: 0\r\n\r\n".to_vec(),
            Op::Stats => format!(
                "GET /api/v2/measurements/{id}/stats HTTP/1.1\r\nhost: l\r\ncontent-length: 0\r\n\r\n"
            )
            .into_bytes(),
            Op::Results => format!(
                "GET /api/v2/measurements/{id}/results HTTP/1.1\r\nhost: l\r\ncontent-length: 0\r\n\r\n"
            )
            .into_bytes(),
            Op::Create => {
                let body = r#"{"target_region":0,"packets":1,"rounds":1,"probe_limit":2,"durability":false}"#;
                format!(
                    "POST /api/v2/measurements HTTP/1.1\r\nhost: l\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes()
            }
        }
    }

    /// Runs the workload against `addr` and reports latencies.
    pub fn run(&self, addr: SocketAddr) -> std::io::Result<LoadReport> {
        let mut driver = Driver::connect(addr, self.sessions)?;
        driver.run(self)
    }
}

/// A log-bucketed latency histogram (~5% relative resolution, so p999
/// is honest without storing every sample of a million-request run).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: f64,
    max_us: u64,
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        // index = log_{1.05}(us + 1); bucket 0 holds sub-microsecond.
        (((us + 1) as f64).ln() / BUCKET_GROWTH.ln()) as usize
    }

    /// Records one latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let b = Self::bucket_of(us);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_us += us as f64;
        self.max_us = self.max_us.max(us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`q` in `[0, 1]`), in milliseconds: the upper
    /// edge of the bucket holding the `q·count`-th sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper_us = BUCKET_GROWTH.powi(b as i32 + 1) - 1.0;
                return upper_us.min(self.max_us as f64) / 1_000.0;
            }
        }
        self.max_us as f64 / 1_000.0
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64 / 1_000.0
        }
    }

    /// Maximum latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1_000.0
    }
}

/// What one workload run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered rate (req/s).
    pub rate: f64,
    /// Session count.
    pub sessions: usize,
    /// Requests scheduled.
    pub scheduled: u64,
    /// Responses received.
    pub completed: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 503 sheds observed.
    pub shed_503: u64,
    /// Other non-2xx responses.
    pub other_status: u64,
    /// Requests lost to socket errors or the drain deadline.
    pub lost: u64,
    /// Achieved throughput over the scheduling window (responses/s).
    pub throughput: f64,
    /// Latency distribution, scheduled-time to response-complete.
    pub latency: Histogram,
}

impl LoadReport {
    /// Hand-rolled JSON (stable under the offline serde stub).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"rate\":{:.1},\"sessions\":{},\"scheduled\":{},\"completed\":{},",
                "\"ok\":{},\"shed_503\":{},\"other_status\":{},\"lost\":{},",
                "\"throughput_rps\":{:.1},\"latency_ms\":{{\"p50\":{:.3},\"p99\":{:.3},",
                "\"p999\":{:.3},\"mean\":{:.3},\"max\":{:.3}}}}}"
            ),
            self.rate,
            self.sessions,
            self.scheduled,
            self.completed,
            self.ok,
            self.shed_503,
            self.other_status,
            self.lost,
            self.throughput,
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
            self.latency.mean_ms(),
            self.latency.max_ms(),
        )
    }
}

/// One multiplexed client session.
struct Session {
    stream: TcpStream,
    parser: ResponseParser,
    /// Bytes queued to write (pipelined requests) + write cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// Scheduled times of requests written-or-queued, FIFO-matched to
    /// responses.
    inflight: VecDeque<Instant>,
    dead: bool,
}

/// The single-threaded nonblocking driver.
struct Driver {
    sessions: Vec<Session>,
}

impl Driver {
    fn connect(addr: SocketAddr, n: usize) -> std::io::Result<Self> {
        let mut sessions = Vec::with_capacity(n);
        for i in 0..n.max(1) {
            let stream = match TcpStream::connect_timeout(&addr, Duration::from_secs(10)) {
                Ok(s) => s,
                // Partial fleet (fd limit, admission cap): run with
                // what connected rather than refusing to measure.
                Err(e) if i > 0 => {
                    eprintln!("[loadgen] fleet capped at {i}/{n} sessions: {e}");
                    break;
                }
                Err(e) => return Err(e),
            };
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            sessions.push(Session {
                stream,
                parser: ResponseParser::new(),
                out: Vec::new(),
                out_pos: 0,
                inflight: VecDeque::new(),
                dead: false,
            });
        }
        Ok(Self { sessions })
    }

    fn run(&mut self, w: &Workload) -> std::io::Result<LoadReport> {
        let mut rng = SimRng::new(w.seed);
        let mut latency = Histogram::default();
        let (mut scheduled, mut completed, mut ok, mut shed_503, mut other_status, mut lost) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        let start = Instant::now();
        let window_end = start + w.duration;
        let mean_gap = 1.0 / w.rate.max(f64::MIN_POSITIVE);
        let mut next_arrival = start + Duration::from_secs_f64(rng.exponential(mean_gap));
        let mut scratch = vec![0u8; 16 * 1024];

        loop {
            let now = Instant::now();
            // Schedule every arrival that has come due. An overloaded
            // driver bursts here instead of thinning the offered load —
            // open loop means the schedule does not wait for anyone.
            while next_arrival <= now && next_arrival < window_end {
                let op = w.mix.pick(&mut rng);
                let s = rng.below(self.sessions.len());
                let sess = &mut self.sessions[s];
                if !sess.dead {
                    sess.out.extend_from_slice(&w.render(op));
                    sess.inflight.push_back(next_arrival);
                    scheduled += 1;
                } else {
                    scheduled += 1;
                    lost += 1;
                }
                next_arrival += Duration::from_secs_f64(rng.exponential(mean_gap));
            }

            // Sweep sessions: drain writes, pump reads through the
            // incremental response parser.
            let mut progress = false;
            for sess in &mut self.sessions {
                if sess.dead {
                    continue;
                }
                // Writes.
                while sess.out_pos < sess.out.len() {
                    match sess.stream.write(&sess.out[sess.out_pos..]) {
                        Ok(0) => {
                            sess.dead = true;
                            break;
                        }
                        Ok(n) => {
                            sess.out_pos += n;
                            progress = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            sess.dead = true;
                            break;
                        }
                    }
                }
                if sess.out_pos == sess.out.len() && !sess.out.is_empty() {
                    sess.out.clear();
                    sess.out_pos = 0;
                }
                // Reads.
                loop {
                    match sess.stream.read(&mut scratch) {
                        Ok(0) => {
                            sess.dead = true;
                            break;
                        }
                        Ok(n) => {
                            sess.parser.feed(&scratch[..n]);
                            progress = true;
                            if n < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            sess.dead = true;
                            break;
                        }
                    }
                }
                // Completions.
                loop {
                    match sess.parser.poll() {
                        Ok(Some((status, _body))) => {
                            let sent_at = match sess.inflight.pop_front() {
                                Some(t) => t,
                                None => {
                                    // A response with no matching
                                    // request: protocol breakage.
                                    sess.dead = true;
                                    break;
                                }
                            };
                            latency.record(Instant::now().duration_since(sent_at));
                            completed += 1;
                            match status {
                                200..=299 => ok += 1,
                                503 => shed_503 += 1,
                                _ => other_status += 1,
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            sess.dead = true;
                            break;
                        }
                    }
                }
                if sess.dead {
                    lost += sess.inflight.len() as u64;
                    sess.inflight.clear();
                }
            }

            let now = Instant::now();
            let in_flight: usize = self.sessions.iter().map(|s| s.inflight.len()).sum();
            if now >= window_end && in_flight == 0 {
                break;
            }
            if now >= window_end + DRAIN_GRACE {
                lost += in_flight as u64;
                break;
            }
            if !progress && next_arrival > now {
                // Nothing readable/writable and no arrival due: nap
                // until whichever comes first.
                let nap = next_arrival
                    .min(window_end + DRAIN_GRACE)
                    .saturating_duration_since(now)
                    .min(Duration::from_millis(1));
                std::thread::sleep(nap.max(Duration::from_micros(50)));
            }
        }

        let elapsed = w.duration.as_secs_f64().max(f64::MIN_POSITIVE);
        Ok(LoadReport {
            rate: w.rate,
            sessions: self.sessions.len(),
            scheduled,
            completed,
            ok,
            shed_503,
            other_status,
            lost,
            throughput: completed as f64 / elapsed,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_api::server::{ApiServer, ServerConfig};
    use shears_api::service::AtlasService;
    use shears_api::dto::CreateMeasurementDto;
    use shears_atlas::{Platform, PlatformConfig};

    #[test]
    fn histogram_quantiles_are_ordered_and_tight() {
        let mut h = Histogram::default();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        let (p50, p99, p999) = (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        // ~5% bucket resolution around the true medians.
        assert!((450.0..=560.0).contains(&p50), "{p50}");
        assert!((930.0..=1050.0).contains(&p99), "{p99}");
        assert!(h.max_ms() >= 999.0);
        assert!(h.mean_ms() > 400.0 && h.mean_ms() < 600.0);
    }

    #[test]
    fn mix_and_schedule_are_seed_deterministic() {
        let mix = TrafficMix::default();
        let draw = |seed: u64| -> Vec<(Op, usize, u64)> {
            let mut rng = SimRng::new(seed);
            (0..64)
                .map(|_| {
                    let op = mix.pick(&mut rng);
                    let sess = rng.below(16);
                    let gap_ns = (rng.exponential(0.005) * 1e9) as u64;
                    (op, sess, gap_ns)
                })
                .collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // All op kinds show up in a reasonable draw count.
        let ops = draw(7);
        for kind in [Op::Stats, Op::Results, Op::Listing] {
            assert!(ops.iter().any(|(o, _, _)| *o == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn open_loop_run_reports_completions_against_a_live_server() {
        let platform = Platform::build(&PlatformConfig::quick(4));
        let service = AtlasService::new(platform);
        // Seed the measurement the read mix targets, bypassing JSON so
        // the offline serde stub cannot starve the test.
        let created = service.create_from_spec(&CreateMeasurementDto {
            target_region: 0,
            packets: 1,
            rounds: 1,
            probe_limit: 3,
            country: None,
            fault_profile: None,
            retries: None,
            durability: false,
        });
        assert_eq!(created.status, 201);
        let server =
            ApiServer::spawn_with("127.0.0.1:0", service, ServerConfig::reactor(1, 2, 32))
                .unwrap();
        let mut w = Workload::new(200.0, 8);
        w.duration = Duration::from_millis(500);
        w.mix = TrafficMix::read_only();
        let report = w.run(server.local_addr()).unwrap();
        assert!(report.scheduled > 0, "nothing scheduled");
        assert_eq!(report.completed, report.scheduled - report.lost);
        assert!(report.ok > 0, "no 2xx at all: {}", report.to_json());
        assert_eq!(report.other_status, 0, "{}", report.to_json());
        assert!(report.latency.count() == report.completed);
        let json = report.to_json();
        assert!(json.contains("\"p999\""), "{json}");
        server.shutdown().unwrap();
    }
}
