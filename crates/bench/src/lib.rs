//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*`/`ext*` binary builds a platform and campaign through
//! [`Scale`], so one environment variable switches between a quick
//! desktop run and the paper-scale reproduction:
//!
//! ```sh
//! cargo run --release -p shears-bench --bin fig5_min_cdf                  # default scale
//! SHEARS_SCALE=paper cargo run --release -p shears-bench --bin fig5_min_cdf
//! SHEARS_SCALE=800x12 cargo run --release -p shears-bench --bin fig5_min_cdf
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

use shears_analysis::CampaignData;
use shears_atlas::{
    Campaign, CampaignConfig, FleetConfig, Platform, PlatformConfig, ResultStore,
};

/// Campaign scale: fleet size × rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Probe-fleet target size.
    pub probes: usize,
    /// Three-hourly measurement rounds.
    pub rounds: u32,
}

impl Scale {
    /// The default for interactive runs: a few minutes of wall clock.
    pub const DEFAULT: Scale = Scale {
        probes: 1200,
        rounds: 24,
    };

    /// The paper-scale run: 3200+ probes, ≈3.2 M samples.
    pub const PAPER: Scale = Scale {
        probes: 3200,
        rounds: 200,
    };

    /// Reads `SHEARS_SCALE` (`quick`, `paper`, or `<probes>x<rounds>`);
    /// anything unset or unparseable falls back to [`Scale::DEFAULT`].
    pub fn from_env() -> Scale {
        match std::env::var("SHEARS_SCALE") {
            Ok(v) => Self::parse(&v).unwrap_or(Scale::DEFAULT),
            Err(_) => Scale::DEFAULT,
        }
    }

    /// Parses a scale spec.
    pub fn parse(spec: &str) -> Option<Scale> {
        match spec {
            "quick" => Some(Scale {
                probes: 400,
                rounds: 8,
            }),
            "default" => Some(Scale::DEFAULT),
            "paper" => Some(Scale::PAPER),
            custom => {
                let (p, r) = custom.split_once('x')?;
                Some(Scale {
                    probes: p.trim().parse().ok()?,
                    rounds: r.trim().parse().ok()?,
                })
            }
        }
    }
}

/// Builds the platform for a scale (full catalogue, fixed seed so every
/// figure binary sees the same world).
pub fn build_platform(scale: Scale) -> Platform {
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: scale.probes,
            seed: 42,
        },
        ..PlatformConfig::default()
    })
}

/// Runs the campaign for a scale on all available cores.
pub fn run_campaign(platform: &Platform, scale: Scale) -> ResultStore {
    let cfg = CampaignConfig {
        rounds: scale.rounds,
        ..CampaignConfig::paper_scale()
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    Campaign::new(platform, cfg)
        .run_parallel(threads)
        .expect("paper-scale config carries an unlimited credit grant")
}

/// Convenience: platform + campaign + banner, the prologue every
/// campaign-based figure binary shares.
pub fn campaign_prologue(figure: &str) -> (Platform, ResultStore) {
    let scale = Scale::from_env();
    eprintln!(
        "[{figure}] scale: {} probes x {} rounds (set SHEARS_SCALE=paper for the full run)",
        scale.probes, scale.rounds
    );
    let platform = build_platform(scale);
    let store = run_campaign(&platform, scale);
    eprintln!(
        "[{figure}] campaign done: {} samples from {} probes",
        store.len(),
        platform.probes().len()
    );
    (platform, store)
}

/// Borrow a [`CampaignData`] view (helper so binaries stay terse).
///
/// The view lazily builds and memoizes the indexed `CampaignFrame` on
/// first use, so a binary that renders several figures from one view
/// pays for exactly one store scan — create the view once per campaign
/// and pass it to every analysis call.
pub fn view<'a>(platform: &'a Platform, store: &'a ResultStore) -> CampaignData<'a> {
    CampaignData::new(platform, store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::PAPER));
        assert_eq!(
            Scale::parse("800x12"),
            Some(Scale {
                probes: 800,
                rounds: 12
            })
        );
        assert_eq!(Scale::parse("800x"), None);
        assert_eq!(Scale::parse("nonsense"), None);
        assert_eq!(Scale::parse("quick").unwrap().probes, 400);
    }
}
