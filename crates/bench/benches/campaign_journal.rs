//! Cost of campaign durability: the write-ahead journal's append path
//! (what every durable round pays over a plain round), checkpoint
//! compaction, and cold-start replay of a finished journal.

use criterion::{criterion_group, criterion_main, Criterion};
use shears_atlas::journal::{self, JournalWriter};
use shears_atlas::{Campaign, CampaignConfig, CreditLedger, DurabilityConfig, Platform};
use shears_bench::{build_platform, Scale};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("shears-bench-journal-{}-{tag}.wal", std::process::id()))
}

fn bench_campaign_journal(c: &mut Criterion) {
    let platform: Platform = build_platform(Scale {
        probes: 300,
        rounds: 1,
    });
    let cfg = CampaignConfig {
        rounds: 2,
        targets_per_probe: 3,
        adjacent_targets: 2,
        ..CampaignConfig::paper_scale()
    };
    let campaign = Campaign::new(&platform, cfg);

    let mut group = c.benchmark_group("campaign_journal");
    group.sample_size(10);

    // The durability overhead head-to-head: plain vs journaled campaign
    // (no fsync — the deployment default; the OS flushes asynchronously
    // and the CRC/torn-tail machinery covers partial writes).
    group.bench_function("plain_300probes_2rounds", |b| {
        b.iter(|| Campaign::new(&platform, cfg).run().unwrap().len())
    });
    group.bench_function("durable_300probes_2rounds", |b| {
        let path = tmp("durable");
        b.iter(|| {
            campaign
                .run_durable(1, &DurabilityConfig::new(&path))
                .unwrap()
                .store
                .len()
        });
        let _ = std::fs::remove_file(&path);
    });
    group.bench_function("durable_parallel4", |b| {
        let path = tmp("durable4");
        b.iter(|| {
            campaign
                .run_durable(4, &DurabilityConfig::new(&path))
                .unwrap()
                .store
                .len()
        });
        let _ = std::fs::remove_file(&path);
    });

    // Raw journal primitives against a real run's samples.
    let outcome = {
        let path = tmp("seed");
        let out = campaign
            .run_durable(1, &DurabilityConfig::new(&path))
            .unwrap();
        let _ = std::fs::remove_file(&path);
        out
    };
    let header = campaign.journal_header();
    group.bench_function("append_round_frame", |b| {
        let path = tmp("append");
        b.iter(|| {
            let mut w = JournalWriter::create(&path, &header, false).unwrap();
            w.append_round(0, &outcome.store, 0, &outcome.ledger)
                .unwrap();
            w.sync().unwrap()
        });
        let _ = std::fs::remove_file(&path);
    });
    group.bench_function("checkpoint_compaction", |b| {
        let path = tmp("checkpoint");
        b.iter(|| {
            let mut w = JournalWriter::create(&path, &header, false).unwrap();
            w.checkpoint(cfg.rounds, &outcome.store, &outcome.ledger)
                .unwrap()
        });
        let _ = std::fs::remove_file(&path);
    });

    // Cold-start replay: what a resume pays before re-running rounds.
    {
        let path = tmp("replay");
        let mut w = JournalWriter::create(&path, &header, false).unwrap();
        let ledger = CreditLedger::new(cfg.credits);
        w.append_round(0, &outcome.store, 0, &ledger).unwrap();
        w.sync().unwrap();
        group.bench_function("replay_full_journal", |b| {
            b.iter(|| journal::replay(&path).unwrap().store.len())
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_journal);
criterion_main!(benches);
