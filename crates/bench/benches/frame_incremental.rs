//! Incremental-frame costs: what a streaming campaign pays to keep its
//! stats hot. Three angles on the same store:
//!
//! * `append_throughput` — indexing one newly landed round with
//!   `CampaignFrame::append` vs rebuilding the whole frame from
//!   scratch at that size (the cost the columnar/append tentpole
//!   removes from the per-round path).
//! * `stats_while_appending` — a full round-by-round campaign drain:
//!   per round, index the new samples and read the headline statistics
//!   off the frame (the API's stats-GET-during-resume pattern), vs the
//!   same drain rebuilding the frame each round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use shears_analysis::frame::CampaignFrame;
use shears_atlas::ResultStore;
use shears_bench::{build_platform, run_campaign, Scale};

/// Round boundaries (store index of each round's first row), derived
/// from the time column: rows land round-by-round, so a timestamp
/// change marks a new round.
fn round_cuts(store: &ResultStore) -> Vec<usize> {
    let ats = store.ats();
    let mut cuts = vec![0];
    for i in 1..store.len() {
        if ats[i] != ats[i - 1] {
            cuts.push(i);
        }
    }
    cuts.push(store.len());
    cuts
}

/// The prefix store holding the first `n` rows.
fn prefix(store: &ResultStore, n: usize) -> ResultStore {
    let mut p = ResultStore::with_capacity(n);
    for i in 0..n {
        p.push(store.get(i));
    }
    p
}

/// The per-GET statistics the API's stats endpoint reads off a frame.
fn read_stats(frame: &CampaignFrame) -> usize {
    let probes: usize = frame.probe_minima().count();
    let countries = frame.countries_measured();
    probes + countries + frame.responded_len()
}

fn bench_frame_incremental(c: &mut Criterion) {
    let scale = Scale {
        probes: 600,
        rounds: 8,
    };
    let platform = build_platform(scale);
    let store = run_campaign(&platform, scale);
    let cuts = round_cuts(&store);
    assert!(cuts.len() >= 3, "bench needs a multi-round campaign");

    // One round appended onto an all-but-last-round frame.
    let last_round = cuts[cuts.len() - 2];
    let head = prefix(&store, last_round);
    let warm = CampaignFrame::build(&platform, &head);
    let round_rows = store.len() - last_round;

    let mut group = c.benchmark_group("frame_incremental");
    group.throughput(Throughput::Elements(round_rows as u64));
    group.bench_function("append_one_round", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut frame| {
                frame.append(&store);
                frame.rows_indexed()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rebuild_at_full_size", |b| {
        b.iter(|| CampaignFrame::build(&platform, &store).rows_indexed())
    });

    // Full drain: land every round, read stats after each.
    group.throughput(Throughput::Elements(store.len() as u64));
    group.bench_function("stats_while_appending", |b| {
        b.iter(|| {
            let mut growing = ResultStore::with_capacity(store.len());
            for i in 0..cuts[1] {
                growing.push(store.get(i));
            }
            let mut frame = CampaignFrame::build(&platform, &growing);
            let mut acc = read_stats(&frame);
            for pair in cuts.windows(2).skip(1) {
                for i in pair[0]..pair[1] {
                    growing.push(store.get(i));
                }
                frame.append(&growing);
                acc += read_stats(&frame);
            }
            acc
        })
    });
    group.bench_function("stats_while_rebuilding", |b| {
        b.iter(|| {
            let mut growing = ResultStore::with_capacity(store.len());
            let mut acc = 0usize;
            for pair in cuts.windows(2) {
                for i in pair[0]..pair[1] {
                    growing.push(store.get(i));
                }
                let frame = CampaignFrame::build(&platform, &growing);
                acc += read_stats(&frame);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_frame_incremental);
criterion_main!(benches);
