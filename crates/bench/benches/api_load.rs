//! Load generation for the API read path: N client threads issue a
//! mixed GET workload (stats, measurement fetch, listing, credits) over
//! real keep-alive TCP connections against a pre-populated service.
//!
//! `mixed_read/{1,2,4,8}` reports time per request at each client
//! count; with the sharded service state and the epoch-keyed stats
//! cache, per-request time should hold roughly flat as clients are
//! added (aggregate throughput scaling with cores) instead of
//! serialising behind a global service lock. `scripts/bench.sh` emits
//! these estimates as `BENCH_api.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shears_api::client::ApiSession;
use shears_api::dto::CreateMeasurementDto;
use shears_api::server::ServerConfig;
use shears_api::{ApiClient, ApiServer, AtlasService};
use shears_atlas::{Platform, PlatformConfig};

/// The measurements the read workload targets.
const MEASUREMENTS: usize = 4;

fn mixed_path(ids: &[u64], i: u64) -> String {
    let id = ids[(i as usize / 4) % ids.len()];
    match i % 4 {
        0 => format!("/api/v2/measurements/{id}/stats"),
        1 => format!("/api/v2/measurements/{id}"),
        2 => "/api/v2/measurements".to_string(),
        _ => "/api/v2/credits".to_string(),
    }
}

fn bench_api_load(c: &mut Criterion) {
    let platform = Platform::build(&PlatformConfig::quick(5));
    // Reactor engine: keep-alive sessions cost no threads, but the
    // compute pool must outsize the widest client count (8) so closed-
    // loop clients never serialise behind a busy handler slot.
    let config = ServerConfig::reactor(2, 16, 64);
    let server = ApiServer::spawn_with("127.0.0.1:0", AtlasService::new(platform), config)
        .expect("bind server");
    let addr = server.local_addr();
    let client = ApiClient::new(addr);
    let ids: Vec<u64> = (0..MEASUREMENTS)
        .map(|region| {
            client
                .create_measurement(&CreateMeasurementDto {
                    target_region: region,
                    packets: 3,
                    rounds: 2,
                    probe_limit: 20,
                    country: None,
                    fault_profile: None,
                    retries: None,
                    durability: true,
                })
                .expect("seed measurement")
                .id
        })
        .collect();

    let mut group = c.benchmark_group("api_load");
    group.measurement_time(Duration::from_secs(8));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("mixed_read", threads), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let ids = &ids;
                        // Split iters across clients; remainder to the
                        // first ones so the total is exact.
                        let n = iters / threads as u64
                            + u64::from((t as u64) < iters % threads as u64);
                        s.spawn(move || {
                            let mut session =
                                ApiSession::connect(addr).expect("connect session");
                            for i in 0..n {
                                let path = mixed_path(ids, i.wrapping_add(t as u64));
                                let (status, _body) = session
                                    .request("GET", &path, None)
                                    .expect("request on keep-alive session");
                                assert_eq!(status, 200, "{path}");
                            }
                        });
                    }
                });
                start.elapsed()
            })
        });
    }
    // The cache-hot stats path alone, single client: an upper bound on
    // per-request cost when the frame never rebuilds.
    group.bench_function("stats_cached_single", |b| {
        let mut session = ApiSession::connect(addr).expect("connect session");
        let path = format!("/api/v2/measurements/{}/stats", ids[0]);
        b.iter(|| {
            let (status, _body) = session.request("GET", &path, None).expect("stats");
            status
        })
    });
    group.finish();
    server.shutdown().unwrap();
}

criterion_group!(benches, bench_api_load);
criterion_main!(benches);
