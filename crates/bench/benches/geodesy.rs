//! Geodesy primitives: haversine distance and grid nearest-neighbour,
//! called once per probe×target in topology construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shears_geo::{CountryAtlas, GeoPoint, SpatialGrid};

fn bench_geodesy(c: &mut Criterion) {
    let atlas = CountryAtlas::global();
    let points: Vec<GeoPoint> = atlas.countries().iter().map(|c| c.centroid).collect();

    let mut group = c.benchmark_group("geodesy");
    group.throughput(Throughput::Elements((points.len() * points.len()) as u64));
    group.bench_function("haversine_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in &points {
                for bpt in &points {
                    acc += a.distance_km(*bpt);
                }
            }
            acc
        })
    });

    let mut grid = SpatialGrid::new(5.0);
    for (i, p) in points.iter().enumerate() {
        grid.insert(*p, i);
    }
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("grid_nearest_per_country", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &points {
                let q = GeoPoint::new(p.lat + 3.0, p.lon - 3.0);
                acc += grid.nearest(q).map(|e| e.id).unwrap_or(0);
            }
            acc
        })
    });

    group.bench_function("grid_within_1000km", |b| {
        let munich = GeoPoint::new(48.1, 11.6);
        b.iter(|| grid.within(munich, 1000.0).len())
    });

    group.finish();
}

criterion_group!(benches, bench_geodesy);
criterion_main!(benches);
