//! Analysis-stage costs: ECDF construction, the per-figure passes over
//! a realistic result store, and the end-to-end `full_report` shape the
//! CampaignFrame refactor targets (one indexed scan amortised across
//! every figure instead of one store pass per figure).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shears_analysis::distribution::all_samples_cdfs;
use shears_analysis::headline::headline_numbers;
use shears_analysis::lastmile::last_mile_report;
use shears_analysis::proximity::{country_min_report, probe_min_cdfs};
use shears_analysis::stats::Ecdf;
use shears_analysis::CampaignData;
use shears_bench::{build_platform, run_campaign, Scale};
use shears_netsim::SimTime;

fn bench_analysis(c: &mut Criterion) {
    let scale = Scale {
        probes: 600,
        rounds: 8,
    };
    let platform = build_platform(scale);
    let store = run_campaign(&platform, scale);
    let data = CampaignData::new(&platform, &store);

    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(store.len() as u64));
    // Cost of the single indexed pass every figure now shares. A fresh
    // view per iteration forces the frame to be rebuilt each time.
    group.bench_function("frame_build", |b| {
        b.iter(|| CampaignData::new(&platform, &store).frame().filtered_len())
    });
    // The paper's whole figure set from one store: before the frame
    // refactor this cost ~15 O(n) scans; now it is one indexed build
    // (memoized on first use) plus per-figure index lookups.
    group.bench_function("full_report", |b| {
        b.iter(|| {
            let data = CampaignData::new(&platform, &store);
            let fig4 = country_min_report(&data).countries_measured();
            let fig5 = probe_min_cdfs(&data).by_continent.len();
            let fig6 = all_samples_cdfs(&data).by_continent.len();
            let fig7 = last_mile_report(&data, SimTime::from_hours(6))
                .map(|r| r.bins.len())
                .unwrap_or(0);
            let head = headline_numbers(&data).countries_under_10ms;
            fig4 + fig5 + fig6 + fig7 + head
        })
    });
    // Per-figure queries against an already-built (memoized) frame:
    // `data` lives outside the closures, so after the first call these
    // measure index-lookup cost only.
    group.bench_function("fig4_country_min", |b| {
        b.iter(|| country_min_report(&data).countries_measured())
    });
    group.bench_function("fig5_probe_min_cdfs", |b| {
        b.iter(|| probe_min_cdfs(&data).by_continent.len())
    });
    group.bench_function("fig6_all_samples_cdfs", |b| {
        b.iter(|| all_samples_cdfs(&data).by_continent.len())
    });
    group.bench_function("fig7_last_mile", |b| {
        b.iter(|| {
            last_mile_report(&data, SimTime::from_hours(6))
                .map(|r| r.bins.len())
                .unwrap_or(0)
        })
    });
    group.bench_function("headline_full_pass", |b| {
        b.iter(|| headline_numbers(&data).countries_under_10ms)
    });

    let samples: Vec<f64> = (0..100_000)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) % 100_000) as f64 / 100.0)
        .collect();
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("ecdf_build_100k", |b| {
        b.iter(|| Ecdf::new(samples.clone()).len())
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
