//! Column-kernel costs: what one pass over the columnar store pays per
//! element, scalar reference vs the chunked (autovectorised) fast path
//! — and, when built with `--features simd`, the explicit `std::simd`
//! variants. Three angles:
//!
//! * `min_argmin` / `sum` / `count_*` — the flat scans the frame,
//!   response-rate and ECDF paths run on every round.
//! * `percentile` — the bucketed selection kernel vs the
//!   clone-then-full-sort baseline it replaced in `Summary::of`.
//! * `region_min_scan` — the grouped minima scan behind
//!   `CampaignFrame::build`/`append`, on realistically shaped columns.
//!
//! Sizes cover a round of a quick run (4 K), a default campaign round
//! (64 K) and a paper-scale store segment (1 M).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shears_analysis::kernels::{self, ScanCols};
use shears_atlas::ProbeId;

const SIZES: [usize; 3] = [4 << 10, 64 << 10, 1 << 20];
const N_PROBES: usize = 512;
const N_REGIONS: u16 = 32;
const LOSS_PERMILLE: u64 = 100;

/// SplitMix64: deterministic column fill, no RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Synthetic store columns shaped like a real campaign: RTTs in
/// [5, 300) ms, ~10% lost rounds (`INFINITY` + `received == 0`).
struct Columns {
    probes: Vec<ProbeId>,
    regions: Vec<u16>,
    min_ms: Vec<f32>,
    received: Vec<u8>,
}

impl Columns {
    fn synth(n: usize, seed: u64) -> Columns {
        let mut s = seed;
        let mut probes = Vec::with_capacity(n);
        let mut regions = Vec::with_capacity(n);
        let mut min_ms = Vec::with_capacity(n);
        let mut received = Vec::with_capacity(n);
        for _ in 0..n {
            let r = splitmix(&mut s);
            probes.push(ProbeId((r % N_PROBES as u64) as u32));
            regions.push(((r >> 32) % u64::from(N_REGIONS)) as u16);
            let lost = r % 1000 < LOSS_PERMILLE;
            if lost {
                min_ms.push(f32::INFINITY);
                received.push(0);
            } else {
                min_ms.push(5.0 + (r >> 16) as f32 % 295.0);
                received.push(3);
            }
        }
        Columns {
            probes,
            regions,
            min_ms,
            received,
        }
    }

    fn scan(&self) -> ScanCols<'_> {
        ScanCols {
            probes: &self.probes,
            regions: &self.regions,
            min_ms: &self.min_ms,
            received: &self.received,
        }
    }
}

/// Benches one flat f32 kernel across variants and sizes.
macro_rules! flat_bench {
    ($c:expr, $name:literal, $col:ident, |$v:ident| $call:expr) => {{
        let mut group = $c.benchmark_group(concat!("kernel_scan/", $name));
        for &n in &SIZES {
            let cols = Columns::synth(n, 0xC0FFEE);
            let $col = &cols;
            group.throughput(Throughput::Elements(n as u64));
            {
                use kernels::scalar as $v;
                group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| b.iter(|| $call));
            }
            {
                use kernels::chunked as $v;
                group.bench_with_input(BenchmarkId::new("chunked", n), &n, |b, _| b.iter(|| $call));
            }
            #[cfg(feature = "simd")]
            {
                use kernels::simd as $v;
                group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| b.iter(|| $call));
            }
        }
        group.finish();
    }};
}

fn bench_flat_scans(c: &mut Criterion) {
    flat_bench!(c, "min_argmin", cols, |k| k::min_argmin(&cols.min_ms));
    flat_bench!(c, "sum", cols, |k| k::sum(&cols.min_ms));
    flat_bench!(c, "count_nonzero", cols, |k| k::count_nonzero(
        &cols.received
    ));
    flat_bench!(c, "count_at_or_below", cols, |k| k::count_at_or_below(
        &cols.min_ms,
        150.0
    ));
}

fn bench_percentile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scan/percentile");
    for &n in &SIZES {
        let cols = Columns::synth(n, 0xC0FFEE);
        let values: Vec<f64> = cols
            .min_ms
            .iter()
            .filter(|v| v.is_finite())
            .map(|&v| f64::from(v))
            .collect();
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_with_input(BenchmarkId::new("bucketed", n), &n, |b, _| {
            b.iter(|| kernels::percentile(&values, 0.95))
        });
        group.bench_with_input(BenchmarkId::new("sort_baseline", n), &n, |b, _| {
            b.iter(|| {
                // The pre-kernel path: clone, full sort, index.
                let mut v = values.clone();
                v.sort_unstable_by(f64::total_cmp);
                let k = ((0.95 * v.len() as f64).ceil() as usize)
                    .saturating_sub(1)
                    .min(v.len() - 1);
                v[k]
            })
        });
    }
    group.finish();
}

fn bench_region_min_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scan/region_min_scan");
    // Every 16th probe privileged, like the §4.1 mask.
    let privileged: Vec<bool> = (0..N_PROBES).map(|p| p % 16 == 0).collect();
    for &n in &SIZES {
        let cols = Columns::synth(n, 0xC0FFEE);
        let scan = cols.scan();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| kernels::scalar::region_min_scan(&scan, &privileged, 0, N_PROBES))
        });
        group.bench_with_input(BenchmarkId::new("chunked", n), &n, |b, _| {
            b.iter(|| kernels::chunked::region_min_scan(&scan, &privileged, 0, N_PROBES))
        });
        #[cfg(feature = "simd")]
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| kernels::simd::region_min_scan(&scan, &privileged, 0, N_PROBES))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_scans,
    bench_percentile,
    bench_region_min_scan
);
criterion_main!(benches);
