//! Wire-format codec throughput: encode/parse of Atlas-default echo
//! packets and raw checksum bandwidth.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shears_netsim::wire::{internet_checksum, EchoPacket};

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let pkt = EchoPacket::atlas_default(true, 42, 7);
    let encoded = pkt.encode();

    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_echo_76B", |b| b.iter(|| pkt.encode().len()));
    group.bench_function("parse_echo_76B", |b| {
        b.iter(|| EchoPacket::parse(&encoded).expect("valid"))
    });

    let block = vec![0xA5u8; 1500];
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("checksum_1500B", |b| b.iter(|| internet_checksum(&block)));
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
