//! Traceroute driver cost: per-trace route resolution plus hop
//! sampling on the world topology.

use criterion::{criterion_group, criterion_main, Criterion};
use shears_bench::{build_platform, Scale};
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::stochastic::SimRng;
use shears_netsim::{SimTime, TracerouteProber};

fn bench_traceroute(c: &mut Criterion) {
    let platform = build_platform(Scale {
        probes: 300,
        rounds: 1,
    });
    let probe = platform
        .probes()
        .iter()
        .find(|p| p.country == "BR")
        .expect("Brazilian probe");
    let target = platform.targets_for(probe, 1, 1)[0];

    let mut group = c.benchmark_group("traceroute");
    group.bench_function("trace_warm_cache", |b| {
        let mut prober = TracerouteProber::new(platform.topology());
        let mut rng = SimRng::new(3);
        // Prime the sub-path cache.
        let _ = prober.trace(
            platform.probe_node(probe.id),
            platform.dc_node(target as usize),
            Some(probe.access),
            DiurnalLoad::residential(),
            SimTime::ZERO,
            &mut rng,
        );
        b.iter(|| {
            prober
                .trace(
                    platform.probe_node(probe.id),
                    platform.dc_node(target as usize),
                    Some(probe.access),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(1),
                    &mut rng,
                )
                .map(|t| t.hops.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_traceroute);
criterion_main!(benches);
