//! Cost of the fault-injection and recovery machinery: a fault-free
//! round against the same round under a 5 %-loss burst profile with the
//! default retry policy, plus the passthrough case (fault machinery
//! active, zero events) whose cost must track fault-free.

use criterion::{criterion_group, criterion_main, Criterion};
use shears_atlas::recovery::RetryPolicy;
use shears_atlas::{Campaign, CampaignConfig, Platform};
use shears_bench::{build_platform, Scale};
use shears_netsim::fault::FaultConfig;

fn bench_faulty_campaign(c: &mut Criterion) {
    let platform: Platform = build_platform(Scale {
        probes: 300,
        rounds: 1,
    });
    let clean = CampaignConfig {
        rounds: 2,
        targets_per_probe: 3,
        adjacent_targets: 2,
        ..CampaignConfig::paper_scale()
    };
    // Campaign-wide ~5% extra loss: one long burst covering the window.
    let lossy = CampaignConfig {
        faults: FaultConfig {
            enabled: true,
            loss_bursts: 4,
            loss_burst_mean_hours: 10_000.0,
            loss_burst_extra: 0.05,
            ..FaultConfig::none()
        },
        recovery: RetryPolicy::atlas_default(),
        ..clean
    };
    let passthrough = CampaignConfig {
        faults: FaultConfig::passthrough(),
        ..clean
    };

    let mut group = c.benchmark_group("faulty_campaign");
    group.sample_size(10);
    group.bench_function("fault_free_300probes_2rounds", |b| {
        b.iter(|| Campaign::new(&platform, clean).run().unwrap().len())
    });
    group.bench_function("passthrough_300probes_2rounds", |b| {
        b.iter(|| Campaign::new(&platform, passthrough).run().unwrap().len())
    });
    group.bench_function("lossy5pct_retry_300probes_2rounds", |b| {
        b.iter(|| Campaign::new(&platform, lossy).run().unwrap().len())
    });
    group.bench_function("lossy5pct_retry_parallel4", |b| {
        b.iter(|| {
            Campaign::new(&platform, lossy)
                .run_parallel(4)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_faulty_campaign);
criterion_main!(benches);
