//! End-to-end campaign throughput: sequential vs sharded execution of
//! full measurement rounds (the number each figure run pays per round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shears_atlas::{Campaign, CampaignConfig, MeasurementType, Platform};
use shears_bench::{build_platform, Scale};

fn bench_campaign(c: &mut Criterion) {
    let platform: Platform = build_platform(Scale {
        probes: 300,
        rounds: 1,
    });
    let cfg = CampaignConfig {
        rounds: 2,
        targets_per_probe: 3,
        adjacent_targets: 2,
        ..CampaignConfig::paper_scale()
    };

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("sequential_300probes_2rounds", |b| {
        b.iter(|| Campaign::new(&platform, cfg).run().unwrap().len())
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel_300probes_2rounds", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Campaign::new(&platform, cfg)
                        .run_parallel(threads)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    // One full parallel round on all cores: the shared-RouteTable fast
    // path end to end (table build + every shard measuring through it).
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let round_cfg = CampaignConfig { rounds: 1, ..cfg };
    group.bench_function("full_parallel_round_all_cores", |b| {
        b.iter(|| {
            Campaign::new(&platform, round_cfg)
                .run_parallel(cores)
                .unwrap()
                .len()
        })
    });
    let tcp_cfg = CampaignConfig {
        kind: MeasurementType::TcpConnect,
        ..round_cfg
    };
    group.bench_function("full_parallel_round_tcp", |b| {
        b.iter(|| {
            Campaign::new(&platform, tcp_cfg)
                .run_parallel(cores)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
