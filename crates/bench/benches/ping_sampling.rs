//! Per-ping delay sampling: the per-round inner loop (RNG draws,
//! queueing model, access jitter) once routes are cached.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shears_bench::{build_platform, Scale};
use shears_netsim::access::{AccessLink, AccessTechnology};
use shears_netsim::ping::{PingConfig, PingProber};
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::stochastic::SimRng;
use shears_netsim::SimTime;

fn bench_ping(c: &mut Criterion) {
    let platform = build_platform(Scale {
        probes: 400,
        rounds: 1,
    });
    let probe = platform
        .probes()
        .iter()
        .find(|p| p.country == "DE")
        .expect("German probe exists");
    let target = platform.targets_for(probe, 1, 0)[0];

    let mut group = c.benchmark_group("ping");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("ping_1k_rounds_cached_route", |b| {
        let mut prober = PingProber::new(platform.topology());
        // Warm the route cache.
        let _ = prober.route(platform.probe_node(probe.id), platform.dc_node(target as usize));
        b.iter(|| {
            let mut rng = SimRng::new(7);
            let mut acc = 0.0;
            for i in 0..1000u64 {
                if let Some(out) = prober.ping(
                    platform.probe_node(probe.id),
                    platform.dc_node(target as usize),
                    Some(AccessLink::new(AccessTechnology::Dsl, 1.1)),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(i % 24),
                    &PingConfig::default(),
                    &mut rng,
                ) {
                    acc += out.min_ms().unwrap_or(0.0);
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ping);
criterion_main!(benches);
