//! HTTP API round-trip latency over real loopback sockets.

use criterion::{criterion_group, criterion_main, Criterion};
use shears_api::{ApiClient, ApiServer, AtlasService};
use shears_atlas::{Platform, PlatformConfig};

fn bench_api(c: &mut Criterion) {
    let platform = Platform::build(&PlatformConfig::quick(5));
    let server =
        ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).expect("bind server");
    let client = ApiClient::new(server.local_addr());

    let mut group = c.benchmark_group("api");
    group.bench_function("get_credits", |b| {
        b.iter(|| client.credits().expect("credits endpoint"))
    });
    group.bench_function("list_probes_limit_50", |b| {
        b.iter(|| client.list_probes(None, None, 50).expect("probes").len())
    });
    group.bench_function("list_regions_101", |b| {
        b.iter(|| client.list_regions().expect("regions").len())
    });
    group.finish();
    server.shutdown().unwrap();
}

criterion_group!(benches, bench_api);
criterion_main!(benches);
