//! Dijkstra routing over the world topology: the dominant cost of
//! campaign start-up (every probe×target pair is routed once).

use criterion::{criterion_group, criterion_main, Criterion};
use shears_bench::{build_platform, Scale};
use shears_netsim::routing::Router;

fn bench_routing(c: &mut Criterion) {
    let platform = build_platform(Scale {
        probes: 400,
        rounds: 1,
    });
    let probes: Vec<_> = platform.probes().iter().take(32).collect();

    let mut group = c.benchmark_group("routing");
    group.bench_function("dijkstra_cold_32_probes", |b| {
        b.iter(|| {
            let mut router = Router::new(platform.topology());
            let mut acc = 0.0;
            for probe in &probes {
                let targets = platform.targets_for(probe, 2, 0);
                for &t in &targets {
                    if let Some(p) =
                        router.path(platform.probe_node(probe.id), platform.dc_node(t as usize))
                    {
                        acc += p.base_one_way_ms;
                    }
                }
            }
            acc
        })
    });

    group.bench_function("dijkstra_warm_cache", |b| {
        let mut router = Router::new(platform.topology());
        // Prime the cache.
        for probe in &probes {
            for &t in &platform.targets_for(probe, 2, 0) {
                let _ = router.path(platform.probe_node(probe.id), platform.dc_node(t as usize));
            }
        }
        b.iter(|| {
            let mut acc = 0.0;
            for probe in &probes {
                for &t in &platform.targets_for(probe, 2, 0) {
                    if let Some(p) =
                        router.path(platform.probe_node(probe.id), platform.dc_node(t as usize))
                    {
                        acc += p.base_one_way_ms;
                    }
                }
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
