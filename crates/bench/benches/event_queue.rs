//! Discrete-event core throughput: schedule/pop cycles and cascaded
//! scheduling, the inner loop of every campaign.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use shears_netsim::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    // Pseudo-random firing times without an RNG dependency.
                    let t = i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000;
                    q.schedule(SimTime::from_nanos(t), i);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.payload);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("cascade_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule(SimTime::ZERO, 0u32);
            let mut n = 0u64;
            q.run_until(SimTime::from_secs(1), |q, ev| {
                n += 1;
                if ev.payload < 9_999 {
                    q.schedule_after(SimTime::from_nanos(50), ev.payload + 1);
                }
            });
            n
        })
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
