//! RouteTable construction and lookup: campaign start-up cost (one
//! shortest-path tree per probe, fanned out over threads) and the
//! steady-state route-resolution hot path (arena slice lookup vs the
//! incremental router's cache).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shears_bench::{build_platform, Scale};
use shears_netsim::routing::Router;

fn bench_route_table(c: &mut Criterion) {
    let platform = build_platform(Scale {
        probes: 400,
        rounds: 1,
    });
    let (same_continent, adjacent) = (3, 2);

    let mut group = c.benchmark_group("route_table");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("route_table_build", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    platform
                        .route_table(same_continent, adjacent, threads)
                        .route_count()
                })
            },
        );
    }
    group.finish();

    // Lookup path: every probe's first target, resolved repeatedly.
    let table = platform.route_table(same_continent, adjacent, 8);
    let pairs: Vec<_> = platform
        .probes()
        .iter()
        .filter_map(|p| {
            let &target = platform.targets_for(p, same_continent, adjacent).first()?;
            Some((platform.probe_node(p.id), platform.dc_node(target as usize)))
        })
        .collect();

    let mut group = c.benchmark_group("route_resolution");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("table_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(from, to) in &pairs {
                if let Some(p) = table.path(from, to) {
                    acc += p.base_one_way_ms;
                }
            }
            acc
        })
    });
    group.bench_function("router_warm_cache", |b| {
        let mut router = Router::new(platform.topology());
        for &(from, to) in &pairs {
            let _ = router.path(from, to);
        }
        b.iter(|| {
            let mut acc = 0.0;
            for &(from, to) in &pairs {
                if let Some(p) = router.path(from, to) {
                    acc += p.base_one_way_ms;
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_route_table);
criterion_main!(benches);
