//! Network topology: typed nodes and weighted links.
//!
//! The simulated Internet is an explicit graph. Nodes are the places
//! packets are forwarded (probe hosts, access routers, metro PoPs,
//! backbone PoPs, IXP hubs, datacenters); links carry a *base delay*
//! derived from great-circle distance and a per-link inflation factor,
//! plus class-dependent loss and processing parameters.
//!
//! Keeping the graph explicit — instead of computing point-to-point
//! delays from raw distance — is what makes the paper's structural
//! findings emerge naturally: a probe in a country without a datacenter
//! reaches the cloud *via its regional hub*, so its RTT reflects the
//! detour, exactly the effect behind Fig. 4's "countries near a
//! datacenter-hosting neighbour see <20 ms".

use serde::{Deserialize, Serialize};
use shears_geo::{GeoPoint, FIBER_SPEED_KM_PER_MS};

/// Opaque node handle (index into the topology's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index (stable for the lifetime of the topology).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Opaque link handle (index into the topology's link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is; determines per-hop processing delay and which roles
/// it may play in path selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host running a measurement probe.
    ProbeHost,
    /// First-hop aggregation router (DSLAM/CMTS/eNodeB-side gateway).
    AccessRouter,
    /// Metro point of presence: city-level aggregation.
    MetroPop,
    /// National/regional backbone PoP.
    BackbonePop,
    /// Major interconnection hub (IXP city, submarine-cable landing).
    IxpHub,
    /// Cloud datacenter front door.
    Datacenter,
    /// Edge computing site (extension experiments only).
    EdgeSite,
}

impl NodeKind {
    /// Whether the node is a stub endpoint: it can originate and sink
    /// traffic but never forwards third-party traffic (a probe host, a
    /// cloud datacenter or an edge site — in BGP terms, a stub AS).
    /// Routing never transits stub nodes.
    pub fn is_stub(self) -> bool {
        matches!(
            self,
            NodeKind::ProbeHost | NodeKind::Datacenter | NodeKind::EdgeSite
        )
    }

    /// Typical packet-processing-and-forwarding delay added per transit
    /// of a node of this kind, in milliseconds. Big IXP fabrics and DC
    /// front doors do slightly more work (ACLs, load balancing).
    pub fn processing_delay_ms(self) -> f64 {
        match self {
            NodeKind::ProbeHost => 0.05,
            NodeKind::AccessRouter => 0.15,
            NodeKind::MetroPop => 0.10,
            NodeKind::BackbonePop => 0.10,
            NodeKind::IxpHub => 0.20,
            NodeKind::Datacenter => 0.25,
            NodeKind::EdgeSite => 0.10,
        }
    }
}

/// Link technology class; sets loss floor and utilisation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Last-mile access segment (technology details live in
    /// [`crate::access`]; the topology only knows it is an access link).
    Access,
    /// Metro aggregation fibre.
    MetroAggregation,
    /// Terrestrial long-haul backbone fibre.
    TerrestrialBackbone,
    /// Submarine cable segment.
    SubmarineCable,
    /// Private cloud-provider backbone (lower inflation and loss — the
    /// paper notes Amazon/Google run "private, large bandwidth, low
    /// latency network backbones").
    PrivateBackbone,
    /// Intra-datacenter / DC front-door link.
    DatacenterFabric,
}

impl LinkClass {
    /// Base packet-loss probability per traversal, before congestion.
    pub fn base_loss(self) -> f64 {
        match self {
            LinkClass::Access => 0.002,
            LinkClass::MetroAggregation => 0.0005,
            LinkClass::TerrestrialBackbone => 0.0003,
            LinkClass::SubmarineCable => 0.0005,
            LinkClass::PrivateBackbone => 0.0001,
            LinkClass::DatacenterFabric => 0.0001,
        }
    }

    /// Nominal capacity of a link of this class, in Gbit/s. Used by the
    /// bandwidth-aggregation study (the paper's second edge motivation:
    /// "saving network bandwidth by aggregating large flows").
    pub fn capacity_gbps(self) -> f64 {
        match self {
            LinkClass::Access => 1.0,
            LinkClass::MetroAggregation => 100.0,
            LinkClass::TerrestrialBackbone => 400.0,
            LinkClass::SubmarineCable => 200.0,
            LinkClass::PrivateBackbone => 1000.0,
            LinkClass::DatacenterFabric => 1000.0,
        }
    }

    /// How strongly diurnal load drives queueing on this class of link.
    /// Access and under-provisioned long-haul segments congest; private
    /// backbones are over-provisioned by design.
    pub fn congestion_sensitivity(self) -> f64 {
        match self {
            LinkClass::Access => 1.0,
            LinkClass::MetroAggregation => 0.5,
            LinkClass::TerrestrialBackbone => 0.35,
            LinkClass::SubmarineCable => 0.45,
            LinkClass::PrivateBackbone => 0.08,
            LinkClass::DatacenterFabric => 0.05,
        }
    }

    /// Stable on-disk code for this class. Part of the campaign journal
    /// format: codes are append-only (new classes take fresh numbers,
    /// existing numbers are never reassigned) so old journals keep
    /// decoding.
    pub fn code(self) -> u8 {
        match self {
            LinkClass::Access => 0,
            LinkClass::MetroAggregation => 1,
            LinkClass::TerrestrialBackbone => 2,
            LinkClass::SubmarineCable => 3,
            LinkClass::PrivateBackbone => 4,
            LinkClass::DatacenterFabric => 5,
        }
    }

    /// Inverse of [`LinkClass::code`]; `None` for codes written by a
    /// newer format revision.
    pub fn from_code(code: u8) -> Option<LinkClass> {
        Some(match code {
            0 => LinkClass::Access,
            1 => LinkClass::MetroAggregation,
            2 => LinkClass::TerrestrialBackbone,
            3 => LinkClass::SubmarineCable,
            4 => LinkClass::PrivateBackbone,
            5 => LinkClass::DatacenterFabric,
            _ => return None,
        })
    }
}

/// A node in the topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Where it sits.
    pub location: GeoPoint,
    /// ISO country code of the site (used for diurnal local time and
    /// for per-country analysis joins).
    pub country: String,
    links: Vec<LinkId>,
}

impl Node {
    /// Links incident to this node.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }
}

/// An undirected link between two nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Technology class.
    pub class: LinkClass,
    /// One-way propagation delay in ms at the path floor (distance ×
    /// inflation ÷ fibre speed).
    pub base_delay_ms: f64,
    /// The inflation factor the delay was built with (kept for
    /// introspection/reporting).
    pub inflation: f64,
}

impl Link {
    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint of this link.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// The network graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its handle.
    ///
    /// # Panics
    /// Panics if the topology already holds `u32::MAX` nodes.
    pub fn add_node(&mut self, kind: NodeKind, location: GeoPoint, country: &str) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("topology node limit exceeded");
        self.nodes.push(Node {
            kind,
            location,
            country: country.to_string(),
            links: Vec::new(),
        });
        NodeId(id)
    }

    /// Connects two nodes with a link of the given class; the one-way
    /// base delay is computed from the great-circle distance between the
    /// endpoints multiplied by `inflation` (≥ 1: real fibre never runs
    /// the geodesic).
    ///
    /// # Panics
    /// Panics if `a == b`, if either id is stale, or if `inflation < 1`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, class: LinkClass, inflation: f64) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!(inflation >= 1.0, "inflation must be >= 1, got {inflation}");
        let dist = self.node(a).location.distance_km(self.node(b).location);
        let base_delay_ms = dist * inflation / FIBER_SPEED_KM_PER_MS;
        let id = u32::try_from(self.links.len()).expect("topology link limit exceeded");
        let link = LinkId(id);
        self.links.push(Link {
            a,
            b,
            class,
            base_delay_ms,
            inflation,
        });
        self.nodes[a.index()].links.push(link);
        self.nodes[b.index()].links.push(link);
        link
    }

    /// Connects two nodes with an explicit one-way delay instead of a
    /// distance-derived one (used for access links whose delay is set by
    /// the technology model, not geography).
    pub fn connect_with_delay(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: LinkClass,
        one_way_delay_ms: f64,
    ) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!(
            one_way_delay_ms >= 0.0 && one_way_delay_ms.is_finite(),
            "delay must be finite and non-negative"
        );
        let id = u32::try_from(self.links.len()).expect("topology link limit exceeded");
        let link = LinkId(id);
        self.links.push(Link {
            a,
            b,
            class,
            base_delay_ms: one_way_delay_ms,
            inflation: 1.0,
        });
        self.nodes[a.index()].links.push(link);
        self.nodes[b.index()].links.push(link);
        link
    }

    /// Node accessor. Panics on a stale id (ids are never invalidated,
    /// so this only fires on cross-topology misuse).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The first link directly connecting `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.nodes[a.index()]
            .links
            .iter()
            .copied()
            .find(|&l| self.links[l.index()].other(a) == Some(b))
    }

    /// Neighbours of `a` with the connecting link.
    pub fn neighbors(&self, a: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.nodes[a.index()].links.iter().map(move |&l| {
            let link = &self.links[l.index()];
            (link.other(a).expect("link is incident to a"), l)
        })
    }

    /// Ids of all nodes of the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind == kind)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn add_and_query_nodes() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(48.9, 2.4), "FR");
        let b = t.add_node(NodeKind::Datacenter, p(50.1, 8.7), "DE");
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.node(a).country, "FR");
        assert_eq!(t.node(b).kind, NodeKind::Datacenter);
    }

    #[test]
    fn connect_computes_base_delay_from_distance() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(48.85, 2.35), "FR");
        let b = t.add_node(NodeKind::MetroPop, p(52.52, 13.40), "DE");
        let l = t.connect(a, b, LinkClass::TerrestrialBackbone, 1.0);
        let d_km = p(48.85, 2.35).distance_km(p(52.52, 13.40));
        let want = d_km / FIBER_SPEED_KM_PER_MS;
        assert!((t.link(l).base_delay_ms - want).abs() < 1e-9);
        // Inflation scales linearly.
        let l2 = t.connect(a, b, LinkClass::TerrestrialBackbone, 2.0);
        assert!((t.link(l2).base_delay_ms - 2.0 * want).abs() < 1e-9);
    }

    #[test]
    fn neighbors_and_link_between() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, p(0.0, 1.0), "XX");
        let c = t.add_node(NodeKind::MetroPop, p(0.0, 2.0), "XX");
        let lab = t.connect(a, b, LinkClass::MetroAggregation, 1.1);
        t.connect(b, c, LinkClass::MetroAggregation, 1.1);
        assert_eq!(t.link_between(a, b), Some(lab));
        assert_eq!(t.link_between(a, c), None);
        let nbrs: Vec<NodeId> = t.neighbors(b).map(|(n, _)| n).collect();
        assert_eq!(nbrs, vec![a, c]);
    }

    #[test]
    fn explicit_delay_links() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, p(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::AccessRouter, p(0.0, 0.001), "XX");
        let l = t.connect_with_delay(a, b, LinkClass::Access, 7.5);
        assert_eq!(t.link(l).base_delay_ms, 7.5);
    }

    #[test]
    fn nodes_of_kind_filters() {
        let mut t = Topology::new();
        t.add_node(NodeKind::ProbeHost, p(0.0, 0.0), "XX");
        let dc1 = t.add_node(NodeKind::Datacenter, p(1.0, 0.0), "XX");
        let dc2 = t.add_node(NodeKind::Datacenter, p(2.0, 0.0), "YY");
        assert_eq!(t.nodes_of_kind(NodeKind::Datacenter), vec![dc1, dc2]);
        assert!(t.nodes_of_kind(NodeKind::IxpHub).is_empty());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_link() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(0.0, 0.0), "XX");
        t.connect(a, a, LinkClass::MetroAggregation, 1.0);
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn rejects_deflating_links() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, p(1.0, 0.0), "XX");
        t.connect(a, b, LinkClass::MetroAggregation, 0.9);
    }

    #[test]
    fn link_other_endpoint() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, p(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, p(1.0, 0.0), "XX");
        let c = t.add_node(NodeKind::MetroPop, p(2.0, 0.0), "XX");
        let l = t.connect(a, b, LinkClass::MetroAggregation, 1.0);
        assert_eq!(t.link(l).other(a), Some(b));
        assert_eq!(t.link(l).other(b), Some(a));
        assert_eq!(t.link(l).other(c), None);
    }

    #[test]
    fn class_parameters_are_ordered_sensibly() {
        // Private backbones must be both cleaner and less congestible
        // than the public classes — this ordering is what produces the
        // paper's provider-class differences.
        assert!(LinkClass::PrivateBackbone.base_loss() < LinkClass::TerrestrialBackbone.base_loss());
        assert!(
            LinkClass::PrivateBackbone.congestion_sensitivity()
                < LinkClass::SubmarineCable.congestion_sensitivity()
        );
        assert!(LinkClass::Access.congestion_sensitivity() >= 1.0);
    }
}
