//! Discrete-event core.
//!
//! A classic calendar queue over a binary heap. Determinism matters more
//! than raw speed here: two events at the same instant are delivered in
//! the order they were scheduled (FIFO tie-break via a monotone sequence
//! number), so a simulation run is a pure function of its inputs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event drawn from the queue: the payload plus when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// Monotone schedule order; unique per queue.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

struct HeapItem<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapItem<E> {}
impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first,
        // then lowest sequence number (FIFO among simultaneous events).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use shears_netsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// assert_eq!(q.pop().unwrap().payload, "a");
/// assert_eq!(q.pop().unwrap().payload, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapItem<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the firing time of the most recently
    /// popped event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error that would break causality, so it panics in debug and is
    /// clamped to `now` in release.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {now}",
            now = self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapItem { at, seq, payload });
        seq
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) -> u64 {
        self.schedule(self.now + delay, payload)
    }

    /// Removes and returns the earliest event, advancing `now`.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|item| {
            self.now = item.at;
            self.popped += 1;
            ScheduledEvent {
                at: item.at,
                seq: item.seq,
                payload: item.payload,
            }
        })
    }

    /// Returns the firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|i| i.at)
    }

    /// Drains events until the queue is empty or `until` is reached,
    /// calling `handler` for each. The handler may schedule more events.
    /// Returns the number of events delivered by this call.
    pub fn run_until(
        &mut self,
        until: SimTime,
        mut handler: impl FnMut(&mut Self, ScheduledEvent<E>),
    ) -> u64 {
        let mut count = 0;
        while let Some(at) = self.peek_time() {
            if at > until {
                break;
            }
            // Pop re-checked: peek_time and pop see the same heap top.
            let ev = self.pop().expect("peeked event present");
            count += 1;
            handler(self, ev);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        q.schedule_after(SimTime::from_millis(5), "second");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_millis(15));
    }

    #[test]
    fn run_until_respects_deadline_and_cascades() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        q.schedule(SimTime::from_millis(100), 99u32);
        let mut seen = Vec::new();
        let n = q.run_until(SimTime::from_millis(50), |q, ev| {
            seen.push(ev.payload);
            // Cascade: each event under 5 schedules a follow-up 1 ms later.
            if ev.payload < 5 {
                q.schedule_after(SimTime::from_millis(1), ev.payload + 1);
            }
        });
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(n, 5);
        assert_eq!(q.len(), 1, "the 100 ms event must remain queued");
    }

    #[test]
    fn delivered_counter() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        q.schedule(SimTime::from_millis(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(1), ());
    }
}
