//! # shears-netsim
//!
//! A deterministic, discrete-event wide-area network simulator producing
//! the RTT samples that the latency-shears reproduction analyses in place
//! of real Internet measurements.
//!
//! The paper attributes client-to-cloud latency to a small set of
//! mechanisms, each of which is modelled explicitly here:
//!
//! | Mechanism (paper §4) | Module |
//! |---|---|
//! | geodesic propagation at 2/3 c | [`topology`] link delays from `shears_geo` distances |
//! | path inflation / indirect routing | [`routing`] shortest paths over an explicit hub topology |
//! | congestion & bufferbloat | [`queue`] M/M/1-style sojourn + diurnal load, [`access`] bufferbloat episodes |
//! | last-mile access (wired vs wireless) | [`access`] per-technology delay/jitter models |
//! | packet loss | per-link and per-access loss probabilities in [`ping`] |
//!
//! The [`event`] module provides the discrete-event core
//! ([`event::EventQueue`]) used by the measurement campaign scheduler in
//! `shears-atlas`, and [`ping`] / [`tcp`] implement the two probing
//! methods the paper uses or plans to use (ICMP echo; TCP connect-time
//! probing per §5 "Network vs. application latency").
//!
//! All stochastic behaviour is seeded; the same seed produces the same
//! samples on every platform.
//!
//! ```
//! use shears_netsim::{LinkClass, Topology, NodeKind};
//! use shears_netsim::access::AccessTechnology;
//! use shears_geo::GeoPoint;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node(NodeKind::MetroPop, GeoPoint::new(48.9, 2.4), "FR");
//! let b = topo.add_node(NodeKind::MetroPop, GeoPoint::new(52.5, 13.4), "DE");
//! topo.connect(a, b, LinkClass::TerrestrialBackbone, 1.3);
//! assert!(topo.link_between(a, b).is_some());
//! assert!(AccessTechnology::Lte.is_wireless());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod event;
pub mod fault;
pub mod packetsim;
pub mod ping;
pub mod queue;
pub mod routing;
pub mod stochastic;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod traceroute;
pub mod wire;
pub mod worldnet;

pub use event::{EventQueue, ScheduledEvent};
pub use fault::{FaultClass, FaultConfig, FaultPlan, FaultRouter};
pub use ping::{PingConfig, PingOutcome, PingProber, RttBuf};
pub use routing::{PathInfo, PathRef, RouteSource, RouteTable, Router};
pub use tcp::{TcpConfig, TcpOutcome, TcpProber};
pub use traceroute::{TracerouteOutcome, TracerouteProber};
pub use time::SimTime;
pub use topology::{LinkClass, LinkId, NodeId, NodeKind, Topology};
pub use worldnet::{WorldNet, WorldNetConfig};
