//! Wire formats: IPv4 and ICMP echo packets.
//!
//! The simulator computes delays analytically, but the measurement
//! platform still speaks in packets: Atlas reports carry packet sizes,
//! the credit system charges per packet, and the API exposes raw
//! measurement records. This module provides the exact wire encoding a
//! real probe would emit — IPv4 header + ICMP echo with the Internet
//! checksum — so sizes, TTLs and identifiers in stored results are the
//! real thing rather than made-up constants.
//!
//! Encoding uses [`bytes::BufMut`]; parsing is zero-copy over a byte
//! slice with explicit bounds checks and checksum verification.

use bytes::{BufMut, BytesMut};

/// The RFC 1071 Internet checksum over a byte slice.
///
/// Odd-length inputs are padded with a zero byte, per the RFC.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Errors from packet parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Version/IHL fields malformed.
    BadHeader,
    /// Header or message checksum mismatch.
    BadChecksum,
    /// Not the protocol the parser expected.
    WrongProtocol,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadHeader => write!(f, "malformed header"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::WrongProtocol => write!(f, "unexpected protocol"),
        }
    }
}

impl std::error::Error for WireError {}

/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// ICMP type: echo request.
pub const ICMP_ECHO_REQUEST: u8 = 8;
/// ICMP type: echo reply.
pub const ICMP_ECHO_REPLY: u8 = 0;
/// Length of the fixed IPv4 header (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of the ICMP echo header.
pub const ICMP_HEADER_LEN: usize = 8;

/// An IPv4 + ICMP echo packet (request or reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EchoPacket {
    /// True for echo request, false for reply.
    pub is_request: bool,
    /// Source address (big-endian u32 form).
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// IP time-to-live.
    pub ttl: u8,
    /// Echo identifier (Atlas uses the measurement id).
    pub ident: u16,
    /// Echo sequence number (packet index within the round).
    pub seq: u16,
    /// Echo payload.
    pub payload: Vec<u8>,
}

impl EchoPacket {
    /// The Atlas ping default payload: 48 timestamp/cookie bytes,
    /// giving the classic 20 + 8 + 48 = 76-byte on-wire size.
    pub fn atlas_default(is_request: bool, ident: u16, seq: u16) -> Self {
        Self {
            is_request,
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            ttl: 64,
            ident,
            seq,
            payload: vec![0xA5; 48],
        }
    }

    /// Total on-wire length in bytes.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + ICMP_HEADER_LEN + self.payload.len()
    }

    /// Encodes the packet, computing both checksums.
    pub fn encode(&self) -> BytesMut {
        let total_len = self.wire_len();
        let mut buf = BytesMut::with_capacity(total_len);
        // IPv4 header.
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident); // identification mirrors the echo id
        buf.put_u16(0x4000); // DF, no fragments
        buf.put_u8(self.ttl);
        buf.put_u8(PROTO_ICMP);
        buf.put_u16(0); // header checksum placeholder
        buf.put_slice(&self.src);
        buf.put_slice(&self.dst);
        let hdr_csum = internet_checksum(&buf[..IPV4_HEADER_LEN]);
        buf[10..12].copy_from_slice(&hdr_csum.to_be_bytes());
        // ICMP echo.
        let icmp_start = buf.len();
        buf.put_u8(if self.is_request {
            ICMP_ECHO_REQUEST
        } else {
            ICMP_ECHO_REPLY
        });
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.ident);
        buf.put_u16(self.seq);
        buf.put_slice(&self.payload);
        let icmp_csum = internet_checksum(&buf[icmp_start..]);
        buf[icmp_start + 2..icmp_start + 4].copy_from_slice(&icmp_csum.to_be_bytes());
        buf
    }

    /// Parses and verifies a packet produced by [`EchoPacket::encode`]
    /// (or any conforming IPv4+ICMP echo).
    pub fn parse(data: &[u8]) -> Result<EchoPacket, WireError> {
        if data.len() < IPV4_HEADER_LEN + ICMP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] != 0x45 {
            return Err(WireError::BadHeader);
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len != data.len() {
            return Err(WireError::Truncated);
        }
        if internet_checksum(&data[..IPV4_HEADER_LEN]) != 0 {
            return Err(WireError::BadChecksum);
        }
        if data[9] != PROTO_ICMP {
            return Err(WireError::WrongProtocol);
        }
        let icmp = &data[IPV4_HEADER_LEN..];
        if internet_checksum(icmp) != 0 {
            return Err(WireError::BadChecksum);
        }
        let is_request = match icmp[0] {
            ICMP_ECHO_REQUEST => true,
            ICMP_ECHO_REPLY => false,
            _ => return Err(WireError::WrongProtocol),
        };
        Ok(EchoPacket {
            is_request,
            src: [data[12], data[13], data[14], data[15]],
            dst: [data[16], data[17], data[18], data[19]],
            ttl: data[8],
            ident: u16::from_be_bytes([icmp[4], icmp[5]]),
            seq: u16::from_be_bytes([icmp[6], icmp[7]]),
            payload: icmp[ICMP_HEADER_LEN..].to_vec(),
        })
    }

    /// Builds the matching reply for a request: addresses swapped,
    /// fresh TTL, same identifier/sequence/payload.
    pub fn reply_to(&self) -> EchoPacket {
        EchoPacket {
            is_request: false,
            src: self.dst,
            dst: self.src,
            ttl: 64,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_known_vector() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_of_checksummed_data_is_zero() {
        let pkt = EchoPacket::atlas_default(true, 42, 7).encode();
        assert_eq!(internet_checksum(&pkt[..IPV4_HEADER_LEN]), 0);
        assert_eq!(internet_checksum(&pkt[IPV4_HEADER_LEN..]), 0);
    }

    #[test]
    fn atlas_default_is_76_bytes() {
        let pkt = EchoPacket::atlas_default(true, 1, 0);
        assert_eq!(pkt.wire_len(), 76);
        assert_eq!(pkt.encode().len(), 76);
    }

    #[test]
    fn encode_parse_round_trip() {
        let pkt = EchoPacket {
            is_request: true,
            src: [192, 0, 2, 17],
            dst: [198, 51, 100, 4],
            ttl: 57,
            ident: 0xBEEF,
            seq: 3,
            payload: b"latency shears".to_vec(),
        };
        let parsed = EchoPacket::parse(&pkt.encode()).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn reply_swaps_addresses_and_keeps_identity() {
        let req = EchoPacket::atlas_default(true, 9, 2);
        let rep = req.reply_to();
        assert!(!rep.is_request);
        assert_eq!(rep.src, req.dst);
        assert_eq!(rep.dst, req.src);
        assert_eq!(rep.ident, 9);
        assert_eq!(rep.seq, 2);
        let parsed = EchoPacket::parse(&rep.encode()).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut pkt = EchoPacket::atlas_default(true, 1, 1).encode().to_vec();
        // Flip a payload byte: ICMP checksum must fail.
        let last = pkt.len() - 1;
        pkt[last] ^= 0xFF;
        assert_eq!(EchoPacket::parse(&pkt), Err(WireError::BadChecksum));
        // Truncation.
        assert_eq!(
            EchoPacket::parse(&pkt[..10]),
            Err(WireError::Truncated)
        );
        // Wrong version nibble.
        let mut pkt = EchoPacket::atlas_default(true, 1, 1).encode().to_vec();
        pkt[0] = 0x46;
        assert_eq!(EchoPacket::parse(&pkt), Err(WireError::BadHeader));
    }

    #[test]
    fn parse_rejects_non_icmp_protocol() {
        let mut pkt = EchoPacket::atlas_default(true, 1, 1).encode().to_vec();
        pkt[9] = 6; // TCP
        // Re-fix the header checksum so the protocol check is reached.
        pkt[10] = 0;
        pkt[11] = 0;
        let csum = internet_checksum(&pkt[..IPV4_HEADER_LEN]);
        pkt[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(EchoPacket::parse(&pkt), Err(WireError::WrongProtocol));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut pkt = EchoPacket::atlas_default(true, 1, 1).encode().to_vec();
        pkt.push(0); // trailing garbage
        assert_eq!(EchoPacket::parse(&pkt), Err(WireError::Truncated));
    }
}
