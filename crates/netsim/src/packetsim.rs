//! Event-driven packet-level ping execution.
//!
//! [`crate::ping::PathSampler`] computes a ping's RTT analytically in
//! one pass. This module executes the same measurement as a
//! discrete-event simulation: each packet's traversal of each hop is a
//! scheduled event on [`EventQueue`], with the hop delay sampled *at
//! the simulated instant the packet reaches that hop*.
//!
//! Two reasons this exists:
//!
//! * **validation** — for a single packet the event-driven execution
//!   reproduces a same-order analytic walk of the doubled path (same
//!   hop functions, same RNG stream) to within the diurnal drift of
//!   one RTT, and agrees with [`crate::ping::PingProber`] medians
//!   statistically; those tests license the fast analytic path for
//!   million-sample campaigns;
//! * **fidelity** — for multi-packet rounds the event-driven mode
//!   samples congestion at each packet's true arrival time, so a
//!   packet that crosses a hub *after* the local evening peak began
//!   sees the higher utilisation. The analytic mode approximates all of
//!   a packet's hops at its send time; the difference is negligible at
//!   ping timescales (the test quantifies it) — which is itself a
//!   result worth pinning.

use crate::access::AccessLink;
use crate::event::EventQueue;
use crate::ping::{hop_delay_ms, hop_loss_probability, PingOutcome};
use crate::queue::DiurnalLoad;
use crate::routing::PathInfo;
use crate::stochastic::SimRng;
use crate::time::SimTime;
use crate::topology::Topology;

/// One in-flight packet's position.
#[derive(Debug, Clone, Copy)]
struct PacketEvent {
    /// Packet index within the round.
    packet: u32,
    /// Next link to traverse (index into the doubled path), or the
    /// delivery marker when equal to the path length.
    leg: usize,
    /// Accumulated RTT so far, ms.
    elapsed_ms: f64,
}

/// Event-driven execution of a ping round over a resolved path.
///
/// Semantics match [`crate::ping::PingProber::ping`]: `packets` echo
/// requests paced one second apart, each traversing the path out and
/// back with per-hop sampled delays and loss; replies slower than
/// `timeout_ms` count as lost.
#[allow(clippy::too_many_arguments)]
pub fn ping_event_driven(
    topo: &Topology,
    path: &PathInfo,
    access: Option<AccessLink>,
    load: DiurnalLoad,
    start: SimTime,
    packets: u32,
    timeout_ms: f64,
    rng: &mut SimRng,
) -> PingOutcome {
    // The forward-then-reverse leg sequence: link indices into `path`,
    // with a flag for direction (processing nodes differ).
    let legs: usize = path.links.len() * 2;
    let mut queue: EventQueue<PacketEvent> = EventQueue::new();
    for packet in 0..packets {
        queue.schedule(
            start + SimTime::from_secs(u64::from(packet)),
            PacketEvent {
                packet,
                leg: 0,
                elapsed_ms: 0.0,
            },
        );
    }
    let mut rtts: Vec<(u32, f64)> = Vec::new();
    while let Some(ev) = queue.pop() {
        let PacketEvent {
            packet,
            leg,
            elapsed_ms,
        } = ev.payload;
        if leg == legs {
            // Delivered back to the source.
            if elapsed_ms <= timeout_ms {
                rtts.push((packet, elapsed_ms));
            }
            continue;
        }
        // Map the leg to a concrete link (forward then reverse order).
        let fwd = leg < path.links.len();
        let link_idx = if fwd {
            leg
        } else {
            legs - 1 - leg // reverse traversal
        };
        let is_first_hop_of_direction = (fwd && leg == 0) || (!fwd && leg == path.links.len());
        // Loss.
        if rng.chance(hop_loss_probability(
            topo,
            &path.links,
            link_idx,
            access,
            is_first_hop_of_direction,
        )) {
            continue; // packet dropped
        }
        let delay = hop_delay_ms(
            topo,
            &path.links,
            link_idx,
            access,
            is_first_hop_of_direction,
            load,
            ev.at,
            rng,
        );
        // Processing at the node the packet lands on (endpoints free).
        let node_idx = if fwd { link_idx + 1 } else { link_idx };
        let processing = if node_idx == 0 || node_idx == path.nodes.len() - 1 {
            0.0
        } else {
            topo.node(path.nodes[node_idx]).kind.processing_delay_ms()
        };
        let hop_ms = delay + processing;
        queue.schedule(
            ev.at + SimTime::from_millis_f64(hop_ms),
            PacketEvent {
                packet,
                leg: leg + 1,
                elapsed_ms: elapsed_ms + hop_ms,
            },
        );
    }
    rtts.sort_by_key(|&(p, _)| p);
    let mut outcome = PingOutcome::new(packets);
    for (_, rtt) in rtts {
        outcome.record(rtt);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTechnology;
    use crate::ping::PingProber;
    use crate::routing::Router;
    use crate::topology::{LinkClass, NodeKind};
    use shears_geo::GeoPoint;

    fn net() -> (Topology, crate::NodeId, crate::NodeId) {
        let mut t = Topology::new();
        let probe = t.add_node(NodeKind::ProbeHost, GeoPoint::new(48.1, 11.6), "DE");
        let ar = t.add_node(NodeKind::AccessRouter, GeoPoint::new(48.15, 11.58), "DE");
        let metro = t.add_node(NodeKind::MetroPop, GeoPoint::new(48.14, 11.56), "DE");
        let hub = t.add_node(NodeKind::IxpHub, GeoPoint::new(50.1, 8.7), "DE");
        let dc = t.add_node(NodeKind::Datacenter, GeoPoint::new(50.12, 8.72), "DE");
        t.connect_with_delay(probe, ar, LinkClass::Access, 4.0);
        t.connect(ar, metro, LinkClass::MetroAggregation, 1.2);
        t.connect(metro, hub, LinkClass::TerrestrialBackbone, 1.2);
        t.connect(hub, dc, LinkClass::DatacenterFabric, 1.1);
        (t, probe, dc)
    }

    fn access() -> AccessLink {
        AccessLink::new(AccessTechnology::Dsl, 1.0)
    }

    #[test]
    fn single_packet_matches_same_order_analytic_walk() {
        // The validation that licences the event engine: walking the
        // doubled path analytically with the *same* hop functions in
        // the *same* traversal order (forward 0..n, then reverse
        // n-1..0) and the same RNG stream must reproduce the
        // event-driven RTT almost exactly (residual difference: the
        // event run evaluates diurnal congestion at each hop's true
        // arrival instant, which within one RTT moves utilisation by a
        // hair).
        let (t, probe, dc) = net();
        let mut router = Router::new(&t);
        let path = router.path(probe, dc).unwrap().clone();
        let walk_analytically = |seed: u64| -> Option<f64> {
            let mut rng = SimRng::new(seed);
            let start = SimTime::from_hours(5);
            let n = path.links.len();
            let order: Vec<usize> = (0..n).chain((0..n).rev()).collect();
            let mut total = 0.0;
            for (step, &link_idx) in order.iter().enumerate() {
                let head = step == 0 || step == n;
                if rng.chance(hop_loss_probability(
                    &t,
                    &path.links,
                    link_idx,
                    Some(access()),
                    head,
                )) {
                    return None;
                }
                total += hop_delay_ms(
                    &t,
                    &path.links,
                    link_idx,
                    Some(access()),
                    head,
                    DiurnalLoad::residential(),
                    start,
                    &mut rng,
                );
                // Landing-node processing, endpoints free, mirroring the
                // event-driven accounting.
                let fwd = step < n;
                let node_idx = if fwd { link_idx + 1 } else { link_idx };
                if node_idx != 0 && node_idx != path.nodes.len() - 1 {
                    total += t.node(path.nodes[node_idx]).kind.processing_delay_ms();
                }
            }
            Some(total)
        };
        for seed in [1u64, 7, 42, 1234, 99] {
            let analytic = walk_analytically(seed);
            let event_driven = {
                let mut rng = SimRng::new(seed);
                ping_event_driven(
                    &t,
                    &path,
                    Some(access()),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(5),
                    1,
                    f64::INFINITY,
                    &mut rng,
                )
                .rtts_ms()
                .first()
                .copied()
            };
            match (analytic, event_driven) {
                (Some(a), Some(e)) => assert!(
                    (a - e).abs() < a * 0.01 + 0.02,
                    "seed {seed}: analytic walk {a} vs event-driven {e}"
                ),
                (None, None) => {}
                other => panic!("seed {seed}: loss outcome diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn multi_packet_round_agrees_statistically_with_prober() {
        let (t, probe, dc) = net();
        let mut prober = PingProber::new(&t);
        let mut router = Router::new(&t);
        let path = router.path(probe, dc).unwrap().clone();
        let mut analytic = Vec::new();
        let mut eventful = Vec::new();
        let mut rng_a = SimRng::new(5);
        let mut rng_b = SimRng::new(6);
        for i in 0..200u64 {
            let at = SimTime::from_hours(i % 24);
            if let Some(m) = prober
                .ping(
                    probe,
                    dc,
                    Some(access()),
                    DiurnalLoad::residential(),
                    at,
                    &crate::ping::PingConfig::default(),
                    &mut rng_a,
                )
                .unwrap()
                .min_ms()
            {
                analytic.push(m);
            }
            if let Some(m) = ping_event_driven(
                &t,
                &path,
                Some(access()),
                DiurnalLoad::residential(),
                at,
                3,
                4000.0,
                &mut rng_b,
            )
            .min_ms()
            {
                eventful.push(m);
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let ma = med(&mut analytic);
        let me = med(&mut eventful);
        assert!(
            (ma - me).abs() < ma * 0.1,
            "medians diverge: analytic {ma} vs event-driven {me}"
        );
    }

    #[test]
    fn timeout_drops_slow_replies() {
        let (t, probe, dc) = net();
        let mut router = Router::new(&t);
        let path = router.path(probe, dc).unwrap().clone();
        let mut rng = SimRng::new(9);
        let out = ping_event_driven(
            &t,
            &path,
            Some(access()),
            DiurnalLoad::residential(),
            SimTime::ZERO,
            5,
            0.001,
            &mut rng,
        );
        assert_eq!(out.received, 0);
        assert_eq!(out.sent, 5);
    }

    #[test]
    fn packets_complete_in_send_order_in_the_outcome() {
        let (t, probe, dc) = net();
        let mut router = Router::new(&t);
        let path = router.path(probe, dc).unwrap().clone();
        let mut rng = SimRng::new(21);
        let out = ping_event_driven(
            &t,
            &path,
            Some(access()),
            DiurnalLoad::residential(),
            SimTime::ZERO,
            3,
            4000.0,
            &mut rng,
        );
        // rtts_ms is ordered by packet index regardless of completion
        // interleaving (matching the prober's contract).
        assert_eq!(out.rtts_ms().len() as u32, out.received);
        assert!(out.received >= 2, "loss should be rare here");
    }
}
