//! Seedable random distributions used by the delay models.
//!
//! Latency noise on real paths is right-skewed: most samples sit near
//! the propagation floor with a heavy tail of congested ones. We use
//! log-normal jitter for the body and bounded Pareto spikes for
//! bufferbloat episodes — the combination the bufferbloat literature the
//! paper cites (Jiang et al., IMC '12) describes for 3G/4G access.
//!
//! Everything draws from a caller-owned [`SimRng`], so one seed fixes the
//! entire simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's random source: a small, fast, seedable PRNG.
///
/// `SmallRng` (xoshiro256++ on 64-bit platforms) is deterministic for a
/// given seed and rand version, which we pin in the workspace manifest.
#[derive(Debug)]
pub struct SimRng {
    rng: SmallRng,
    base_seed: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            base_seed: seed,
        }
    }

    /// Derives an independent child RNG; used to give every probe its
    /// own stream so that adding a probe never perturbs another's samples.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.rng.gen())
    }

    /// Derives a child RNG keyed by `(stream, index)` without consuming
    /// state from `self` — the SplitMix64 finalizer mixes the key into
    /// the parent seed. Lets the campaign give probe *i*, round *j* a
    /// reproducible stream regardless of execution order.
    pub fn fork_keyed(&self, stream: u64, index: u64) -> SimRng {
        // SplitMix64 finalisation over a combination of the parent's next
        // output (peeked via a clone) would consume state; instead mix the
        // key with golden-ratio increments.
        let mut z = stream
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(index.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(self.base_seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen::<f64>() < p
    }

    /// Standard normal via Box–Muller (single value; the pair's second
    /// half is discarded to keep the call stateless).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal sample parameterised by its **median** and the sigma of
    /// the underlying normal. `median` must be positive.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0 && sigma >= 0.0);
        median * (sigma * self.standard_normal()).exp()
    }

    /// Bounded Pareto sample on `[min, max]` with tail index `alpha`.
    /// Used for bufferbloat episodes: rare, large, heavy-tailed.
    pub fn bounded_pareto(&mut self, min: f64, max: f64, alpha: f64) -> f64 {
        debug_assert!(min > 0.0 && max > min && alpha > 0.0);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let (l, h) = (min.powf(alpha), max.powf(alpha));
        let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / alpha);
        x.clamp(min, max)
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Raw `u64` draw (for deriving seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_sibling_usage() {
        let mut parent1 = SimRng::new(1);
        let mut parent2 = SimRng::new(1);
        let mut c1 = parent1.fork();
        // parent2 forks twice; its first fork must equal parent1's first.
        let mut c2 = parent2.fork();
        let _ = parent2.fork();
        for _ in 0..10 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn keyed_fork_is_order_independent() {
        let parent = SimRng::new(99);
        let mut a = parent.fork_keyed(3, 14);
        let mut b = parent.fork_keyed(3, 14);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = parent.fork_keyed(3, 15);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn lognormal_median_is_respected() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mut v: Vec<f64> = (0..n).map(|_| rng.lognormal(10.0, 0.5)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[n / 2];
        assert!((median - 10.0).abs() < 0.3, "median {median}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(50.0, 2000.0, 1.2);
            assert!((50.0..=2000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn bounded_pareto_is_right_skewed() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.bounded_pareto(50.0, 2000.0, 1.2)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[n / 2];
        assert!(mean > median, "mean {mean} median {median}");
        // Most mass near the minimum.
        let near_min = samples.iter().filter(|&&x| x < 200.0).count();
        assert!(near_min > n / 2);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(29);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
