//! Last-mile access models.
//!
//! §4.3 of the paper ("Nature of last-mile access") shows probes tagged
//! `wireless` take ≈2.5× longer to reach the nearest cloud region than
//! wired probes, with 10–40 ms added latency — consistent with the home
//! broadband and LTE literature it cites. This module encodes those
//! per-technology characteristics: a base one-way delay, a log-normal
//! jitter body, heavy-tailed bufferbloat episodes (wireless only, per
//! Jiang et al.'s 3G/4G bufferbloat findings) and an access-loss rate.

use serde::{Deserialize, Serialize};

use crate::stochastic::SimRng;

/// The access technologies the RIPE Atlas tag vocabulary distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessTechnology {
    /// Office/datacenter-grade ethernet drop.
    Ethernet,
    /// Fibre to the home.
    Ftth,
    /// DOCSIS cable.
    Cable,
    /// DSL family (ADSL/VDSL).
    Dsl,
    /// Home WiFi behind a wired uplink (the WiFi hop dominates jitter).
    Wifi,
    /// Cellular LTE.
    Lte,
    /// Early 5G NSA deployment (paper §5: promised 1 ms, measured far
    /// from it — modelled as better than LTE but not MTP-grade).
    FiveG,
    /// Geostationary satellite (rare; a handful of Atlas probes).
    GeoSatellite,
}

impl AccessTechnology {
    /// All technologies (fleet synthesis iterates this).
    pub const ALL: [AccessTechnology; 8] = [
        AccessTechnology::Ethernet,
        AccessTechnology::Ftth,
        AccessTechnology::Cable,
        AccessTechnology::Dsl,
        AccessTechnology::Wifi,
        AccessTechnology::Lte,
        AccessTechnology::FiveG,
        AccessTechnology::GeoSatellite,
    ];

    /// Whether the Atlas tag vocabulary would call this wireless
    /// (`wifi`, `wlan`, `lte`, `5g`); drives the Fig. 7 split.
    pub fn is_wireless(self) -> bool {
        matches!(
            self,
            AccessTechnology::Wifi
                | AccessTechnology::Lte
                | AccessTechnology::FiveG
                | AccessTechnology::GeoSatellite
        )
    }

    /// The user tag string a probe host would set on RIPE Atlas.
    pub fn atlas_tag(self) -> &'static str {
        match self {
            AccessTechnology::Ethernet => "ethernet",
            AccessTechnology::Ftth => "fibre",
            AccessTechnology::Cable => "cable",
            AccessTechnology::Dsl => "dsl",
            AccessTechnology::Wifi => "wifi",
            AccessTechnology::Lte => "lte",
            AccessTechnology::FiveG => "5g",
            AccessTechnology::GeoSatellite => "satellite",
        }
    }

    /// Median one-way first-hop delay in ms.
    pub fn base_one_way_ms(self) -> f64 {
        match self {
            AccessTechnology::Ethernet => 0.3,
            AccessTechnology::Ftth => 1.5,
            AccessTechnology::Cable => 2.5,
            AccessTechnology::Dsl => 4.0,
            AccessTechnology::Wifi => 7.0,
            AccessTechnology::Lte => 20.0,
            AccessTechnology::FiveG => 8.0,
            AccessTechnology::GeoSatellite => 280.0,
        }
    }

    /// Sigma of the log-normal jitter body (dimensionless, applied to
    /// the base delay).
    pub fn jitter_sigma(self) -> f64 {
        match self {
            AccessTechnology::Ethernet => 0.08,
            AccessTechnology::Ftth => 0.10,
            AccessTechnology::Cable => 0.25,
            AccessTechnology::Dsl => 0.20,
            AccessTechnology::Wifi => 0.45,
            AccessTechnology::Lte => 0.50,
            AccessTechnology::FiveG => 0.40,
            AccessTechnology::GeoSatellite => 0.05,
        }
    }

    /// Per-ping probability of hitting a bufferbloat/handover episode.
    pub fn bloat_probability(self) -> f64 {
        match self {
            AccessTechnology::Ethernet | AccessTechnology::Ftth => 0.001,
            AccessTechnology::Cable => 0.004,
            AccessTechnology::Dsl => 0.004,
            AccessTechnology::Wifi => 0.03,
            AccessTechnology::Lte => 0.05,
            AccessTechnology::FiveG => 0.03,
            AccessTechnology::GeoSatellite => 0.02,
        }
    }

    /// Packet-loss probability on the access segment (per direction).
    pub fn loss_probability(self) -> f64 {
        match self {
            AccessTechnology::Ethernet | AccessTechnology::Ftth => 0.0005,
            AccessTechnology::Cable | AccessTechnology::Dsl => 0.002,
            AccessTechnology::Wifi => 0.008,
            AccessTechnology::Lte => 0.012,
            AccessTechnology::FiveG => 0.008,
            AccessTechnology::GeoSatellite => 0.01,
        }
    }
}

/// A probe's concrete access link: a technology plus a per-site quality
/// multiplier (poor in-home wiring, distance from DSLAM, cell-edge
/// radio) drawn once at fleet-synthesis time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AccessLink {
    /// Technology of the last mile.
    pub tech: AccessTechnology,
    /// Per-site multiplier on the base delay, ≥ 1 (1 = textbook install).
    pub site_quality: f64,
}

impl AccessLink {
    /// Creates a link; `site_quality` is clamped to ≥ 1.
    pub fn new(tech: AccessTechnology, site_quality: f64) -> Self {
        Self {
            tech,
            site_quality: site_quality.max(1.0),
        }
    }

    /// The deterministic one-way floor of this site's access segment.
    pub fn floor_one_way_ms(&self) -> f64 {
        self.tech.base_one_way_ms() * self.site_quality
    }

    /// Samples the one-way access delay for a single packet at the given
    /// moment: jittered base plus a possible bufferbloat episode.
    pub fn sample_one_way_ms(&self, rng: &mut SimRng) -> f64 {
        let base = self.floor_one_way_ms();
        let body = rng.lognormal(base, self.tech.jitter_sigma());
        let bloat = if rng.chance(self.tech.bloat_probability()) {
            // Bounded Pareto: rare episodes of tens to thousands of ms,
            // "delays lasting several seconds due to queue build-ups".
            rng.bounded_pareto(30.0, 3000.0, 1.15)
        } else {
            0.0
        };
        body + bloat
    }

    /// Whether a packet is lost on this segment (single direction).
    pub fn drops_packet(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.tech.loss_probability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wireless_classification_matches_paper_tags() {
        assert!(AccessTechnology::Wifi.is_wireless());
        assert!(AccessTechnology::Lte.is_wireless());
        assert!(!AccessTechnology::Ethernet.is_wireless());
        assert!(!AccessTechnology::Dsl.is_wireless());
        assert!(!AccessTechnology::Cable.is_wireless());
    }

    #[test]
    fn tags_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in AccessTechnology::ALL {
            assert!(seen.insert(t.atlas_tag()));
        }
    }

    #[test]
    fn lte_adds_10_to_40ms_rtt_over_ethernet() {
        // The paper cites 10–40 ms added latency for wireless last miles.
        let added_rtt =
            2.0 * (AccessTechnology::Lte.base_one_way_ms() - AccessTechnology::Ethernet.base_one_way_ms());
        assert!(
            (10.0..=40.0).contains(&added_rtt),
            "LTE adds {added_rtt} ms RTT"
        );
    }

    #[test]
    fn site_quality_clamps_to_one() {
        let l = AccessLink::new(AccessTechnology::Dsl, 0.2);
        assert_eq!(l.site_quality, 1.0);
        assert_eq!(l.floor_one_way_ms(), 4.0);
    }

    #[test]
    fn sampled_delay_centres_on_floor() {
        let l = AccessLink::new(AccessTechnology::Cable, 1.0);
        let mut rng = SimRng::new(3);
        let n = 5000;
        let mut v: Vec<f64> = (0..n).map(|_| l.sample_one_way_ms(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[n / 2];
        assert!(
            (median - 2.5).abs() < 0.5,
            "median {median} vs floor {}",
            l.floor_one_way_ms()
        );
    }

    #[test]
    fn wireless_has_heavier_tail_than_wired() {
        let wired = AccessLink::new(AccessTechnology::Ethernet, 1.0);
        let wifi = AccessLink::new(AccessTechnology::Wifi, 1.0);
        let mut rng = SimRng::new(5);
        let p99 = |l: &AccessLink, rng: &mut SimRng| {
            let mut v: Vec<f64> = (0..4000).map(|_| l.sample_one_way_ms(rng)).collect();
            v.sort_by(f64::total_cmp);
            v[(v.len() as f64 * 0.99) as usize]
        };
        let wired99 = p99(&wired, &mut rng);
        let wifi99 = p99(&wifi, &mut rng);
        assert!(
            wifi99 > 10.0 * wired99,
            "wifi p99 {wifi99} vs wired p99 {wired99}"
        );
    }

    #[test]
    fn loss_rates_ordered() {
        assert!(
            AccessTechnology::Lte.loss_probability()
                > AccessTechnology::Ethernet.loss_probability()
        );
    }

    #[test]
    fn packet_drops_track_loss_probability() {
        let l = AccessLink::new(AccessTechnology::Lte, 1.0);
        let mut rng = SimRng::new(31);
        let n = 50_000;
        let drops = (0..n).filter(|_| l.drops_packet(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        let want = AccessTechnology::Lte.loss_probability();
        assert!(
            (rate - want).abs() < want * 0.3,
            "drop rate {rate} vs configured {want}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let l = AccessLink::new(AccessTechnology::Lte, 1.2);
        let a: Vec<f64> = {
            let mut rng = SimRng::new(42);
            (0..50).map(|_| l.sample_one_way_ms(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SimRng::new(42);
            (0..50).map(|_| l.sample_one_way_ms(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
