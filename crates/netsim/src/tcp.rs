//! TCP connect-time probing.
//!
//! §5 of the paper ("Network vs. application latency") plans to extend
//! the methodology "to include TCP-based probing techniques that may
//! better reflect behavior of application traffic inbound cloud
//! networks". This module implements that extension: a simulated TCP
//! three-way handshake over the same [`PathSampler`] the ping prober
//! uses, including exponential-backoff SYN retransmission — the reason
//! TCP connect times have a lossy tail that ICMP minima hide.

use crate::access::AccessLink;
use crate::fault::{FaultPlan, FaultRouter};
use crate::ping::PathSampler;
use crate::queue::DiurnalLoad;
use crate::routing::{RouteSource, RouteTable, Router};
use crate::stochastic::SimRng;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::NodeId;

/// TCP handshake parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Initial retransmission timeout (RFC 6298 initial RTO), ms.
    pub initial_rto_ms: f64,
    /// Maximum SYN (re)transmissions before giving up.
    pub max_syn_attempts: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            initial_rto_ms: 1000.0,
            max_syn_attempts: 5,
        }
    }
}

/// Result of a simulated connection attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpOutcome {
    /// Time from first SYN to the client seeing SYN-ACK (i.e. the
    /// connect() latency), ms; `None` if the handshake never completed.
    pub connect_ms: Option<f64>,
    /// Number of SYNs sent (1 = no retransmission).
    pub syn_attempts: u32,
}

impl TcpOutcome {
    /// Whether the connection was established.
    pub fn established(&self) -> bool {
        self.connect_ms.is_some()
    }
}

/// TCP connect-time prober.
///
/// Routes come from either a private cached [`Router`]
/// ([`TcpProber::new`]) or a shared precomputed [`RouteTable`]
/// ([`TcpProber::with_table`]); handshake sampling is bit-identical
/// between the two, and the table-backed path never clones a route.
pub struct TcpProber<'t> {
    topo: &'t Topology,
    routes: RouteSource<'t>,
    faults: Option<&'t FaultPlan>,
}

impl<'t> TcpProber<'t> {
    /// Creates a prober over a frozen topology with its own incremental
    /// route cache.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            routes: RouteSource::Dynamic(Router::new(topo)),
            faults: None,
        }
    }

    /// Creates a prober that reads routes from a shared precomputed
    /// table (the campaign fast path).
    pub fn with_table(topo: &'t Topology, table: &'t RouteTable) -> Self {
        Self {
            topo,
            routes: RouteSource::Shared(table),
            faults: None,
        }
    }

    /// Creates a fault-aware prober: handshakes follow `plan`'s link-cut
    /// epochs and bursts, and SYNs to a blacked-out endpoint are dropped.
    /// With an empty plan the prober is bit-identical to
    /// [`TcpProber::new`].
    pub fn with_faults(topo: &'t Topology, plan: &'t FaultPlan) -> Self {
        Self {
            topo,
            routes: RouteSource::Faulty(FaultRouter::new(topo, plan)),
            faults: Some(plan),
        }
    }

    /// Attempts a TCP handshake from `from` to `to` starting at `t`.
    /// Returns `None` if the nodes are disconnected (or, for a
    /// table-backed prober, the pair was not resolved at build time).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        access: Option<AccessLink>,
        load: DiurnalLoad,
        t: SimTime,
        cfg: &TcpConfig,
        rng: &mut SimRng,
    ) -> Option<TcpOutcome> {
        let topo = self.topo;
        let faults = self.faults;
        let path = self.routes.path_at(from, to, t)?;
        let sampler = PathSampler::from_ref(path, topo, access, load).with_fault_plan(faults);
        let mut elapsed = 0.0_f64;
        let mut rto = cfg.initial_rto_ms;
        for attempt in 1..=cfg.max_syn_attempts {
            let now = t + SimTime::from_millis_f64(elapsed);
            // A blacked-out endpoint answers no SYN; the attempt fails
            // without consuming sampling draws (only reachable when
            // faults are scheduled, so the fault-free stream is intact).
            if faults.is_some_and(|p| p.node_down(to, now) || p.node_down(from, now)) {
                elapsed += rto;
                rto *= 2.0;
                continue;
            }
            // SYN out, SYN-ACK back: either leg may drop the packet.
            let syn = sampler.sample_one_way_ms(now, rng);
            let synack = match syn {
                Some(fwd) => sampler
                    .sample_one_way_ms(now + SimTime::from_millis_f64(fwd), rng)
                    .map(|rev| fwd + rev),
                None => None,
            };
            match synack {
                Some(rtt) if rtt <= rto => {
                    return Some(TcpOutcome {
                        connect_ms: Some(elapsed + rtt),
                        syn_attempts: attempt,
                    });
                }
                _ => {
                    // Lost or slower than the RTO: back off and retry.
                    elapsed += rto;
                    rto *= 2.0;
                }
            }
        }
        Some(TcpOutcome {
            connect_ms: None,
            syn_attempts: cfg.max_syn_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTechnology;
    use crate::topology::{LinkClass, NodeKind};
    use shears_geo::GeoPoint;

    fn net() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let probe = t.add_node(NodeKind::ProbeHost, GeoPoint::new(48.1, 11.6), "DE");
        let ar = t.add_node(NodeKind::AccessRouter, GeoPoint::new(48.15, 11.58), "DE");
        let dc = t.add_node(NodeKind::Datacenter, GeoPoint::new(50.1, 8.7), "DE");
        t.connect_with_delay(probe, ar, LinkClass::Access, 4.0);
        t.connect(ar, dc, LinkClass::TerrestrialBackbone, 1.3);
        (t, probe, dc)
    }

    #[test]
    fn connect_usually_takes_one_rtt() {
        let (t, probe, dc) = net();
        let mut prober = TcpProber::new(&t);
        let mut rng = SimRng::new(3);
        let mut one_shot = 0;
        let n = 200;
        for i in 0..n {
            let out = prober
                .connect(
                    probe,
                    dc,
                    Some(AccessLink::new(AccessTechnology::Ftth, 1.0)),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(i),
                    &TcpConfig::default(),
                    &mut rng,
                )
                .unwrap();
            assert!(out.established());
            if out.syn_attempts == 1 {
                one_shot += 1;
            }
        }
        assert!(one_shot > n * 9 / 10, "only {one_shot}/{n} one-shot connects");
    }

    #[test]
    fn retransmission_adds_at_least_initial_rto() {
        // Force a drop on the first SYN by making loss certain via a
        // lossy satellite access and tiny RTO so a slow sample retries.
        let (t, probe, dc) = net();
        let mut prober = TcpProber::new(&t);
        let mut rng = SimRng::new(11);
        let cfg = TcpConfig {
            initial_rto_ms: 0.001, // everything is slower than this
            max_syn_attempts: 3,
        };
        let out = prober
            .connect(
                probe,
                dc,
                Some(AccessLink::new(AccessTechnology::Ftth, 1.0)),
                DiurnalLoad::residential(),
                SimTime::ZERO,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(!out.established());
        assert_eq!(out.syn_attempts, 3);
    }

    #[test]
    fn disconnected_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::Datacenter, GeoPoint::new(1.0, 1.0), "XX");
        let mut prober = TcpProber::new(&t);
        let mut rng = SimRng::new(1);
        assert!(prober
            .connect(
                a,
                b,
                None,
                DiurnalLoad::backbone(),
                SimTime::ZERO,
                &TcpConfig::default(),
                &mut rng
            )
            .is_none());
    }

    #[test]
    fn table_backed_connect_matches_dynamic() {
        let (t, probe, dc) = net();
        let table = RouteTable::build(&t, &[(probe, vec![dc])], 1);
        for seed in [2u64, 13, 77] {
            let run = |prober: &mut TcpProber| {
                let mut rng = SimRng::new(seed);
                prober
                    .connect(
                        probe,
                        dc,
                        Some(AccessLink::new(AccessTechnology::Dsl, 1.0)),
                        DiurnalLoad::residential(),
                        SimTime::from_hours(19),
                        &TcpConfig::default(),
                        &mut rng,
                    )
                    .unwrap()
            };
            let dynamic = run(&mut TcpProber::new(&t));
            let shared = run(&mut TcpProber::with_table(&t, &table));
            assert_eq!(dynamic, shared, "seed {seed}");
        }
    }

    #[test]
    fn empty_fault_plan_connect_matches_dynamic() {
        let (t, probe, dc) = net();
        let plan = crate::fault::FaultPlan::empty("noop");
        for seed in [2u64, 13, 77] {
            let run = |prober: &mut TcpProber| {
                let mut rng = SimRng::new(seed);
                prober
                    .connect(
                        probe,
                        dc,
                        Some(AccessLink::new(AccessTechnology::Dsl, 1.0)),
                        DiurnalLoad::residential(),
                        SimTime::from_hours(19),
                        &TcpConfig::default(),
                        &mut rng,
                    )
                    .unwrap()
            };
            let dynamic = run(&mut TcpProber::new(&t));
            let faulty = run(&mut TcpProber::with_faults(&t, &plan));
            assert_eq!(dynamic, faulty, "seed {seed}");
        }
    }

    #[test]
    fn blacked_out_endpoint_never_establishes() {
        let (t, probe, dc) = net();
        let horizon = SimTime::from_days(30);
        let mut cfg = crate::fault::FaultConfig::blackout();
        cfg.dc_blackouts = 64;
        cfg.blackout_mean_hours = 1_000.0;
        let plan = crate::fault::FaultPlan::generate(&t, &cfg, 3, horizon);
        let down_at = (0..720)
            .map(SimTime::from_hours)
            .find(|&at| plan.node_down(dc, at) && plan.node_down(dc, at + SimTime::from_secs(60)))
            .expect("64 long blackouts must cover some probed instant");
        let mut prober = TcpProber::with_faults(&t, &plan);
        let mut rng = SimRng::new(9);
        let out = prober
            .connect(
                probe,
                dc,
                Some(AccessLink::new(AccessTechnology::Ftth, 1.0)),
                DiurnalLoad::residential(),
                down_at,
                &TcpConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert!(!out.established());
        assert_eq!(out.syn_attempts, TcpConfig::default().max_syn_attempts);
    }

    #[test]
    fn connect_time_close_to_ping_rtt_on_clean_paths() {
        // The Facebook IMC'19 comparison in §5 rests on TCP times
        // tracking ICMP RTTs; verify medians agree within jitter.
        let (t, probe, dc) = net();
        let access = AccessLink::new(AccessTechnology::Ethernet, 1.0);
        let mut tcp = TcpProber::new(&t);
        let mut png = crate::ping::PingProber::new(&t);
        let mut rng = SimRng::new(21);
        let mut tcp_times = Vec::new();
        let mut ping_times = Vec::new();
        for i in 0..300u64 {
            let at = SimTime::from_hours(i % 24) + SimTime::from_secs(i * 60);
            if let Some(o) = tcp
                .connect(
                    probe,
                    dc,
                    Some(access),
                    DiurnalLoad::residential(),
                    at,
                    &TcpConfig::default(),
                    &mut rng,
                )
                .unwrap()
                .connect_ms
            {
                tcp_times.push(o);
            }
            if let Some(m) = png
                .ping(
                    probe,
                    dc,
                    Some(access),
                    DiurnalLoad::residential(),
                    at,
                    &crate::ping::PingConfig::default(),
                    &mut rng,
                )
                .unwrap()
                .min_ms()
            {
                ping_times.push(m);
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let tcp_med = med(&mut tcp_times);
        let ping_med = med(&mut ping_times);
        // TCP medians sit above ping minima (ping takes min of 3) but
        // within a factor 2 on a clean wired path.
        assert!(
            tcp_med >= ping_med && tcp_med < ping_med * 2.0,
            "tcp {tcp_med} vs ping {ping_med}"
        );
    }
}
