//! Traceroute-style path exposure.
//!
//! RIPE Atlas runs traceroute alongside ping, and the paper's §5 plans
//! TCP-traceroute probing. The simulator equivalent walks the resolved
//! route hop by hop, reporting per-hop RTTs the way an ICMP
//! time-exceeded sweep would — including the classic artefacts:
//! per-hop samples are taken at different instants (so a congested
//! middle hop can report a *higher* RTT than the destination) and
//! routers may be slow to generate ICMP errors (modelled via the node's
//! processing delay).
//!
//! The analysis side uses the hop records for delay *attribution*:
//! "Where is the Delay?" (§4.3) decomposed into access, metro,
//! national backbone, inter-hub and datacenter segments.
//!
//! Per-TTL sub-paths are prefixes of the full shortest path (the
//! predecessor chain of a shortest-path tree is prefix-closed), so the
//! walk slices the one resolved route instead of re-running Dijkstra
//! per hop — no per-hop route lookups or clones.

use crate::access::AccessLink;
use crate::ping::PathSampler;
use crate::queue::DiurnalLoad;
use crate::routing::{PathRef, RouteSource, RouteTable, Router};
use crate::stochastic::SimRng;
use crate::time::SimTime;
use crate::topology::{NodeId, NodeKind, Topology};

/// One hop of a traceroute.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Hop index (1 = first router after the source).
    pub ttl: u8,
    /// The responding node.
    pub node: NodeId,
    /// What kind of node answered.
    pub kind: NodeKind,
    /// Measured RTT to this hop, ms (`None` if all probes timed out —
    /// some nodes rate-limit ICMP errors).
    pub rtt_ms: Option<f64>,
}

/// A complete traceroute result.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteOutcome {
    /// Hops in path order (destination last when reached).
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl TracerouteOutcome {
    /// RTT to the destination if it was reached and answered.
    pub fn destination_rtt_ms(&self) -> Option<f64> {
        if self.reached {
            self.hops.last().and_then(|h| h.rtt_ms)
        } else {
            None
        }
    }

    /// The per-segment delay attribution: consecutive-hop RTT deltas
    /// clamped at zero (negative deltas are the familiar traceroute
    /// artefact of per-hop sampling at different instants), keyed by the
    /// *far* hop's node kind. The access segment is hop 1's RTT.
    pub fn segment_deltas(&self) -> Vec<(NodeKind, f64)> {
        let mut out = Vec::new();
        let mut prev = 0.0;
        for hop in &self.hops {
            if let Some(rtt) = hop.rtt_ms {
                out.push((hop.kind, (rtt - prev).max(0.0)));
                prev = rtt;
            }
        }
        out
    }
}

/// Probability a transit node ignores traceroute probes entirely
/// (ICMP rate-limiting); hubs do it most.
fn icmp_silence_probability(kind: NodeKind) -> f64 {
    match kind {
        NodeKind::IxpHub => 0.08,
        NodeKind::BackbonePop => 0.04,
        _ => 0.01,
    }
}

/// Traceroute driver over the shared [`PathSampler`] delay engine.
pub struct TracerouteProber<'t> {
    topo: &'t Topology,
    routes: RouteSource<'t>,
}

impl<'t> TracerouteProber<'t> {
    /// Creates a prober over a frozen topology with its own incremental
    /// route cache.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            routes: RouteSource::Dynamic(Router::new(topo)),
        }
    }

    /// Creates a prober that reads routes from a shared precomputed
    /// table.
    pub fn with_table(topo: &'t Topology, table: &'t RouteTable) -> Self {
        Self {
            topo,
            routes: RouteSource::Shared(table),
        }
    }

    /// Runs a traceroute from `from` to `to` at instant `t`. Returns
    /// `None` if the nodes are disconnected.
    pub fn trace(
        &mut self,
        from: NodeId,
        to: NodeId,
        access: Option<AccessLink>,
        load: DiurnalLoad,
        t: SimTime,
        rng: &mut SimRng,
    ) -> Option<TracerouteOutcome> {
        let topo = self.topo;
        let full = self.routes.path(from, to)?;
        let mut hops = Vec::with_capacity(full.nodes.len());
        let mut reached = false;
        // Running one-way floor of the prefix ending at the current hop.
        // Two separate additions per hop replay the Dijkstra relaxation
        // `(d + proc) + link` exactly, keeping the prefix floors
        // bit-equal to a dedicated per-hop route resolution.
        let mut prefix_base = 0.0_f64;
        // One probe per TTL, like `traceroute -q 1`.
        for (ttl, &hop_node) in full.nodes.iter().enumerate().skip(1) {
            if ttl >= 2 {
                prefix_base += topo.node(full.nodes[ttl - 1]).kind.processing_delay_ms();
            }
            prefix_base += topo.link(full.links[ttl - 1]).base_delay_ms;
            let kind = topo.node(hop_node).kind;
            let is_destination = hop_node == to;
            let silent = !is_destination && rng.chance(icmp_silence_probability(kind));
            let rtt_ms = if silent {
                None
            } else {
                // RTT to this hop: the path prefix there and back,
                // sampled at the instant this TTL's probe departs.
                let sub = PathRef {
                    links: &full.links[..ttl],
                    nodes: &full.nodes[..=ttl],
                    base_one_way_ms: prefix_base,
                };
                let sampler = PathSampler::from_ref(sub, topo, access, load);
                let at = t + SimTime::from_millis(ttl as u64 * 50);
                sampler.sample_rtt_ms(at, rng).map(|rtt| {
                    // ICMP error generation happens on the slow path of
                    // the router CPU; destinations answer echo directly.
                    if is_destination {
                        rtt
                    } else {
                        rtt + kind.processing_delay_ms() * 4.0
                    }
                })
            };
            if is_destination && rtt_ms.is_some() {
                reached = true;
            }
            hops.push(Hop {
                ttl: ttl.min(255) as u8,
                node: hop_node,
                kind,
                rtt_ms,
            });
        }
        Some(TracerouteOutcome { hops, reached })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTechnology;
    use crate::topology::LinkClass;
    use shears_geo::GeoPoint;

    fn net() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let probe = t.add_node(NodeKind::ProbeHost, GeoPoint::new(48.1, 11.6), "DE");
        let ar = t.add_node(NodeKind::AccessRouter, GeoPoint::new(48.15, 11.58), "DE");
        let metro = t.add_node(NodeKind::MetroPop, GeoPoint::new(48.14, 11.56), "DE");
        let hub = t.add_node(NodeKind::IxpHub, GeoPoint::new(50.1, 8.7), "DE");
        let dc = t.add_node(NodeKind::Datacenter, GeoPoint::new(50.12, 8.72), "DE");
        t.connect_with_delay(probe, ar, LinkClass::Access, 4.0);
        t.connect(ar, metro, LinkClass::MetroAggregation, 1.2);
        t.connect(metro, hub, LinkClass::TerrestrialBackbone, 1.2);
        t.connect(hub, dc, LinkClass::DatacenterFabric, 1.1);
        (t, probe, dc)
    }

    fn access() -> AccessLink {
        AccessLink::new(AccessTechnology::Ftth, 1.0)
    }

    #[test]
    fn trace_walks_every_hop_to_destination() {
        let (t, probe, dc) = net();
        let mut prober = TracerouteProber::new(&t);
        let mut rng = SimRng::new(3);
        let out = prober
            .trace(
                probe,
                dc,
                Some(access()),
                DiurnalLoad::residential(),
                SimTime::from_hours(4),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.hops.len(), 4, "AR, metro, hub, DC");
        assert_eq!(out.hops[0].kind, NodeKind::AccessRouter);
        assert_eq!(out.hops.last().unwrap().kind, NodeKind::Datacenter);
        assert!(out.reached);
        assert!(out.destination_rtt_ms().unwrap() > 0.0);
    }

    #[test]
    fn hop_rtts_grow_roughly_monotonically() {
        let (t, probe, dc) = net();
        let mut prober = TracerouteProber::new(&t);
        let mut rng = SimRng::new(5);
        // Median over repetitions to smooth the per-instant artefact.
        let mut medians = vec![Vec::new(); 4];
        for i in 0..60u64 {
            let out = prober
                .trace(
                    probe,
                    dc,
                    Some(access()),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(i),
                    &mut rng,
                )
                .unwrap();
            for (j, hop) in out.hops.iter().enumerate() {
                if let Some(rtt) = hop.rtt_ms {
                    medians[j].push(rtt);
                }
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let m: Vec<f64> = medians.iter_mut().map(med).collect();
        // First hop (access) is well below destination RTT.
        assert!(m[0] < m[3], "access {} vs destination {}", m[0], m[3]);
        // Backbone hop dominates the delta in this net.
        assert!(m[2] > m[1]);
    }

    #[test]
    fn segment_deltas_sum_to_destination_rtt() {
        let (t, probe, dc) = net();
        let mut prober = TracerouteProber::new(&t);
        let mut rng = SimRng::new(9);
        let out = prober
            .trace(
                probe,
                dc,
                Some(access()),
                DiurnalLoad::residential(),
                SimTime::from_hours(2),
                &mut rng,
            )
            .unwrap();
        if let Some(dest) = out.destination_rtt_ms() {
            let sum: f64 = out.segment_deltas().iter().map(|(_, d)| d).sum();
            // Clamped negatives can make the sum exceed the destination
            // RTT slightly; it can never undershoot.
            assert!(sum >= dest - 1e-9, "sum {sum} < dest {dest}");
        }
    }

    #[test]
    fn disconnected_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::Datacenter, GeoPoint::new(1.0, 1.0), "XX");
        let mut prober = TracerouteProber::new(&t);
        let mut rng = SimRng::new(1);
        assert!(prober
            .trace(a, b, None, DiurnalLoad::backbone(), SimTime::ZERO, &mut rng)
            .is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let (t, probe, dc) = net();
        let run = |seed| {
            let mut prober = TracerouteProber::new(&t);
            let mut rng = SimRng::new(seed);
            prober
                .trace(
                    probe,
                    dc,
                    Some(access()),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(1),
                    &mut rng,
                )
                .unwrap()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn table_backed_trace_matches_dynamic() {
        let (t, probe, dc) = net();
        let table = RouteTable::build(&t, &[(probe, vec![dc])], 1);
        for seed in [4u64, 19, 61] {
            let run = |prober: &mut TracerouteProber| {
                let mut rng = SimRng::new(seed);
                prober
                    .trace(
                        probe,
                        dc,
                        Some(access()),
                        DiurnalLoad::residential(),
                        SimTime::from_hours(7),
                        &mut rng,
                    )
                    .unwrap()
            };
            let dynamic = run(&mut TracerouteProber::new(&t));
            let shared = run(&mut TracerouteProber::with_table(&t, &table));
            assert_eq!(dynamic, shared, "seed {seed}");
        }
    }

    #[test]
    fn prefix_floor_matches_dedicated_route_resolution() {
        // The prefix-slice optimisation must not drift from what a
        // per-hop Dijkstra would report, down to the floor delay.
        let (t, probe, dc) = net();
        let mut router = Router::new(&t);
        let full = router.path(probe, dc).unwrap().clone();
        let mut again = Router::new(&t);
        let mut prefix_base = 0.0_f64;
        for ttl in 1..full.nodes.len() {
            if ttl >= 2 {
                prefix_base += t.node(full.nodes[ttl - 1]).kind.processing_delay_ms();
            }
            prefix_base += t.link(full.links[ttl - 1]).base_delay_ms;
            let dedicated = again.path(probe, full.nodes[ttl]).unwrap();
            assert_eq!(dedicated.base_one_way_ms.to_bits(), prefix_base.to_bits());
            assert_eq!(dedicated.links, full.links[..ttl]);
            assert_eq!(dedicated.nodes, full.nodes[..=ttl]);
        }
    }
}
