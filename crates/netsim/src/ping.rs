//! ICMP-echo-style probing: the paper's measurement primitive.
//!
//! "We measured end-to-end latencies between users (Atlas probes) and
//! cloud datacenters … via ping every three hours." A ping here sends
//! `packets` echo requests over the routed path; each request samples
//! per-link queueing and jitter independently (and the access segment's
//! bufferbloat model), may be lost, and otherwise yields one RTT.
//!
//! [`PathSampler`] is the shared delay engine: given a resolved path, an
//! access link and an instant, it produces one-way delay samples. The
//! TCP prober ([`crate::tcp`]) reuses it, so ICMP and TCP probing are
//! guaranteed to see the same underlying network.
//!
//! The per-measurement hot path is allocation-free when the prober is
//! backed by a shared [`RouteTable`]: the route arrives as a borrowed
//! [`PathRef`] slice (no `PathInfo` clone) and the round's RTTs land in
//! [`RttBuf`]'s inline storage (no heap `Vec` for the ≤8-packet rounds
//! campaigns actually run).

use crate::access::AccessLink;
use crate::fault::{FaultPlan, FaultRouter};
use crate::queue::{DiurnalLoad, Mm1Queue};
use crate::routing::{PathInfo, PathRef, RouteSource, RouteTable, Router};
use crate::stochastic::SimRng;
use crate::time::SimTime;
use crate::topology::{LinkClass, LinkId, Topology};
use crate::NodeId;

/// Ping measurement parameters (Atlas defaults: 3 packets).
#[derive(Debug, Clone, Copy)]
pub struct PingConfig {
    /// Echo requests per measurement.
    pub packets: u32,
    /// Per-packet timeout; slower replies count as lost.
    pub timeout_ms: f64,
}

impl Default for PingConfig {
    fn default() -> Self {
        Self {
            packets: 3,
            timeout_ms: 4000.0,
        }
    }
}

/// RTT sample buffer with inline storage for [`RttBuf::INLINE`] values;
/// rounds with more packets spill to the heap. The Atlas default is 3
/// packets per round, so campaign measurements never allocate here.
#[derive(Debug, Clone, Default)]
pub struct RttBuf {
    inline: [f64; Self::INLINE],
    len: u8,
    spill: Vec<f64>,
}

impl RttBuf {
    /// Samples held without heap allocation.
    pub const INLINE: usize = 8;

    /// An empty buffer.
    pub const fn new() -> Self {
        Self {
            inline: [0.0; Self::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, v: f64) {
        let n = self.len as usize;
        if self.spill.is_empty() && n < Self::INLINE {
            self.inline[n] = v;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(n + 1);
                self.spill.extend_from_slice(&self.inline[..n]);
            }
            self.spill.push(v);
        }
    }

    /// The recorded samples, in push order.
    pub fn as_slice(&self) -> &[f64] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for RttBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Result of one ping measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PingOutcome {
    /// Echo requests sent.
    pub sent: u32,
    /// Replies received in time.
    pub received: u32,
    /// RTTs of the received replies, ms, in send order.
    rtts: RttBuf,
}

impl PingOutcome {
    /// An outcome with `sent` requests and no replies recorded yet.
    pub fn new(sent: u32) -> Self {
        Self {
            sent,
            received: 0,
            rtts: RttBuf::new(),
        }
    }

    /// Records one in-time reply.
    pub fn record(&mut self, rtt_ms: f64) {
        self.received += 1;
        self.rtts.push(rtt_ms);
    }

    /// RTTs of the received replies, ms, in send order.
    pub fn rtts_ms(&self) -> &[f64] {
        self.rtts.as_slice()
    }

    /// Minimum RTT, or `None` if all packets were lost. The paper's
    /// analysis is built on minima ("we extract the minimum ping
    /// latency"), which strip congestion noise.
    pub fn min_ms(&self) -> Option<f64> {
        self.rtts_ms().iter().copied().reduce(f64::min)
    }

    /// Mean RTT over received replies, or `None` if none arrived.
    pub fn avg_ms(&self) -> Option<f64> {
        let rtts = self.rtts_ms();
        if rtts.is_empty() {
            None
        } else {
            Some(rtts.iter().sum::<f64>() / rtts.len() as f64)
        }
    }

    /// Fraction of packets lost.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.received as f64 / self.sent as f64
        }
    }
}

/// Per-class bottleneck service times for the M/M/1 congestion model, ms.
fn service_time_ms(class: LinkClass) -> f64 {
    match class {
        LinkClass::Access => 1.0,
        LinkClass::MetroAggregation => 0.3,
        LinkClass::TerrestrialBackbone => 0.15,
        LinkClass::SubmarineCable => 0.3,
        LinkClass::PrivateBackbone => 0.08,
        LinkClass::DatacenterFabric => 0.05,
    }
}

/// Caps on queueing delay per traversal, ms (finite buffers).
fn max_wait_ms(class: LinkClass) -> f64 {
    match class {
        LinkClass::Access => 400.0,
        LinkClass::MetroAggregation => 60.0,
        LinkClass::TerrestrialBackbone => 40.0,
        LinkClass::SubmarineCable => 60.0,
        LinkClass::PrivateBackbone => 10.0,
        LinkClass::DatacenterFabric => 5.0,
    }
}

/// Loss probability for traversing `links[link_idx]` once. The
/// probe-adjacent link (`link_idx == 0`) uses the access technology's
/// loss when the caller supplied one.
pub fn hop_loss_probability(
    topo: &Topology,
    links: &[LinkId],
    link_idx: usize,
    access: Option<AccessLink>,
    _is_direction_head: bool,
) -> f64 {
    let link = topo.link(links[link_idx]);
    if link_idx == 0 && link.class == LinkClass::Access {
        access.map_or(link.class.base_loss(), |a| a.tech.loss_probability())
    } else {
        link.class.base_loss()
    }
}

/// Samples the delay of one traversal of `links[link_idx]` at instant
/// `t`: the access model for the probe-adjacent access link, otherwise
/// propagation floor plus M/M/1 congestion at the link midpoint's local
/// hour. Exactly one (access) or at most one (congestion) RNG draw
/// beyond the caller's loss draw, in a fixed order — the analytic and
/// event-driven executions share this function so their RNG streams
/// stay aligned.
#[allow(clippy::too_many_arguments)]
pub fn hop_delay_ms(
    topo: &Topology,
    links: &[LinkId],
    link_idx: usize,
    access: Option<AccessLink>,
    _is_direction_head: bool,
    load: DiurnalLoad,
    t: SimTime,
    rng: &mut SimRng,
) -> f64 {
    let link = topo.link(links[link_idx]);
    if link_idx == 0 && link.class == LinkClass::Access {
        if let Some(access) = access {
            return access.sample_one_way_ms(rng);
        }
    }
    let mut total = link.base_delay_ms;
    let mid = topo
        .node(link.a)
        .location
        .midpoint(topo.node(link.b).location);
    let rho = load.utilization(t, mid.lon)
        * link.class.congestion_sensitivity()
        * link.inflation.min(2.0);
    let q = Mm1Queue::new(service_time_ms(link.class), max_wait_ms(link.class));
    let expected = q.expected_wait_ms(rho);
    if expected > 0.0 {
        total += rng.exponential(expected).min(q.max_wait_ms);
    }
    total
}

/// Samples one-way delays and loss along a resolved path.
///
/// The deterministic floor comes from [`PathRef::base_one_way_ms`]; on
/// top of it every non-access link contributes a congestion wait drawn
/// from an exponential around the M/M/1 expectation at the link's local
/// hour, and the access segment (if the path starts at a probe host)
/// contributes the [`AccessLink`] sample including bufferbloat.
///
/// Links with higher inflation also congest more: inflation proxies how
/// under-provisioned a segment is, which couples the two effects the
/// paper observes in under-served regions (long *and* variable paths).
pub struct PathSampler<'p, 't> {
    path: PathRef<'p>,
    topo: &'t Topology,
    access: Option<AccessLink>,
    load: DiurnalLoad,
    faults: Option<&'t FaultPlan>,
}

impl<'p, 't> PathSampler<'p, 't> {
    /// Creates a sampler over an owned path; pass `access` when the
    /// path's first hop is the probe's last-mile segment (its stochastic
    /// model then replaces the topology link's flat delay for that hop).
    pub fn new(
        path: &'p PathInfo,
        topo: &'t Topology,
        access: Option<AccessLink>,
        load: DiurnalLoad,
    ) -> Self {
        Self::from_ref(path.as_path_ref(), topo, access, load)
    }

    /// Creates a sampler over a borrowed path view (e.g. a
    /// [`RouteTable`] arena slice) — the allocation-free entry point.
    pub fn from_ref(
        path: PathRef<'p>,
        topo: &'t Topology,
        access: Option<AccessLink>,
        load: DiurnalLoad,
    ) -> Self {
        Self {
            path,
            topo,
            access,
            load,
            faults: None,
        }
    }

    /// Attaches a fault plan: loss bursts add to per-hop loss probability
    /// and latency bursts add deterministic one-way delay, both keyed by
    /// link class and the sample instant. An empty plan changes neither
    /// the RNG draw sequence nor any delay, so fault-free sampling stays
    /// bit-identical with or without a plan attached.
    pub fn with_fault_plan(mut self, faults: Option<&'t FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Samples a single one-way traversal delay at instant `t`, or
    /// `None` if a packet is dropped on the way. Per-hop loss and delay
    /// come from [`hop_loss_probability`] / [`hop_delay_ms`] — the same
    /// functions the event-driven executor uses, keeping the two modes'
    /// RNG streams aligned.
    pub fn sample_one_way_ms(&self, t: SimTime, rng: &mut SimRng) -> Option<f64> {
        let mut total = 0.0;
        for i in 0..self.path.links.len() {
            let mut loss_p =
                hop_loss_probability(self.topo, self.path.links, i, self.access, i == 0);
            let mut burst_ms = 0.0;
            if let Some(plan) = self.faults {
                // Fault modifiers fold into the existing loss draw and add
                // deterministic delay — zero extra RNG draws, so an empty
                // plan leaves the stream untouched.
                let class = self.topo.link(self.path.links[i]).class;
                loss_p += plan.extra_loss(class, t);
                burst_ms = plan.extra_latency_ms(class, t);
            }
            if rng.chance(loss_p) {
                return None;
            }
            total += hop_delay_ms(
                self.topo,
                self.path.links,
                i,
                self.access,
                i == 0,
                self.load,
                t,
                rng,
            ) + burst_ms;
        }
        // Processing at intermediate nodes (endpoints excluded).
        for &node in &self.path.nodes[1..self.path.nodes.len().saturating_sub(1)] {
            total += self.topo.node(node).kind.processing_delay_ms();
        }
        Some(total)
    }

    /// Samples a full round trip (two independent one-way traversals).
    pub fn sample_rtt_ms(&self, t: SimTime, rng: &mut SimRng) -> Option<f64> {
        let fwd = self.sample_one_way_ms(t, rng)?;
        let rev = self.sample_one_way_ms(t, rng)?;
        Some(fwd + rev)
    }

    /// The deterministic RTT floor of the path (no congestion, jitter at
    /// its median, no bufferbloat).
    pub fn floor_rtt_ms(&self) -> f64 {
        let mut one_way = self.path.base_one_way_ms;
        if let (Some(access), Some(&first)) = (self.access, self.path.links.first()) {
            let link = self.topo.link(first);
            if link.class == LinkClass::Access {
                one_way = one_way - link.base_delay_ms + access.floor_one_way_ms();
            }
        }
        2.0 * one_way
    }
}

/// Ping driver: resolves routes and produces [`PingOutcome`]s.
///
/// Routes come from either a private cached [`Router`]
/// ([`PingProber::new`]) or a shared precomputed [`RouteTable`]
/// ([`PingProber::with_table`]); sampling is bit-identical between the
/// two, and the table-backed path performs zero per-call allocations.
pub struct PingProber<'t> {
    topo: &'t Topology,
    routes: RouteSource<'t>,
    faults: Option<&'t FaultPlan>,
}

impl<'t> PingProber<'t> {
    /// Creates a prober over a frozen topology with its own incremental
    /// route cache.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            routes: RouteSource::Dynamic(Router::new(topo)),
            faults: None,
        }
    }

    /// Creates a prober that reads routes from a shared precomputed
    /// table (the campaign fast path; the table may be shared read-only
    /// across any number of probers and threads).
    pub fn with_table(topo: &'t Topology, table: &'t RouteTable) -> Self {
        Self {
            topo,
            routes: RouteSource::Shared(table),
            faults: None,
        }
    }

    /// Creates a fault-aware prober: routes follow `plan`'s link-cut
    /// epochs, packets traverse its loss/latency bursts, and blacked-out
    /// endpoints answer nothing. With an empty plan the prober is
    /// bit-identical to [`PingProber::new`].
    pub fn with_faults(topo: &'t Topology, plan: &'t FaultPlan) -> Self {
        Self {
            topo,
            routes: RouteSource::Faulty(FaultRouter::new(topo, plan)),
            faults: Some(plan),
        }
    }

    /// Runs one ping measurement from `from` to `to` at instant `t`.
    /// Returns `None` if the nodes are not connected (or, for a
    /// table-backed prober, the pair was not resolved at build time).
    #[allow(clippy::too_many_arguments)]
    pub fn ping(
        &mut self,
        from: NodeId,
        to: NodeId,
        access: Option<AccessLink>,
        load: DiurnalLoad,
        t: SimTime,
        cfg: &PingConfig,
        rng: &mut SimRng,
    ) -> Option<PingOutcome> {
        let topo = self.topo;
        let faults = self.faults;
        let path = self.routes.path_at(from, to, t)?;
        let sampler = PathSampler::from_ref(path, topo, access, load).with_fault_plan(faults);
        let mut outcome = PingOutcome::new(cfg.packets);
        for i in 0..cfg.packets {
            // Packets are paced 1 s apart like the Atlas ping default.
            let at = t + SimTime::from_secs(u64::from(i));
            // A blacked-out endpoint answers nothing; the packet dies
            // without consuming any sampling draws (only reachable when
            // faults are scheduled, so the fault-free stream is intact).
            if faults.is_some_and(|p| p.node_down(to, at) || p.node_down(from, at)) {
                continue;
            }
            match sampler.sample_rtt_ms(at, rng) {
                Some(rtt) if rtt <= cfg.timeout_ms => outcome.record(rtt),
                _ => {}
            }
        }
        Some(outcome)
    }

    /// The route the prober would use (exposed for path introspection in
    /// reports and tests).
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Option<PathRef<'_>> {
        self.routes.path(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTechnology;
    use crate::topology::NodeKind;
    use shears_geo::GeoPoint;

    /// Probe — access router — metro — DC, with an explicit access link.
    fn simple_net() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let probe = t.add_node(NodeKind::ProbeHost, GeoPoint::new(48.1, 11.6), "DE");
        let ar = t.add_node(NodeKind::AccessRouter, GeoPoint::new(48.15, 11.58), "DE");
        let metro = t.add_node(NodeKind::MetroPop, GeoPoint::new(48.14, 11.56), "DE");
        let dc = t.add_node(NodeKind::Datacenter, GeoPoint::new(50.1, 8.7), "DE");
        t.connect_with_delay(probe, ar, LinkClass::Access, 4.0);
        t.connect(ar, metro, LinkClass::MetroAggregation, 1.2);
        t.connect(metro, dc, LinkClass::TerrestrialBackbone, 1.3);
        (t, probe, dc)
    }

    fn dsl() -> AccessLink {
        AccessLink::new(AccessTechnology::Dsl, 1.0)
    }

    #[test]
    fn ping_produces_rtts_above_floor() {
        let (t, probe, dc) = simple_net();
        let mut prober = PingProber::new(&t);
        let mut rng = SimRng::new(1);
        let out = prober
            .ping(
                probe,
                dc,
                Some(dsl()),
                DiurnalLoad::residential(),
                SimTime::from_hours(3),
                &PingConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.sent, 3);
        assert!(out.received >= 1, "all three packets lost is implausible here");
        let path = prober.route(probe, dc).unwrap();
        let sampler = PathSampler::from_ref(path, &t, Some(dsl()), DiurnalLoad::residential());
        let floor = sampler.floor_rtt_ms();
        for &rtt in out.rtts_ms() {
            // Jitter is log-normal around the floor, so individual samples
            // can dip slightly below it, but not to half.
            assert!(rtt > floor * 0.5, "rtt {rtt} vs floor {floor}");
        }
    }

    #[test]
    fn floor_includes_access_substitution() {
        let (t, probe, dc) = simple_net();
        let mut prober = PingProber::new(&t);
        let path = prober.route(probe, dc).unwrap();
        let with_eth = PathSampler::from_ref(
            path,
            &t,
            Some(AccessLink::new(AccessTechnology::Ethernet, 1.0)),
            DiurnalLoad::residential(),
        )
        .floor_rtt_ms();
        let with_lte = PathSampler::from_ref(
            path,
            &t,
            Some(AccessLink::new(AccessTechnology::Lte, 1.0)),
            DiurnalLoad::residential(),
        )
        .floor_rtt_ms();
        let delta = with_lte - with_eth;
        let want = 2.0 * (20.0 - 0.3);
        assert!((delta - want).abs() < 1e-9, "delta {delta}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (t, probe, dc) = simple_net();
        let run = || {
            let mut prober = PingProber::new(&t);
            let mut rng = SimRng::new(77);
            prober
                .ping(
                    probe,
                    dc,
                    Some(dsl()),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(6),
                    &PingConfig::default(),
                    &mut rng,
                )
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn table_backed_prober_matches_dynamic_prober() {
        // The campaign's bit-identity rests on this: same seed, same
        // pair, same instants — the shared-table prober must reproduce
        // the router-backed prober's outcome exactly.
        let (t, probe, dc) = simple_net();
        let table = RouteTable::build(&t, &[(probe, vec![dc])], 2);
        for seed in [1u64, 7, 42, 99] {
            let run = |prober: &mut PingProber| {
                let mut rng = SimRng::new(seed);
                prober
                    .ping(
                        probe,
                        dc,
                        Some(dsl()),
                        DiurnalLoad::residential(),
                        SimTime::from_hours(5),
                        &PingConfig::default(),
                        &mut rng,
                    )
                    .unwrap()
            };
            let dynamic = run(&mut PingProber::new(&t));
            let shared = run(&mut PingProber::with_table(&t, &table));
            assert_eq!(dynamic, shared, "seed {seed}");
        }
    }

    #[test]
    fn empty_fault_plan_prober_matches_dynamic_prober() {
        // The chaos machinery's bit-identity pin: attaching an empty
        // fault plan must not move a single RNG draw or delay.
        let (t, probe, dc) = simple_net();
        let plan = crate::fault::FaultPlan::empty("noop");
        for seed in [1u64, 7, 42, 99] {
            let run = |prober: &mut PingProber| {
                let mut rng = SimRng::new(seed);
                prober
                    .ping(
                        probe,
                        dc,
                        Some(dsl()),
                        DiurnalLoad::residential(),
                        SimTime::from_hours(5),
                        &PingConfig::default(),
                        &mut rng,
                    )
                    .unwrap()
            };
            let dynamic = run(&mut PingProber::new(&t));
            let faulty = run(&mut PingProber::with_faults(&t, &plan));
            assert_eq!(dynamic, faulty, "seed {seed}");
        }
    }

    #[test]
    fn blackout_window_silences_the_target() {
        let (t, probe, dc) = simple_net();
        let horizon = SimTime::from_days(30);
        let mut cfg = crate::fault::FaultConfig::blackout();
        cfg.dc_blackouts = 64;
        cfg.blackout_mean_hours = 1_000.0;
        let plan = crate::fault::FaultPlan::generate(&t, &cfg, 3, horizon);
        // Find an instant inside a blackout window (with margin for the
        // three 1s-paced packets).
        let down_at = (0..720)
            .map(SimTime::from_hours)
            .find(|&at| plan.node_down(dc, at) && plan.node_down(dc, at + SimTime::from_secs(3)))
            .expect("64 long blackouts must cover some probed instant");
        let mut prober = PingProber::with_faults(&t, &plan);
        let mut rng = SimRng::new(5);
        let out = prober
            .ping(
                probe,
                dc,
                Some(dsl()),
                DiurnalLoad::residential(),
                down_at,
                &PingConfig::default(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.sent, 3);
        assert_eq!(out.received, 0, "a blacked-out DC answers nothing");
    }

    #[test]
    fn loss_burst_raises_observed_loss() {
        let (t, probe, dc) = simple_net();
        let mut plan_cfg = crate::fault::FaultConfig::lossy();
        plan_cfg.loss_burst_extra = 0.5;
        plan_cfg.loss_bursts = 16;
        plan_cfg.loss_burst_mean_hours = 10_000.0;
        let horizon = SimTime::from_days(30);
        let plan = crate::fault::FaultPlan::generate(&t, &plan_cfg, 8, horizon);
        let burst_at = (0..720)
            .map(SimTime::from_hours)
            .find(|&at| plan.extra_loss(LinkClass::Access, at) >= 0.5)
            .expect("16 ten-thousand-hour bursts must cover some hour");
        let count_losses = |prober: &mut PingProber| {
            let mut rng = SimRng::new(17);
            let mut lost = 0u32;
            for _ in 0..100 {
                let out = prober
                    .ping(
                        probe,
                        dc,
                        Some(dsl()),
                        DiurnalLoad::residential(),
                        burst_at,
                        &PingConfig::default(),
                        &mut rng,
                    )
                    .unwrap();
                lost += u32::from(out.sent - out.received);
            }
            lost
        };
        let clean = count_losses(&mut PingProber::new(&t));
        let bursty = count_losses(&mut PingProber::with_faults(&t, &plan));
        assert!(
            bursty > clean + 50,
            "a 50%-extra loss burst must show up: clean {clean}, bursty {bursty}"
        );
    }

    #[test]
    fn disconnected_nodes_yield_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::Datacenter, GeoPoint::new(1.0, 1.0), "XX");
        let mut prober = PingProber::new(&t);
        let mut rng = SimRng::new(1);
        assert!(prober
            .ping(
                a,
                b,
                None,
                DiurnalLoad::backbone(),
                SimTime::ZERO,
                &PingConfig::default(),
                &mut rng
            )
            .is_none());
    }

    #[test]
    fn timeout_counts_as_loss() {
        let (t, probe, dc) = simple_net();
        let mut prober = PingProber::new(&t);
        let mut rng = SimRng::new(5);
        let cfg = PingConfig {
            packets: 10,
            timeout_ms: 0.001, // nothing can be this fast
        };
        let out = prober
            .ping(
                probe,
                dc,
                Some(dsl()),
                DiurnalLoad::residential(),
                SimTime::ZERO,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.received, 0);
        assert_eq!(out.loss_rate(), 1.0);
        assert!(out.min_ms().is_none());
        assert!(out.avg_ms().is_none());
    }

    #[test]
    fn outcome_statistics() {
        let mut o = PingOutcome::new(4);
        for rtt in [10.0, 12.0, 8.0] {
            o.record(rtt);
        }
        assert_eq!(o.rtts_ms(), &[10.0, 12.0, 8.0]);
        assert_eq!(o.min_ms(), Some(8.0));
        assert_eq!(o.avg_ms(), Some(10.0));
        assert!((o.loss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rtt_buf_spills_past_inline_capacity() {
        let mut buf = RttBuf::new();
        let values: Vec<f64> = (0..RttBuf::INLINE as u32 + 4).map(f64::from).collect();
        for (i, &v) in values.iter().enumerate() {
            buf.push(v);
            assert_eq!(buf.len(), i + 1);
            assert_eq!(buf.as_slice(), &values[..=i], "push order preserved");
        }
        assert!(!buf.is_empty());
        // Equality is by contents, not storage mode.
        let mut inline_only = RttBuf::new();
        for &v in &values[..3] {
            inline_only.push(v);
        }
        let mut other = RttBuf::new();
        for &v in &values[..3] {
            other.push(v);
        }
        assert_eq!(inline_only, other);
        assert_ne!(inline_only, buf);
    }

    #[test]
    fn evening_congestion_raises_mean_rtt() {
        let (t, probe, dc) = simple_net();
        let mut prober = PingProber::new(&t);
        let path = prober.route(probe, dc).unwrap();
        // Munich is ~11.6°E, so local 21:00 ≈ 20:13 UTC. Compare a quiet
        // local 04:00 against the local evening peak.
        let sampler = PathSampler::from_ref(path, &t, Some(dsl()), DiurnalLoad::residential());
        let mean_at = |hour_utc: u64, seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut sum = 0.0;
            let mut n = 0;
            for day in 0..40u64 {
                let t0 = SimTime::from_hours(day * 24 + hour_utc);
                if let Some(r) = sampler.sample_rtt_ms(t0, &mut rng) {
                    sum += r;
                    n += 1;
                }
            }
            sum / n as f64
        };
        let quiet = mean_at(3, 9);
        let busy = mean_at(20, 9);
        assert!(busy > quiet, "busy {busy} <= quiet {quiet}");
    }
}
