//! Deterministic fault injection: scheduled link cuts, loss/latency bursts,
//! and datacenter blackouts, all replayable from a single seed.
//!
//! A [`FaultPlan`] is generated once per campaign from a [`FaultConfig`] and a
//! seed. Every fault class draws from its own keyed [`SimRng`] stream (forked
//! off the campaign seed with [`SimRng::fork_keyed`] under the reserved
//! `FAULT_STREAM` key), so the plan is a pure function of
//! `(topology, config, seed, horizon)` — independent of thread count, probe
//! order, or how many measurement draws happen elsewhere. Probers consult the
//! plan with pure time-indexed queries; an empty (or disabled) plan consumes
//! zero extra RNG draws in the measurement hot path, so fault-free campaigns
//! stay bit-identical with and without the fault machinery attached.

use std::collections::HashSet;

use crate::routing::Router;
use crate::stochastic::SimRng;
use crate::time::SimTime;
use crate::topology::{LinkClass, LinkId, NodeId, NodeKind, Topology};

/// Reserved `fork_keyed` stream key for fault-plan generation.
///
/// Campaign measurement streams use `(probe.id, round)` and churn uses
/// `(probe.id, u64::MAX)`; both keep the stream key below `2^32`, so this
/// constant (> `2^32`) can never collide with them.
const FAULT_STREAM: u64 = 0xFA17_AB1E_0000_0001;

/// Milliseconds per hour, for converting mean episode lengths.
const MS_PER_HOUR: f64 = 3_600_000.0;

/// The four injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultClass {
    /// A backbone link is removed from the topology for an episode.
    LinkCut,
    /// Extra packet loss on every traversal of a link class.
    LossBurst,
    /// Extra one-way delay on every traversal of a link class.
    LatencyBurst,
    /// A datacenter node answers nothing for an episode.
    DcBlackout,
}

impl FaultClass {
    /// All fault classes, in generation-stream order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::LinkCut,
        FaultClass::LossBurst,
        FaultClass::LatencyBurst,
        FaultClass::DcBlackout,
    ];

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::LinkCut => "link-cut",
            FaultClass::LossBurst => "loss-burst",
            FaultClass::LatencyBurst => "latency-burst",
            FaultClass::DcBlackout => "dc-blackout",
        }
    }

    /// Index of the class inside [`FaultClass::ALL`] (also its RNG stream).
    fn stream_index(self) -> u64 {
        match self {
            FaultClass::LinkCut => 0,
            FaultClass::LossBurst => 1,
            FaultClass::LatencyBurst => 2,
            FaultClass::DcBlackout => 3,
        }
    }
}

/// Declarative knob set for [`FaultPlan::generate`].
///
/// `enabled == false` means "no fault machinery at all": the campaign takes
/// the exact PR 2 code path. `enabled == true` with all counts at zero is the
/// *passthrough* configuration — the fault-aware probers run but the plan is
/// empty, which must (and is tested to) reproduce fault-free samples exactly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Master switch; `false` skips plan generation entirely.
    pub enabled: bool,
    /// Number of scheduled link-cut episodes.
    pub link_cuts: u32,
    /// Mean link-cut episode length in hours (exponentially distributed).
    pub cut_mean_hours: f64,
    /// Number of scheduled loss-burst episodes.
    pub loss_bursts: u32,
    /// Mean loss-burst episode length in hours.
    pub loss_burst_mean_hours: f64,
    /// Extra per-traversal loss probability while a burst is active.
    pub loss_burst_extra: f64,
    /// Link class the loss bursts apply to.
    pub loss_burst_class: LinkClass,
    /// Number of scheduled latency-burst episodes.
    pub latency_bursts: u32,
    /// Mean latency-burst episode length in hours.
    pub latency_burst_mean_hours: f64,
    /// Extra one-way delay (ms) per traversal while a burst is active.
    pub latency_burst_extra_ms: f64,
    /// Link class the latency bursts apply to.
    pub latency_burst_class: LinkClass,
    /// Number of scheduled datacenter blackout episodes.
    pub dc_blackouts: u32,
    /// Mean blackout episode length in hours.
    pub blackout_mean_hours: f64,
}

impl FaultConfig {
    /// No faults and no fault machinery (the default).
    pub const fn none() -> Self {
        FaultConfig {
            enabled: false,
            link_cuts: 0,
            cut_mean_hours: 0.0,
            loss_bursts: 0,
            loss_burst_mean_hours: 0.0,
            loss_burst_extra: 0.0,
            loss_burst_class: LinkClass::Access,
            latency_bursts: 0,
            latency_burst_mean_hours: 0.0,
            latency_burst_extra_ms: 0.0,
            latency_burst_class: LinkClass::TerrestrialBackbone,
            dc_blackouts: 0,
            blackout_mean_hours: 0.0,
        }
    }

    /// Fault machinery active but zero scheduled events.
    ///
    /// Forces the fault-aware code path through `Router`/probers with an empty
    /// plan; used by the equivalence tests that pin "empty plan == fault-free".
    pub const fn passthrough() -> Self {
        FaultConfig {
            enabled: true,
            ..FaultConfig::none()
        }
    }

    /// Sustained extra loss on access links (≈5% per traversal while active).
    pub const fn lossy() -> Self {
        FaultConfig {
            enabled: true,
            loss_bursts: 4,
            loss_burst_mean_hours: 48.0,
            loss_burst_extra: 0.05,
            loss_burst_class: LinkClass::Access,
            ..FaultConfig::none()
        }
    }

    /// Datacenter blackouts only.
    pub const fn blackout() -> Self {
        FaultConfig {
            enabled: true,
            dc_blackouts: 3,
            blackout_mean_hours: 24.0,
            ..FaultConfig::none()
        }
    }

    /// Everything at once: cuts, loss, latency inflation, and blackouts.
    pub const fn chaos() -> Self {
        FaultConfig {
            enabled: true,
            link_cuts: 2,
            cut_mean_hours: 36.0,
            loss_bursts: 2,
            loss_burst_mean_hours: 24.0,
            loss_burst_extra: 0.08,
            loss_burst_class: LinkClass::Access,
            latency_bursts: 2,
            latency_burst_mean_hours: 24.0,
            latency_burst_extra_ms: 30.0,
            latency_burst_class: LinkClass::TerrestrialBackbone,
            dc_blackouts: 1,
            blackout_mean_hours: 12.0,
        }
    }

    /// Look up a named profile ("none", "passthrough", "lossy", "blackout",
    /// "chaos"), as accepted by the measurement API.
    pub fn profile(name: &str) -> Option<FaultConfig> {
        match name {
            "none" => Some(FaultConfig::none()),
            "passthrough" => Some(FaultConfig::passthrough()),
            "lossy" => Some(FaultConfig::lossy()),
            "blackout" => Some(FaultConfig::blackout()),
            "chaos" => Some(FaultConfig::chaos()),
            _ => None,
        }
    }

    /// On-disk size of [`FaultConfig::encode`]'s output, in bytes.
    pub const ENCODED_LEN: usize = 67;

    /// Appends the fixed-width little-endian wire form of this config
    /// (exactly [`FaultConfig::ENCODED_LEN`] bytes) to `out`. Used by
    /// the campaign journal's header so a resumed run regenerates the
    /// exact fault plan the crashed run was measuring under.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.enabled));
        out.extend_from_slice(&self.link_cuts.to_le_bytes());
        out.extend_from_slice(&self.cut_mean_hours.to_le_bytes());
        out.extend_from_slice(&self.loss_bursts.to_le_bytes());
        out.extend_from_slice(&self.loss_burst_mean_hours.to_le_bytes());
        out.extend_from_slice(&self.loss_burst_extra.to_le_bytes());
        out.push(self.loss_burst_class.code());
        out.extend_from_slice(&self.latency_bursts.to_le_bytes());
        out.extend_from_slice(&self.latency_burst_mean_hours.to_le_bytes());
        out.extend_from_slice(&self.latency_burst_extra_ms.to_le_bytes());
        out.push(self.latency_burst_class.code());
        out.extend_from_slice(&self.dc_blackouts.to_le_bytes());
        out.extend_from_slice(&self.blackout_mean_hours.to_le_bytes());
    }

    /// Decodes [`FaultConfig::encode`]'s output. `None` when the slice
    /// is short or carries an unknown link-class code.
    pub fn decode(bytes: &[u8]) -> Option<FaultConfig> {
        if bytes.len() < Self::ENCODED_LEN {
            return None;
        }
        let mut at = 0usize;
        let u8_at = |at: &mut usize| {
            let v = bytes[*at];
            *at += 1;
            v
        };
        fn u32_at(bytes: &[u8], at: &mut usize) -> u32 {
            let v = u32::from_le_bytes(bytes[*at..*at + 4].try_into().unwrap());
            *at += 4;
            v
        }
        fn f64_at(bytes: &[u8], at: &mut usize) -> f64 {
            let v = f64::from_le_bytes(bytes[*at..*at + 8].try_into().unwrap());
            *at += 8;
            v
        }
        let enabled = u8_at(&mut at) != 0;
        let link_cuts = u32_at(bytes, &mut at);
        let cut_mean_hours = f64_at(bytes, &mut at);
        let loss_bursts = u32_at(bytes, &mut at);
        let loss_burst_mean_hours = f64_at(bytes, &mut at);
        let loss_burst_extra = f64_at(bytes, &mut at);
        let loss_burst_class = LinkClass::from_code(u8_at(&mut at))?;
        let latency_bursts = u32_at(bytes, &mut at);
        let latency_burst_mean_hours = f64_at(bytes, &mut at);
        let latency_burst_extra_ms = f64_at(bytes, &mut at);
        let latency_burst_class = LinkClass::from_code(u8_at(&mut at))?;
        let dc_blackouts = u32_at(bytes, &mut at);
        let blackout_mean_hours = f64_at(bytes, &mut at);
        Some(FaultConfig {
            enabled,
            link_cuts,
            cut_mean_hours,
            loss_bursts,
            loss_burst_mean_hours,
            loss_burst_extra,
            loss_burst_class,
            latency_bursts,
            latency_burst_mean_hours,
            latency_burst_extra_ms,
            latency_burst_class,
            dc_blackouts,
            blackout_mean_hours,
        })
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// A time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    start: SimTime,
    end: SimTime,
}

impl Window {
    fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// One scheduled link-cut episode.
#[derive(Debug, Clone, PartialEq)]
struct CutEpisode {
    links: Vec<LinkId>,
    window: Window,
}

/// One scheduled loss or latency burst.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Burst {
    class: LinkClass,
    window: Window,
    /// Extra loss probability (loss bursts) or extra one-way ms (latency).
    magnitude: f64,
}

/// One scheduled datacenter blackout.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Blackout {
    node: NodeId,
    window: Window,
}

/// A routing epoch: from `start` until the next epoch's start, exactly the
/// links in `disabled` are cut.
#[derive(Debug, Clone, PartialEq)]
struct Epoch {
    start: SimTime,
    disabled: HashSet<LinkId>,
}

/// A fully materialised, replayable fault schedule.
///
/// Construction is deterministic (see module docs); all queries are pure
/// functions of time and never touch an RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    label: String,
    cuts: Vec<CutEpisode>,
    epochs: Vec<Epoch>,
    loss_bursts: Vec<Burst>,
    latency_bursts: Vec<Burst>,
    blackouts: Vec<Blackout>,
}

impl FaultPlan {
    /// A plan with no scheduled events (single all-links-up epoch).
    pub fn empty(label: &str) -> FaultPlan {
        FaultPlan {
            label: label.to_owned(),
            cuts: Vec::new(),
            epochs: vec![Epoch {
                start: SimTime::ZERO,
                disabled: HashSet::new(),
            }],
            loss_bursts: Vec::new(),
            latency_bursts: Vec::new(),
            blackouts: Vec::new(),
        }
    }

    /// A plan that cuts `links` for all time — the what-if scenario shape
    /// used by the corridor-cut resilience study.
    pub fn permanent_cut(label: &str, links: Vec<LinkId>) -> FaultPlan {
        let mut plan = FaultPlan::empty(label);
        if !links.is_empty() {
            plan.cuts.push(CutEpisode {
                links,
                window: Window {
                    start: SimTime::ZERO,
                    end: SimTime::from_nanos(u64::MAX),
                },
            });
            plan.rebuild_epochs();
        }
        plan
    }

    /// Generate a plan from `cfg` over `[0, horizon)`.
    ///
    /// Each fault class forks its own keyed stream off `seed`, so adding
    /// blackouts does not move the link-cut schedule and vice versa. A
    /// disabled config yields an empty plan.
    pub fn generate(topo: &Topology, cfg: &FaultConfig, seed: u64, horizon: SimTime) -> FaultPlan {
        let mut plan = FaultPlan::empty("generated");
        if !cfg.enabled {
            return plan;
        }
        let master = SimRng::new(seed);
        let horizon_ms = horizon.as_millis_f64().max(1.0);

        // Link cuts: pick backbone-ish links (cutting an access link would
        // just silence one probe; the interesting failures are shared paths).
        let mut rng = master.fork_keyed(FAULT_STREAM, FaultClass::LinkCut.stream_index());
        let cuttable: Vec<LinkId> = topo
            .links()
            .filter(|(_, l)| {
                matches!(
                    l.class,
                    LinkClass::SubmarineCable
                        | LinkClass::PrivateBackbone
                        | LinkClass::TerrestrialBackbone
                )
            })
            .map(|(id, _)| id)
            .collect();
        for _ in 0..cfg.link_cuts {
            if cuttable.is_empty() {
                break;
            }
            let link = cuttable[rng.below(cuttable.len())];
            let window = draw_window(&mut rng, horizon_ms, cfg.cut_mean_hours);
            plan.cuts.push(CutEpisode {
                links: vec![link],
                window,
            });
        }

        let mut rng = master.fork_keyed(FAULT_STREAM, FaultClass::LossBurst.stream_index());
        for _ in 0..cfg.loss_bursts {
            let window = draw_window(&mut rng, horizon_ms, cfg.loss_burst_mean_hours);
            plan.loss_bursts.push(Burst {
                class: cfg.loss_burst_class,
                window,
                magnitude: cfg.loss_burst_extra,
            });
        }

        let mut rng = master.fork_keyed(FAULT_STREAM, FaultClass::LatencyBurst.stream_index());
        for _ in 0..cfg.latency_bursts {
            let window = draw_window(&mut rng, horizon_ms, cfg.latency_burst_mean_hours);
            plan.latency_bursts.push(Burst {
                class: cfg.latency_burst_class,
                window,
                magnitude: cfg.latency_burst_extra_ms,
            });
        }

        let mut rng = master.fork_keyed(FAULT_STREAM, FaultClass::DcBlackout.stream_index());
        let dcs = topo.nodes_of_kind(NodeKind::Datacenter);
        for _ in 0..cfg.dc_blackouts {
            if dcs.is_empty() {
                break;
            }
            let node = dcs[rng.below(dcs.len())];
            let window = draw_window(&mut rng, horizon_ms, cfg.blackout_mean_hours);
            plan.blackouts.push(Blackout { node, window });
        }

        plan.rebuild_epochs();
        plan
    }

    /// Recompute the routing-epoch timeline from the cut episodes.
    fn rebuild_epochs(&mut self) {
        let mut boundaries: Vec<SimTime> = vec![SimTime::ZERO];
        for cut in &self.cuts {
            boundaries.push(cut.window.start);
            boundaries.push(cut.window.end);
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut epochs: Vec<Epoch> = Vec::new();
        for start in boundaries {
            let disabled: HashSet<LinkId> = self
                .cuts
                .iter()
                .filter(|c| c.window.contains(start))
                .flat_map(|c| c.links.iter().copied())
                .collect();
            match epochs.last() {
                Some(prev) if prev.disabled == disabled => {}
                _ => epochs.push(Epoch { start, disabled }),
            }
        }
        self.epochs = epochs;
    }

    /// Plan label (profile or scenario name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Replace the label (builder-style), e.g. with the profile name.
    pub fn with_label(mut self, label: &str) -> FaultPlan {
        self.label = label.to_owned();
        self
    }

    /// True when the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
            && self.loss_bursts.is_empty()
            && self.latency_bursts.is_empty()
            && self.blackouts.is_empty()
    }

    /// Number of routing epochs (always ≥ 1).
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Index of the routing epoch containing `t`.
    pub fn epoch_at(&self, t: SimTime) -> usize {
        // Epochs are sorted by start and the first starts at ZERO, so the
        // partition point is always ≥ 1.
        self.epochs.partition_point(|e| e.start <= t) - 1
    }

    /// The links cut during epoch `idx`.
    pub fn epoch_disabled(&self, idx: usize) -> &HashSet<LinkId> {
        &self.epochs[idx].disabled
    }

    /// The links cut at time `t`.
    pub fn disabled_at(&self, t: SimTime) -> &HashSet<LinkId> {
        self.epoch_disabled(self.epoch_at(t))
    }

    /// Number of distinct links that are cut at some point in the plan.
    pub fn cut_link_count(&self) -> usize {
        let mut links: Vec<LinkId> = self
            .cuts
            .iter()
            .flat_map(|c| c.links.iter().copied())
            .collect();
        links.sort_unstable_by_key(|l| l.index());
        links.dedup();
        links.len()
    }

    /// Extra loss probability for one traversal of a `class` link at `t`.
    ///
    /// Overlapping bursts stack additively; the caller clamps via
    /// `SimRng::chance`.
    pub fn extra_loss(&self, class: LinkClass, t: SimTime) -> f64 {
        self.loss_bursts
            .iter()
            .filter(|b| b.class == class && b.window.contains(t))
            .map(|b| b.magnitude)
            .sum()
    }

    /// Extra one-way delay (ms) for one traversal of a `class` link at `t`.
    pub fn extra_latency_ms(&self, class: LinkClass, t: SimTime) -> f64 {
        self.latency_bursts
            .iter()
            .filter(|b| b.class == class && b.window.contains(t))
            .map(|b| b.magnitude)
            .sum()
    }

    /// True when `node` is blacked out at `t`.
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.blackouts
            .iter()
            .any(|b| b.node == node && b.window.contains(t))
    }

    /// True when any episode of `class` is active at `t` (used by the
    /// degraded-campaign study to attribute samples to fault classes).
    pub fn class_active_at(&self, class: FaultClass, t: SimTime) -> bool {
        match class {
            FaultClass::LinkCut => !self.disabled_at(t).is_empty(),
            FaultClass::LossBurst => self.loss_bursts.iter().any(|b| b.window.contains(t)),
            FaultClass::LatencyBurst => self.latency_bursts.iter().any(|b| b.window.contains(t)),
            FaultClass::DcBlackout => self.blackouts.iter().any(|b| b.window.contains(t)),
        }
    }

    /// True when any fault episode of any class is active at `t`.
    pub fn any_active_at(&self, t: SimTime) -> bool {
        FaultClass::ALL.iter().any(|&c| self.class_active_at(c, t))
    }

    /// Order-stable FNV-1a digest of the materialised schedule: every
    /// cut episode, routing epoch (start + sorted disabled-link set),
    /// burst and blackout window. Two plans digest equal iff they
    /// schedule the same faults, so a resumed campaign can prove the
    /// plan it regenerated from `(config, seed)` is byte-for-byte the
    /// plan the crashed run measured under — catching topology drift
    /// that the config alone cannot.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.cuts.len() as u64);
        for cut in &self.cuts {
            h.write_u64(cut.links.len() as u64);
            for link in &cut.links {
                h.write_u64(link.index() as u64);
            }
            h.write_u64(cut.window.start.as_nanos());
            h.write_u64(cut.window.end.as_nanos());
        }
        h.write_u64(self.epochs.len() as u64);
        for epoch in &self.epochs {
            h.write_u64(epoch.start.as_nanos());
            let mut disabled: Vec<usize> =
                epoch.disabled.iter().map(|l| l.index()).collect();
            disabled.sort_unstable();
            h.write_u64(disabled.len() as u64);
            for link in disabled {
                h.write_u64(link as u64);
            }
        }
        for bursts in [&self.loss_bursts, &self.latency_bursts] {
            h.write_u64(bursts.len() as u64);
            for b in bursts.iter() {
                h.write_u64(u64::from(b.class.code()));
                h.write_u64(b.window.start.as_nanos());
                h.write_u64(b.window.end.as_nanos());
                h.write_u64(b.magnitude.to_bits());
            }
        }
        h.write_u64(self.blackouts.len() as u64);
        for b in &self.blackouts {
            h.write_u64(b.node.index() as u64);
            h.write_u64(b.window.start.as_nanos());
            h.write_u64(b.window.end.as_nanos());
        }
        h.finish()
    }
}

/// Minimal FNV-1a 64 accumulator (the journal's digest primitive; a
/// cryptographic hash would be overkill for corruption/drift detection
/// and would drag in a dependency).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a digest at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a little-endian `u64` into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The accumulated digest.
    pub fn finish(self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice — the idempotence primitive the
    /// distributed merge path keys `(shard, round)` frames by, reusing
    /// the same accumulator the journal and fault plans digest with.
    pub fn digest_of(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Draw one episode window: start uniform in the horizon, length exponential
/// with the given mean (always two RNG draws, so episode counts in one class
/// never shift the schedule of later episodes in the same class).
fn draw_window(rng: &mut SimRng, horizon_ms: f64, mean_hours: f64) -> Window {
    let start_ms = rng.uniform() * horizon_ms;
    let len_ms = rng.exponential((mean_hours * MS_PER_HOUR).max(1.0));
    let start = SimTime::from_millis_f64(start_ms);
    let end = start
        .checked_add(SimTime::from_millis_f64(len_ms))
        .unwrap_or(SimTime::from_nanos(u64::MAX));
    Window { start, end }
}

/// Time-aware router over a [`FaultPlan`]: one lazily-built
/// [`Router::with_disabled`] per routing epoch.
///
/// Lookups are deterministic because each epoch's router sees exactly the
/// epoch's disabled-link set, and epoch boundaries are fixed by the plan —
/// nothing depends on query order beyond per-epoch warm-cache reuse.
pub struct FaultRouter<'t> {
    topo: &'t Topology,
    plan: &'t FaultPlan,
    routers: Vec<Option<Router<'t>>>,
}

impl std::fmt::Debug for FaultRouter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRouter")
            .field("plan", &self.plan.label())
            .field("epochs", &self.routers.len())
            .finish()
    }
}

impl<'t> FaultRouter<'t> {
    /// Create a router for `plan` over `topo`.
    pub fn new(topo: &'t Topology, plan: &'t FaultPlan) -> FaultRouter<'t> {
        let mut routers = Vec::new();
        routers.resize_with(plan.epoch_count(), || None);
        FaultRouter {
            topo,
            plan,
            routers,
        }
    }

    /// The plan this router consults.
    pub fn plan(&self) -> &'t FaultPlan {
        self.plan
    }

    /// Shortest path from `from` to `to` under the faults active at `t`, or
    /// `None` when the cut set disconnects the pair.
    pub fn path_at(
        &mut self,
        from: NodeId,
        to: NodeId,
        t: SimTime,
    ) -> Option<&crate::routing::PathInfo> {
        let idx = self.plan.epoch_at(t);
        let router = self.routers[idx].get_or_insert_with(|| {
            Router::with_disabled(self.topo, self.plan.epoch_disabled(idx).clone())
        });
        router.path(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_geo::GeoPoint;

    fn grid_topology() -> Topology {
        // probe - access - metro - backbone ring - dc
        let mut topo = Topology::new();
        let probe = topo.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "US");
        let access = topo.add_node(NodeKind::AccessRouter, GeoPoint::new(0.1, 0.1), "US");
        let metro_a = topo.add_node(NodeKind::MetroPop, GeoPoint::new(1.0, 1.0), "US");
        let metro_b = topo.add_node(NodeKind::MetroPop, GeoPoint::new(5.0, 5.0), "US");
        let dc = topo.add_node(NodeKind::Datacenter, GeoPoint::new(1.0, 2.0), "US");
        topo.connect(probe, access, LinkClass::Access, 1.0);
        topo.connect(access, metro_a, LinkClass::MetroAggregation, 1.0);
        topo.connect(metro_a, metro_b, LinkClass::TerrestrialBackbone, 1.0);
        topo.connect(metro_a, dc, LinkClass::TerrestrialBackbone, 1.4);
        topo.connect(metro_b, dc, LinkClass::DatacenterFabric, 1.0);
        topo
    }

    #[test]
    fn disabled_config_yields_empty_plan() {
        let topo = grid_topology();
        let plan = FaultPlan::generate(&topo, &FaultConfig::none(), 7, SimTime::from_days(10));
        assert!(plan.is_empty());
        assert_eq!(plan.epoch_count(), 1);
        assert!(plan.disabled_at(SimTime::from_hours(5)).is_empty());
        assert!(!plan.any_active_at(SimTime::ZERO));
    }

    #[test]
    fn passthrough_config_is_enabled_but_empty() {
        let topo = grid_topology();
        let plan = FaultPlan::generate(
            &topo,
            &FaultConfig::passthrough(),
            7,
            SimTime::from_days(10),
        );
        assert!(plan.is_empty());
        assert_eq!(plan.epoch_count(), 1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let topo = grid_topology();
        let horizon = SimTime::from_days(30);
        let a = FaultPlan::generate(&topo, &FaultConfig::chaos(), 42, horizon);
        let b = FaultPlan::generate(&topo, &FaultConfig::chaos(), 42, horizon);
        let c = FaultPlan::generate(&topo, &FaultConfig::chaos(), 43, horizon);
        assert_eq!(a, b);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn fault_classes_draw_from_independent_streams() {
        // Adding blackouts must not move the link-cut schedule.
        let topo = grid_topology();
        let horizon = SimTime::from_days(30);
        let mut cuts_only = FaultConfig::none();
        cuts_only.enabled = true;
        cuts_only.link_cuts = 2;
        cuts_only.cut_mean_hours = 12.0;
        let mut both = cuts_only;
        both.dc_blackouts = 3;
        both.blackout_mean_hours = 6.0;
        let a = FaultPlan::generate(&topo, &cuts_only, 9, horizon);
        let b = FaultPlan::generate(&topo, &both, 9, horizon);
        assert_eq!(a.cuts, b.cuts);
        assert!(!b.blackouts.is_empty());
    }

    #[test]
    fn epochs_partition_time_by_cut_windows() {
        let topo = grid_topology();
        let link = topo
            .links()
            .find(|(_, l)| l.class == LinkClass::TerrestrialBackbone)
            .map(|(id, _)| id)
            .unwrap();
        let mut plan = FaultPlan::empty("cut");
        plan.cuts.push(CutEpisode {
            links: vec![link],
            window: Window {
                start: SimTime::from_hours(10),
                end: SimTime::from_hours(20),
            },
        });
        plan.rebuild_epochs();
        assert_eq!(plan.epoch_count(), 3);
        assert!(plan.disabled_at(SimTime::from_hours(5)).is_empty());
        assert!(plan.disabled_at(SimTime::from_hours(10)).contains(&link));
        assert!(plan.disabled_at(SimTime::from_hours(19)).contains(&link));
        assert!(plan.disabled_at(SimTime::from_hours(20)).is_empty());
        assert_eq!(plan.cut_link_count(), 1);
        assert!(plan.class_active_at(FaultClass::LinkCut, SimTime::from_hours(15)));
        assert!(!plan.class_active_at(FaultClass::LinkCut, SimTime::from_hours(25)));
    }

    #[test]
    fn fault_router_reroutes_inside_cut_window() {
        let topo = grid_topology();
        let probe = topo.nodes_of_kind(NodeKind::ProbeHost)[0];
        let dc = topo.nodes_of_kind(NodeKind::Datacenter)[0];
        // Cut the direct metro_a -> dc backbone link for hours [10, 20).
        let direct = topo
            .links()
            .find(|(_, l)| l.class == LinkClass::TerrestrialBackbone && l.inflation > 1.2)
            .map(|(id, _)| id)
            .unwrap();
        let mut plan = FaultPlan::empty("cut");
        plan.cuts.push(CutEpisode {
            links: vec![direct],
            window: Window {
                start: SimTime::from_hours(10),
                end: SimTime::from_hours(20),
            },
        });
        plan.rebuild_epochs();

        let mut faulty = FaultRouter::new(&topo, &plan);
        let healthy_links = faulty.path_at(probe, dc, SimTime::ZERO).unwrap().links.clone();
        let rerouted_links = faulty
            .path_at(probe, dc, SimTime::from_hours(15))
            .unwrap()
            .links
            .clone();
        assert!(!rerouted_links.contains(&direct));
        assert_ne!(healthy_links, rerouted_links);

        // And it matches a plain router with the same disabled set.
        let mut reference =
            Router::with_disabled(&topo, [direct].into_iter().collect());
        assert_eq!(
            reference.path(probe, dc).unwrap().links,
            rerouted_links
        );
    }

    #[test]
    fn permanent_cut_disconnects_when_all_paths_die() {
        let topo = grid_topology();
        let probe = topo.nodes_of_kind(NodeKind::ProbeHost)[0];
        let dc = topo.nodes_of_kind(NodeKind::Datacenter)[0];
        let backbone: Vec<LinkId> = topo
            .links()
            .filter(|(_, l)| l.class == LinkClass::TerrestrialBackbone)
            .map(|(id, _)| id)
            .collect();
        let plan = FaultPlan::permanent_cut("total", backbone);
        let mut faulty = FaultRouter::new(&topo, &plan);
        assert!(faulty.path_at(probe, dc, SimTime::ZERO).is_none());
        assert!(faulty.path_at(probe, dc, SimTime::from_days(400)).is_none());
    }

    #[test]
    fn bursts_and_blackouts_answer_time_queries() {
        let topo = grid_topology();
        let dc = topo.nodes_of_kind(NodeKind::Datacenter)[0];
        let mut plan = FaultPlan::empty("mixed");
        plan.loss_bursts.push(Burst {
            class: LinkClass::Access,
            window: Window {
                start: SimTime::from_hours(1),
                end: SimTime::from_hours(3),
            },
            magnitude: 0.05,
        });
        plan.loss_bursts.push(Burst {
            class: LinkClass::Access,
            window: Window {
                start: SimTime::from_hours(2),
                end: SimTime::from_hours(4),
            },
            magnitude: 0.02,
        });
        plan.latency_bursts.push(Burst {
            class: LinkClass::TerrestrialBackbone,
            window: Window {
                start: SimTime::from_hours(1),
                end: SimTime::from_hours(2),
            },
            magnitude: 25.0,
        });
        plan.blackouts.push(Blackout {
            node: dc,
            window: Window {
                start: SimTime::from_hours(5),
                end: SimTime::from_hours(6),
            },
        });

        let h = SimTime::from_hours;
        assert_eq!(plan.extra_loss(LinkClass::Access, h(0)), 0.0);
        assert!((plan.extra_loss(LinkClass::Access, h(1)) - 0.05).abs() < 1e-12);
        // Overlap stacks additively.
        assert!((plan.extra_loss(LinkClass::Access, h(2)) - 0.07).abs() < 1e-12);
        assert_eq!(plan.extra_loss(LinkClass::MetroAggregation, h(2)), 0.0);
        assert_eq!(plan.extra_latency_ms(LinkClass::TerrestrialBackbone, h(1)), 25.0);
        assert_eq!(plan.extra_latency_ms(LinkClass::TerrestrialBackbone, h(2)), 0.0);
        assert!(plan.node_down(dc, h(5)));
        assert!(!plan.node_down(dc, h(6)), "windows are half-open");
        assert!(plan.any_active_at(h(5)));
        assert!(!plan.any_active_at(h(7)));
    }

    #[test]
    fn fault_config_encode_round_trips_every_profile() {
        for name in ["none", "passthrough", "lossy", "blackout", "chaos"] {
            let cfg = FaultConfig::profile(name).unwrap();
            let mut bytes = Vec::new();
            cfg.encode(&mut bytes);
            assert_eq!(bytes.len(), FaultConfig::ENCODED_LEN, "{name}");
            assert_eq!(FaultConfig::decode(&bytes), Some(cfg), "{name}");
        }
        // Short input and unknown class codes are rejected, not panics.
        assert_eq!(FaultConfig::decode(&[0u8; 10]), None);
        let mut bytes = Vec::new();
        FaultConfig::chaos().encode(&mut bytes);
        bytes[33] = 0xFF; // loss_burst_class code
        assert_eq!(FaultConfig::decode(&bytes), None);
    }

    #[test]
    fn plan_digest_tracks_schedule_identity() {
        let topo = grid_topology();
        let horizon = SimTime::from_days(30);
        let a = FaultPlan::generate(&topo, &FaultConfig::chaos(), 42, horizon);
        let b = FaultPlan::generate(&topo, &FaultConfig::chaos(), 42, horizon);
        let c = FaultPlan::generate(&topo, &FaultConfig::chaos(), 43, horizon);
        assert_eq!(a.digest(), b.digest(), "same schedule, same digest");
        assert_ne!(a.digest(), c.digest(), "different schedule, different digest");
        assert_ne!(
            FaultPlan::empty("x").digest(),
            a.digest(),
            "empty plan digests differently from a populated one"
        );
        // The empty digest is still stable across constructions.
        assert_eq!(FaultPlan::empty("x").digest(), FaultPlan::empty("y").digest());
    }

    #[test]
    fn generated_windows_start_inside_horizon() {
        let topo = grid_topology();
        let horizon = SimTime::from_days(20);
        let plan = FaultPlan::generate(&topo, &FaultConfig::chaos(), 11, horizon);
        assert!(!plan.is_empty());
        for cut in &plan.cuts {
            assert!(cut.window.start < horizon);
            assert!(cut.window.start < cut.window.end);
        }
        for b in plan.loss_bursts.iter().chain(plan.latency_bursts.iter()) {
            assert!(b.window.start < horizon);
        }
        for b in &plan.blackouts {
            assert!(b.window.start < horizon);
        }
    }
}
