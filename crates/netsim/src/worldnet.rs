//! Global topology synthesis.
//!
//! Builds the simulated Internet the measurement campaign runs over:
//!
//! 1. a fixed backbone of ~30 interconnection hubs (the major IXP /
//!    cable-landing cities) wired with terrestrial and submarine links,
//! 2. one national backbone PoP per country, attached to its nearest
//!    hubs with inflation derived from the country's infrastructure
//!    quality (poor infrastructure ⇒ longer, more congested detours),
//! 3. one or more metro PoPs per country (population-scaled),
//! 4. attachment points for probes, datacenters and edge sites.
//!
//! The structure — not per-pair magic numbers — is what reproduces the
//! paper's findings: a probe in a country without a datacenter can only
//! reach the cloud through its national PoP and regional hub, so its
//! RTT automatically reflects the geography and quality of that detour.

use std::collections::HashMap;

use shears_geo::sample::GeoSampler;
use shears_geo::{Country, CountryAtlas, GeoPoint, SpatialGrid};

use crate::access::AccessLink;
use crate::topology::{LinkClass, NodeId, NodeKind, Topology};

/// A backbone hub city.
struct Hub {
    name: &'static str,
    country: &'static str,
    lat: f64,
    lon: f64,
}

/// The interconnection hubs. Indices are referenced by `HUB_LINKS`.
const HUBS: &[Hub] = &[
    // North America (0-6)
    Hub { name: "Ashburn", country: "US", lat: 39.0, lon: -77.5 },
    Hub { name: "New York", country: "US", lat: 40.7, lon: -74.0 },
    Hub { name: "Chicago", country: "US", lat: 41.9, lon: -87.6 },
    Hub { name: "Dallas", country: "US", lat: 32.8, lon: -96.8 },
    Hub { name: "Los Angeles", country: "US", lat: 34.1, lon: -118.2 },
    Hub { name: "Seattle", country: "US", lat: 47.6, lon: -122.3 },
    Hub { name: "Miami", country: "US", lat: 25.8, lon: -80.2 },
    // Latin America (7-10)
    Hub { name: "Mexico City", country: "MX", lat: 19.4, lon: -99.1 },
    Hub { name: "Sao Paulo", country: "BR", lat: -23.5, lon: -46.6 },
    Hub { name: "Buenos Aires", country: "AR", lat: -34.6, lon: -58.4 },
    Hub { name: "Santiago", country: "CL", lat: -33.4, lon: -70.6 },
    // Europe (11-18)
    Hub { name: "London", country: "GB", lat: 51.5, lon: -0.1 },
    Hub { name: "Amsterdam", country: "NL", lat: 52.4, lon: 4.9 },
    Hub { name: "Frankfurt", country: "DE", lat: 50.1, lon: 8.7 },
    Hub { name: "Paris", country: "FR", lat: 48.9, lon: 2.4 },
    Hub { name: "Madrid", country: "ES", lat: 40.4, lon: -3.7 },
    Hub { name: "Marseille", country: "FR", lat: 43.3, lon: 5.4 },
    Hub { name: "Stockholm", country: "SE", lat: 59.3, lon: 18.1 },
    Hub { name: "Warsaw", country: "PL", lat: 52.2, lon: 21.0 },
    // Middle East / Africa (19-23)
    Hub { name: "Dubai", country: "AE", lat: 25.2, lon: 55.3 },
    Hub { name: "Cairo", country: "EG", lat: 30.0, lon: 31.2 },
    Hub { name: "Johannesburg", country: "ZA", lat: -26.2, lon: 28.0 },
    Hub { name: "Nairobi", country: "KE", lat: -1.3, lon: 36.8 },
    Hub { name: "Lagos", country: "NG", lat: 6.5, lon: 3.4 },
    // Asia (24-30)
    Hub { name: "Mumbai", country: "IN", lat: 19.1, lon: 72.9 },
    Hub { name: "Singapore", country: "SG", lat: 1.35, lon: 103.8 },
    Hub { name: "Hong Kong", country: "HK", lat: 22.3, lon: 114.2 },
    Hub { name: "Tokyo", country: "JP", lat: 35.7, lon: 139.7 },
    Hub { name: "Seoul", country: "KR", lat: 37.6, lon: 127.0 },
    Hub { name: "Moscow", country: "RU", lat: 55.8, lon: 37.6 },
    Hub { name: "Chennai", country: "IN", lat: 13.1, lon: 80.3 },
    // Oceania (31-32)
    Hub { name: "Sydney", country: "AU", lat: -33.9, lon: 151.2 },
    Hub { name: "Auckland", country: "NZ", lat: -36.8, lon: 174.8 },
    // Additional European IXP hubs (33-34): MIX Milan and VIX Vienna,
    // both top-ten European exchanges; without them Italy and central
    // Europe detour via Marseille/Warsaw, which real paths do not.
    Hub { name: "Milan", country: "IT", lat: 45.5, lon: 9.2 },
    Hub { name: "Vienna", country: "AT", lat: 48.2, lon: 16.4 },
];

/// Hub adjacency: (a, b, submarine?, inflation). Terrestrial links model
/// long-haul fibre; submarine entries follow the major cable systems
/// (transatlantic, transpacific, Europe–Asia via Suez, SAm–NAm, etc.).
const HUB_LINKS: &[(usize, usize, bool, f64)] = &[
    // US mesh
    (0, 1, false, 1.15), (0, 2, false, 1.2), (0, 6, false, 1.2),
    (1, 2, false, 1.15), (2, 3, false, 1.15), (2, 5, false, 1.25),
    (3, 4, false, 1.2), (3, 6, false, 1.2), (4, 5, false, 1.15),
    // Canada rides the US mesh via country attachment.
    // Mexico / LatAm
    (3, 7, false, 1.25), (6, 8, true, 1.25), (6, 7, false, 1.3),
    (8, 9, false, 1.25), (9, 10, false, 1.3), (10, 8, false, 1.4),
    (6, 10, true, 1.35),
    // Transatlantic
    (1, 11, true, 1.1), (0, 14, true, 1.15), (1, 12, true, 1.12),
    // Europe mesh
    (11, 12, false, 1.1), (11, 14, false, 1.1), (12, 13, false, 1.1),
    (13, 14, false, 1.1), (14, 15, false, 1.15), (15, 16, false, 1.2),
    (14, 16, false, 1.15), (13, 17, false, 1.2), (13, 18, false, 1.15),
    (17, 18, false, 1.25), (18, 29, false, 1.3), (17, 29, false, 1.35),
    // Europe–Middle East–Asia (Suez route)
    (16, 20, true, 1.2), (20, 19, true, 1.25), (19, 24, true, 1.2),
    (24, 30, false, 1.3), (30, 25, true, 1.2), (24, 25, true, 1.25),
    (25, 26, true, 1.15), (26, 27, true, 1.2), (26, 28, true, 1.25),
    (27, 28, true, 1.15), (27, 4, true, 1.15), (27, 5, true, 1.15),
    (26, 25, true, 1.15), (29, 27, false, 1.6),
    // Africa: coastal cables + thin inland
    (16, 23, true, 1.35), (20, 22, true, 1.4), (22, 21, true, 1.35),
    (23, 21, true, 1.45), (19, 22, true, 1.35), (21, 31, true, 1.5),
    // South Atlantic: the SACS/SAIL systems (Fortaleza-side reached via
    // the Sao Paulo hub) give South America its only non-NA corridor.
    (8, 23, true, 1.5),
    // Oceania
    (25, 31, true, 1.25), (31, 32, true, 1.15), (4, 31, true, 1.2),
    (32, 4, true, 1.25),
    // Milan / Vienna meshing into the European core
    (33, 16, false, 1.15), (33, 13, false, 1.15), (33, 34, false, 1.2),
    (34, 13, false, 1.15), (34, 18, false, 1.2), (33, 14, false, 1.2),
];

/// Configuration for world synthesis.
#[derive(Debug, Clone)]
pub struct WorldNetConfig {
    /// Seed for metro placement.
    pub seed: u64,
    /// How many hubs each national PoP attaches to (≥ 1; 2 gives path
    /// diversity and is the default).
    pub hub_attachments: usize,
    /// How many hubs a private-backbone datacenter peers with directly.
    pub private_peering_hubs: usize,
}

impl Default for WorldNetConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EA5,
            hub_attachments: 2,
            private_peering_hubs: 4,
        }
    }
}

/// The built world: topology plus attachment indices.
pub struct WorldNet {
    topo: Topology,
    hub_nodes: Vec<NodeId>,
    national_pop: HashMap<String, NodeId>,
    metro_pops: HashMap<String, Vec<NodeId>>,
    metro_grid: SpatialGrid<NodeId>,
}

impl WorldNet {
    /// Builds the hub backbone, national PoPs and metro PoPs for every
    /// country in `atlas`.
    pub fn build(atlas: &CountryAtlas, cfg: &WorldNetConfig) -> Self {
        assert!(cfg.hub_attachments >= 1, "need at least one hub attachment");
        let mut topo = Topology::new();
        let mut sampler = GeoSampler::new(cfg.seed);

        // 1. Hubs.
        let hub_nodes: Vec<NodeId> = HUBS
            .iter()
            .map(|h| topo.add_node(NodeKind::IxpHub, GeoPoint::new(h.lat, h.lon), h.country))
            .collect();
        let mut hub_grid: SpatialGrid<usize> = SpatialGrid::new(10.0);
        for (i, h) in HUBS.iter().enumerate() {
            hub_grid.insert(GeoPoint::new(h.lat, h.lon), i);
        }
        for &(a, b, submarine, inflation) in HUB_LINKS {
            let class = if submarine {
                LinkClass::SubmarineCable
            } else {
                LinkClass::TerrestrialBackbone
            };
            topo.connect(hub_nodes[a], hub_nodes[b], class, inflation);
        }

        // 2. National PoPs + metros.
        let mut national_pop = HashMap::new();
        let mut metro_pops: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut metro_grid: SpatialGrid<NodeId> = SpatialGrid::new(5.0);
        for country in atlas.countries() {
            let pop_node =
                topo.add_node(NodeKind::BackbonePop, country.centroid, country.code);
            national_pop.insert(country.code.to_string(), pop_node);

            // Attach to nearest hubs with quality-derived inflation.
            let mut hubs_by_dist = hub_grid.within(country.centroid, 25_000.0);
            hubs_by_dist.truncate(cfg.hub_attachments);
            for (dist_km, entry) in hubs_by_dist {
                let class = if dist_km > 3000.0 && country.submarine_landing {
                    LinkClass::SubmarineCable
                } else {
                    LinkClass::TerrestrialBackbone
                };
                let inflation = Self::national_inflation(country);
                topo.connect(pop_node, hub_nodes[entry.id], class, inflation);
            }

            // Metro PoPs around the population centre.
            let n_metros = Self::metro_count(country);
            let spread_km = Self::metro_spread_km(country);
            let metros = metro_pops.entry(country.code.to_string()).or_default();
            for m in 0..n_metros {
                let loc = if m == 0 {
                    country.centroid // the primary metro sits at the centroid
                } else {
                    sampler.in_disc_clustered(country.centroid, spread_km, 1.5)
                };
                let metro = topo.add_node(NodeKind::MetroPop, loc, country.code);
                topo.connect(
                    metro,
                    pop_node,
                    LinkClass::MetroAggregation,
                    1.1 + (1.0 - country.infra_quality) * 0.6,
                );
                metros.push(metro);
                metro_grid.insert(loc, metro);
            }
        }

        Self {
            topo,
            hub_nodes,
            national_pop,
            metro_pops,
            metro_grid,
        }
    }

    /// Inflation of a country's uplink to its hubs: good infrastructure
    /// routes nearly straight (1.15), poor infrastructure detours badly
    /// (up to ~2.5, worse without a submarine landing). These two
    /// coefficients are the main calibration knobs for Fig. 4/6 tails.
    fn national_inflation(country: &Country) -> f64 {
        let mut inflation = 1.15 + (1.0 - country.infra_quality) * 1.1;
        if !country.submarine_landing {
            inflation += 0.35; // transit through a neighbour first
        }
        inflation
    }

    fn metro_count(country: &Country) -> usize {
        if country.population_m > 100.0 {
            4
        } else if country.population_m > 30.0 {
            3
        } else if country.population_m > 8.0 {
            2
        } else {
            1
        }
    }

    fn metro_spread_km(country: &Country) -> f64 {
        // Rough landmass proxy: population and tier correlate with how
        // far secondary metros sit from the primary one.
        (150.0 + country.population_m.sqrt() * 40.0).min(1200.0)
    }

    /// Read-only view of the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The hub node ids, in the fixed hub-table order.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hub_nodes
    }

    /// Hub descriptions: `(city name, country code, node id)`, in hub
    /// table order. Useful for reports and path pretty-printing.
    pub fn hub_info(&self) -> Vec<(&'static str, &'static str, NodeId)> {
        HUBS.iter()
            .zip(&self.hub_nodes)
            .map(|(h, &id)| (h.name, h.country, id))
            .collect()
    }

    /// Metro PoPs of a country (empty slice if the code is unknown).
    pub fn metros(&self, country_code: &str) -> &[NodeId] {
        self.metro_pops
            .get(country_code)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The national backbone PoP of a country.
    pub fn national_pop(&self, country_code: &str) -> Option<NodeId> {
        self.national_pop.get(country_code).copied()
    }

    /// The metro PoP nearest to a location (any country).
    pub fn nearest_metro(&self, location: GeoPoint) -> Option<NodeId> {
        self.metro_grid.nearest(location).map(|e| e.id)
    }

    /// Attaches a probe host at `location`: probe → access router →
    /// nearest metro PoP *of the probe's own country* (falling back to
    /// the nearest metro anywhere for countries missing from the atlas).
    /// Returns the probe's node id.
    pub fn attach_probe(
        &mut self,
        location: GeoPoint,
        country_code: &str,
        access: AccessLink,
    ) -> NodeId {
        let probe = self
            .topo
            .add_node(NodeKind::ProbeHost, location, country_code);
        let router = self
            .topo
            .add_node(NodeKind::AccessRouter, location, country_code);
        self.topo.connect_with_delay(
            probe,
            router,
            LinkClass::Access,
            access.floor_one_way_ms(),
        );
        let metro = self
            .metro_pops
            .get(country_code)
            .and_then(|metros| {
                metros
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        location
                            .distance_km(self.topo.node(a).location)
                            .total_cmp(&location.distance_km(self.topo.node(b).location))
                    })
            })
            .or_else(|| self.nearest_metro(location))
            .expect("world has at least one metro PoP");
        // Middle-mile: metro aggregation with mild quality-independent
        // inflation (intra-city paths are short anyway).
        self.topo
            .connect(router, metro, LinkClass::MetroAggregation, 1.2);
        probe
    }

    /// Attaches a datacenter at `location`. Private-backbone providers
    /// additionally peer directly with the nearest
    /// [`WorldNetConfig::private_peering_hubs`] hubs over
    /// [`LinkClass::PrivateBackbone`] links — the modelling of §4.1's
    /// "private, large bandwidth, low latency network backbones with
    /// wide-scale ISP peering".
    pub fn attach_datacenter(
        &mut self,
        location: GeoPoint,
        country_code: &str,
        private_backbone: bool,
        cfg: &WorldNetConfig,
    ) -> NodeId {
        let dc = self
            .topo
            .add_node(NodeKind::Datacenter, location, country_code);
        let metro = self
            .metro_pops
            .get(country_code)
            .and_then(|metros| {
                metros
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        location
                            .distance_km(self.topo.node(a).location)
                            .total_cmp(&location.distance_km(self.topo.node(b).location))
                    })
            })
            .or_else(|| self.nearest_metro(location));
        if let Some(metro) = metro {
            self.topo
                .connect(dc, metro, LinkClass::DatacenterFabric, 1.1);
        }
        // Sort hubs by distance from the DC.
        let mut hubs: Vec<(f64, usize, NodeId)> = self
            .hub_nodes
            .iter()
            .enumerate()
            .map(|(i, &h)| (location.distance_km(self.topo.node(h).location), i, h))
            .collect();
        hubs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if private_backbone {
            // §4.1: "private, large bandwidth, low latency network
            // backbones with wide-scale ISP peering": the provider's
            // network is entered at the major hub nearest the *user*
            // and rides the private backbone from there, which a link
            // from every hub to the DC models exactly (stub routing
            // keeps the DC from becoming public transit). The nearest
            // `private_peering_hubs` get the densest, straightest fibre;
            // long-haul private spans still beat public transit but
            // carry slightly more inflation.
            for (rank, &(_, _, hub)) in hubs.iter().enumerate() {
                let inflation = if rank < cfg.private_peering_hubs {
                    1.1
                } else {
                    1.18
                };
                self.topo.connect(dc, hub, LinkClass::PrivateBackbone, inflation);
            }
        } else {
            // Public-transit providers attach at the single nearest hub.
            let (_, _, hub) = hubs[0];
            self.topo
                .connect(dc, hub, LinkClass::TerrestrialBackbone, 1.25);
        }
        dc
    }

    /// Attaches an edge-computing site co-located with the given metro
    /// PoP (extension experiment EXT1: edge at the basestation/metro).
    pub fn attach_edge_site(&mut self, metro: NodeId) -> NodeId {
        let (loc, country) = {
            let n = self.topo.node(metro);
            (n.location, n.country.clone())
        };
        let edge = self.topo.add_node(NodeKind::EdgeSite, loc, &country);
        self.topo
            .connect_with_delay(edge, metro, LinkClass::DatacenterFabric, 0.2);
        edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTechnology;
    use crate::ping::{PingConfig, PingProber};
    use crate::queue::DiurnalLoad;
    use crate::routing::Router;
    use crate::stochastic::SimRng;
    use crate::time::SimTime;

    fn world() -> (CountryAtlas, WorldNet) {
        let atlas = CountryAtlas::global();
        let net = WorldNet::build(&atlas, &WorldNetConfig::default());
        (atlas, net)
    }

    #[test]
    fn hub_indices_are_in_bounds() {
        for &(a, b, _, infl) in HUB_LINKS {
            assert!(a < HUBS.len() && b < HUBS.len(), "({a},{b})");
            assert!(a != b);
            assert!(infl >= 1.0);
        }
    }

    #[test]
    fn every_country_has_pop_and_metro() {
        let (atlas, net) = world();
        for c in atlas.countries() {
            assert!(net.national_pop(c.code).is_some(), "{}", c.code);
            assert!(!net.metros(c.code).is_empty(), "{}", c.code);
        }
    }

    #[test]
    fn backbone_is_fully_connected() {
        let (atlas, net) = world();
        let mut router = Router::new(net.topology());
        let de = net.national_pop("DE").unwrap();
        for c in atlas.countries() {
            let pop = net.national_pop(c.code).unwrap();
            assert!(
                router.path(de, pop).is_some(),
                "no path DE -> {}",
                c.code
            );
        }
    }

    #[test]
    fn populous_countries_get_more_metros() {
        let (_, net) = world();
        assert!(net.metros("US").len() >= 4);
        assert!(net.metros("IS").len() == 1);
        assert!(net.metros("US").len() > net.metros("EE").len());
    }

    #[test]
    fn probe_attach_and_ping_local_dc() {
        let (atlas, mut net) = world();
        let de = atlas.by_code("DE").unwrap();
        let cfg = WorldNetConfig::default();
        let dc = net.attach_datacenter(GeoPoint::new(50.1, 8.7), "DE", true, &cfg);
        let probe = net.attach_probe(
            GeoPoint::new(48.1, 11.6),
            "DE",
            AccessLink::new(AccessTechnology::Ftth, 1.0),
        );
        let _ = de;
        let mut prober = PingProber::new(net.topology());
        let mut rng = SimRng::new(9);
        let out = prober
            .ping(
                probe,
                dc,
                Some(AccessLink::new(AccessTechnology::Ftth, 1.0)),
                DiurnalLoad::residential(),
                SimTime::from_hours(2),
                &PingConfig::default(),
                &mut rng,
            )
            .expect("connected");
        let min = out.min_ms().expect("some replies");
        // Munich to Frankfurt over FTTH: single-digit to low-teens ms.
        assert!(min > 2.0 && min < 40.0, "min RTT {min}");
    }

    #[test]
    fn under_served_country_sees_higher_rtt_to_europe() {
        let (_, mut net) = world();
        let cfg = WorldNetConfig::default();
        let dc = net.attach_datacenter(GeoPoint::new(50.1, 8.7), "DE", true, &cfg);
        let probe_de = net.attach_probe(
            GeoPoint::new(52.5, 13.4),
            "DE",
            AccessLink::new(AccessTechnology::Ftth, 1.0),
        );
        let probe_td = net.attach_probe(
            GeoPoint::new(12.1, 15.0),
            "TD",
            AccessLink::new(AccessTechnology::Ftth, 1.0),
        );
        let mut prober = PingProber::new(net.topology());
        let mut rng = SimRng::new(13);
        let rtt = |prober: &mut PingProber, p, rng: &mut SimRng| {
            prober
                .ping(
                    p,
                    dc,
                    Some(AccessLink::new(AccessTechnology::Ftth, 1.0)),
                    DiurnalLoad::residential(),
                    SimTime::from_hours(4),
                    &PingConfig { packets: 5, ..Default::default() },
                    rng,
                )
                .unwrap()
                .min_ms()
                .unwrap()
        };
        let de = rtt(&mut prober, probe_de, &mut rng);
        let td = rtt(&mut prober, probe_td, &mut rng);
        assert!(
            td > de * 3.0,
            "Chad ({td} ms) should be far slower than Berlin ({de} ms)"
        );
        assert!(td > 80.0, "Chad to Frankfurt should exceed 80 ms, got {td}");
    }

    #[test]
    fn private_backbone_beats_public_transit_from_afar() {
        // Two DCs in the same city; the private-backbone one should be
        // reachable at equal-or-lower latency from another continent.
        let (_, mut net) = world();
        let cfg = WorldNetConfig::default();
        let dc_priv = net.attach_datacenter(GeoPoint::new(1.35, 103.8), "SG", true, &cfg);
        let dc_pub = net.attach_datacenter(GeoPoint::new(1.35, 103.8), "SG", false, &cfg);
        let probe = net.attach_probe(
            GeoPoint::new(35.7, 139.7),
            "JP",
            AccessLink::new(AccessTechnology::Ftth, 1.0),
        );
        let mut router = Router::new(net.topology());
        let d_priv = router.path(probe, dc_priv).unwrap().base_one_way_ms;
        let d_pub = router.path(probe, dc_pub).unwrap().base_one_way_ms;
        assert!(
            d_priv <= d_pub,
            "private {d_priv} ms should not exceed public {d_pub} ms"
        );
    }

    #[test]
    fn edge_site_is_closer_than_remote_dc() {
        let (_, mut net) = world();
        let cfg = WorldNetConfig::default();
        let dc = net.attach_datacenter(GeoPoint::new(50.1, 8.7), "DE", true, &cfg);
        let metro = net.metros("PL")[0];
        let edge = net.attach_edge_site(metro);
        let probe = net.attach_probe(
            GeoPoint::new(52.2, 21.0),
            "PL",
            AccessLink::new(AccessTechnology::Ftth, 1.0),
        );
        let mut router = Router::new(net.topology());
        let to_edge = router.path(probe, edge).unwrap().base_one_way_ms;
        let to_dc = router.path(probe, dc).unwrap().base_one_way_ms;
        assert!(to_edge < to_dc, "edge {to_edge} vs dc {to_dc}");
    }

    #[test]
    fn hub_info_names_every_hub() {
        let (_, net) = world();
        let info = net.hub_info();
        assert_eq!(info.len(), net.hubs().len());
        assert!(info.iter().any(|(name, cc, _)| *name == "Frankfurt" && *cc == "DE"));
        assert!(info.iter().any(|(name, _, _)| *name == "Milan"));
        // Ids line up with the node table.
        for (_, cc, id) in info {
            assert_eq!(net.topology().node(id).country, cc);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let atlas = CountryAtlas::global();
        let a = WorldNet::build(&atlas, &WorldNetConfig::default());
        let b = WorldNet::build(&atlas, &WorldNetConfig::default());
        assert_eq!(a.topology().node_count(), b.topology().node_count());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
        for ((_, na), (_, nb)) in a.topology().nodes().zip(b.topology().nodes()) {
            assert_eq!(na.location, nb.location);
            assert_eq!(na.kind, nb.kind);
        }
    }
}
