//! Congestion model: diurnal load and M/M/1-style queueing delay.
//!
//! We do not simulate individual background flows — at the scale of a
//! nine-month, 3-million-sample campaign that would be both intractable
//! and unidentifiable. Instead each link carries an analytic congestion
//! model: a diurnal utilisation curve (local-time evening peak, the
//! standard shape in ISP traffic reports) feeding an M/M/1 sojourn
//! approximation `W = S · ρ/(1−ρ)`. The paper's measurements span all
//! hours ("every three hours" per probe), so the diurnal spread is part
//! of the distribution shape in Fig. 6.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Diurnal utilisation curve: base load plus an evening peak, in local
/// time. Values are utilisation ρ ∈ [0, 1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiurnalLoad {
    /// Utilisation at the quietest hour.
    pub base: f64,
    /// Extra utilisation at the busiest hour (base + peak < 1).
    pub peak: f64,
    /// Local hour of the busiest point (e.g. 20.5 ≈ 20:30).
    pub peak_hour: f64,
}

impl DiurnalLoad {
    /// A typical residential access profile: quiet at 04:00, busy at 21:00.
    pub fn residential() -> Self {
        Self {
            base: 0.15,
            peak: 0.55,
            peak_hour: 21.0,
        }
    }

    /// A lightly loaded, over-provisioned backbone profile.
    pub fn backbone() -> Self {
        Self {
            base: 0.10,
            peak: 0.25,
            peak_hour: 20.0,
        }
    }

    /// Utilisation at the given local hour `[0, 24)`, following a raised
    /// cosine centred on `peak_hour`.
    ///
    /// # Panics
    /// Debug-asserts that the resulting utilisation stays below 1.
    pub fn utilization_at(&self, local_hour: f64) -> f64 {
        let phase = (local_hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let rho = self.base + self.peak * 0.5 * (1.0 + phase.cos());
        debug_assert!((0.0..1.0).contains(&rho), "utilisation {rho} out of range");
        rho.clamp(0.0, 0.999)
    }

    /// Utilisation at simulated instant `t` for a site at `longitude_deg`.
    pub fn utilization(&self, t: SimTime, longitude_deg: f64) -> f64 {
        self.utilization_at(t.local_hour_of_day(longitude_deg))
    }
}

/// M/M/1 sojourn-time approximation for queueing delay on a link.
///
/// `service_ms` is the mean per-packet service time of the bottleneck
/// queue; the expected waiting time at utilisation ρ is
/// `service_ms · ρ / (1 − ρ)`, capped to keep pathological utilisations
/// from producing unbounded delays (real queues drop instead).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mm1Queue {
    /// Mean service time of the bottleneck, ms.
    pub service_ms: f64,
    /// Hard cap on the waiting time, ms (models finite buffers).
    pub max_wait_ms: f64,
}

impl Mm1Queue {
    /// A queue with the given service time and a buffer cap.
    pub fn new(service_ms: f64, max_wait_ms: f64) -> Self {
        assert!(service_ms >= 0.0 && max_wait_ms >= 0.0);
        Self {
            service_ms,
            max_wait_ms,
        }
    }

    /// Expected waiting time at utilisation `rho`.
    pub fn expected_wait_ms(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 0.999);
        (self.service_ms * rho / (1.0 - rho)).min(self.max_wait_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_peaks_at_peak_hour() {
        let d = DiurnalLoad::residential();
        let at_peak = d.utilization_at(21.0);
        let off_peak = d.utilization_at(9.0);
        let trough = d.utilization_at(9.0_f64.min(33.0 - 24.0)); // 09:00
        assert!(at_peak > off_peak);
        assert!((at_peak - (0.15 + 0.55)).abs() < 1e-9);
        assert!(trough >= d.base);
    }

    #[test]
    fn utilization_is_periodic() {
        let d = DiurnalLoad::residential();
        for h in 0..24 {
            let a = d.utilization_at(h as f64);
            let b = d.utilization_at(h as f64 + 24.0 - 24.0);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_uses_local_time() {
        let d = DiurnalLoad::residential();
        // 21:00 UTC is peak for longitude 0 but 06:00 for longitude 135E.
        let t = SimTime::from_hours(21);
        let at_zero = d.utilization(t, 0.0);
        let at_east = d.utilization(t, 135.0);
        assert!(at_zero > at_east);
    }

    #[test]
    fn mm1_wait_grows_convexly() {
        let q = Mm1Queue::new(2.0, 1000.0);
        let w25 = q.expected_wait_ms(0.25);
        let w50 = q.expected_wait_ms(0.50);
        let w90 = q.expected_wait_ms(0.90);
        assert!(w25 < w50 && w50 < w90);
        // Convexity: the second difference is positive.
        assert!(w90 - w50 > w50 - w25);
        assert!((w50 - 2.0).abs() < 1e-9, "rho=0.5 gives one service time");
    }

    #[test]
    fn mm1_wait_is_capped() {
        let q = Mm1Queue::new(2.0, 50.0);
        assert_eq!(q.expected_wait_ms(0.9999), 50.0);
        assert_eq!(q.expected_wait_ms(5.0), 50.0);
    }

    #[test]
    fn mm1_zero_load_zero_wait() {
        let q = Mm1Queue::new(2.0, 50.0);
        assert_eq!(q.expected_wait_ms(0.0), 0.0);
        assert_eq!(q.expected_wait_ms(-1.0), 0.0);
    }
}
