//! Simulation time.
//!
//! Time is a `u64` count of **nanoseconds** since the start of the
//! simulation. Nanosecond resolution keeps sub-millisecond access-network
//! effects exact while still allowing simulations of several simulated
//! years (`u64::MAX` ns ≈ 584 years) without overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime::from_secs(h * 3600)
    }

    /// Creates a time from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimTime::from_hours(d * 24)
    }

    /// Creates a time from a (possibly fractional) number of
    /// milliseconds, rounding to the nearest nanosecond. Negative or
    /// non-finite inputs saturate to zero — delay contributions are never
    /// allowed to push time backwards.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ms * 1e6).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as whole hours (truncating).
    pub const fn as_hours(self) -> u64 {
        self.0 / 3_600_000_000_000
    }

    /// The hour-of-day in `[0, 24)` for a site at the given longitude,
    /// treating the epoch as midnight UTC. Used by the diurnal load model:
    /// congestion follows *local* time, so two probes measuring at the
    /// same instant see different load depending on where they are.
    pub fn local_hour_of_day(self, longitude_deg: f64) -> f64 {
        let utc_h = (self.0 as f64 / 3.6e12) % 24.0;
        let offset = longitude_deg / 15.0;
        (utc_h + offset).rem_euclid(24.0)
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis_f64();
        if ms < 1000.0 {
            write!(f, "{ms:.3} ms")
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_hours(3).as_hours(), 3);
        assert_eq!(SimTime::from_days(2).as_hours(), 48);
    }

    #[test]
    fn fractional_millis() {
        let t = SimTime::from_millis_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000);
        assert_eq!(SimTime::from_millis_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_millis_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_millis_f64(f64::INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_millis_f64(), 14.0);
        assert_eq!((a - b).as_millis_f64(), 6.0);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b), SimTime::from_millis(6));
    }

    #[test]
    fn local_hour_follows_longitude() {
        let noon_utc = SimTime::from_hours(12);
        assert!((noon_utc.local_hour_of_day(0.0) - 12.0).abs() < 1e-9);
        // +90° east is +6 hours.
        assert!((noon_utc.local_hour_of_day(90.0) - 18.0).abs() < 1e-9);
        // -180° wraps below zero.
        assert!((noon_utc.local_hour_of_day(-180.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_millis_f64(12.345)), "12.345 ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000 s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
