//! Shortest-path routing: a dynamic cached [`Router`] and a frozen,
//! shareable [`RouteTable`].
//!
//! Routes are computed by Dijkstra over the link base delays plus
//! per-node processing delays — i.e. the *uncongested* floor. Real
//! interdomain routing is not delay-optimal, but the detours BGP
//! introduces are already encoded structurally in the topology (probes
//! can only exit a country through its PoPs and hubs), so delay-shortest
//! paths over that graph reproduce the inflation the paper observes
//! without simulating BGP itself.
//!
//! Two resolution strategies share one Dijkstra core (same relaxation
//! order, same `total_cmp`-then-node-id tie-break, therefore bit-equal
//! paths):
//!
//! * [`Router`] — incremental, per-pair, with a cache and optional
//!   disabled links. The dynamic / failure-injection path.
//! * [`RouteTable`] — all probe→target routes resolved up front, one
//!   shortest-path tree per source (one Dijkstra covers all of that
//!   source's targets), stored in a flat CSR-style arena and shared
//!   read-only across campaign shards. The frozen fast path: lookups
//!   hand out borrowed [`PathRef`]s, never cloning.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::time::SimTime;
use crate::topology::{LinkId, NodeId, Topology};

/// A resolved route between two nodes (owned form).
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Endpoints, in order.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Links traversed, in order from `from` to `to`.
    pub links: Vec<LinkId>,
    /// Nodes visited, `from` first, `to` last (`links.len() + 1` entries).
    pub nodes: Vec<NodeId>,
    /// One-way delay floor in ms: link base delays plus processing at
    /// every intermediate node (endpoints excluded).
    pub base_one_way_ms: f64,
}

impl PathInfo {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// A borrowed view of this path.
    pub fn as_path_ref(&self) -> PathRef<'_> {
        PathRef {
            links: &self.links,
            nodes: &self.nodes,
            base_one_way_ms: self.base_one_way_ms,
        }
    }
}

/// A borrowed view of a resolved route — what the ping/TCP hot path
/// consumes. Copying a `PathRef` copies two fat pointers and a float;
/// the link/node sequences stay wherever they live (a [`PathInfo`] or
/// the [`RouteTable`] arena).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathRef<'a> {
    /// Links traversed, in order from source to destination.
    pub links: &'a [LinkId],
    /// Nodes visited, source first, destination last
    /// (`links.len() + 1` entries).
    pub nodes: &'a [NodeId],
    /// One-way delay floor in ms (see [`PathInfo::base_one_way_ms`]).
    pub base_one_way_ms: f64,
}

impl PathRef<'_> {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn dest(&self) -> NodeId {
        self.nodes[self.nodes.len() - 1]
    }

    /// An owned copy of the route (for storage and equivalence tests).
    pub fn to_path_info(self) -> PathInfo {
        PathInfo {
            from: self.source(),
            to: self.dest(),
            links: self.links.to_vec(),
            nodes: self.nodes.to_vec(),
            base_one_way_ms: self.base_one_way_ms,
        }
    }
}

#[derive(PartialEq)]
struct QueueItem {
    dist: f64,
    node: NodeId,
}

impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; tie-break on node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The shared Dijkstra core: delay-shortest paths from `from` to every
/// node in `targets`, in target order. Runs a single search that stops
/// as soon as all targets are settled, then reconstructs each path from
/// the predecessor chain.
///
/// Because a node's predecessor is frozen the moment it is settled (and
/// the pop order up to any given settlement does not depend on the
/// target set), the path this returns for each target is **bit-equal**
/// to a dedicated single-target run — the property the `RouteTable`
/// equivalence tests pin.
fn shortest_paths(
    topo: &Topology,
    disabled: &HashSet<LinkId>,
    from: NodeId,
    targets: &[NodeId],
) -> Vec<Option<PathInfo>> {
    let n = topo.node_count();
    if from.index() >= n {
        return targets.iter().map(|_| None).collect();
    }
    // Pending targets that require the search; `from` itself and stale
    // ids resolve during reconstruction.
    let mut pending = vec![false; n];
    let mut remaining = 0usize;
    for &to in targets {
        if to.index() < n && to != from && !pending[to.index()] {
            pending[to.index()] = true;
            remaining += 1;
        }
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    if remaining > 0 {
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(QueueItem {
            dist: 0.0,
            node: from,
        });
        while let Some(QueueItem { dist: d, node }) = heap.pop() {
            if d > dist[node.index()] {
                continue; // stale entry
            }
            if pending[node.index()] {
                pending[node.index()] = false;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            // Stub endpoints (probes, datacenters, edge sites) never
            // forward third-party traffic: expanding them as transit
            // would let a multi-homed datacenter act as a wormhole
            // between its peering hubs.
            if node != from && topo.node(node).kind.is_stub() {
                continue;
            }
            // Processing cost applies when transiting a node, not at the
            // source; folded into the outgoing edge relaxation.
            let proc = if node == from {
                0.0
            } else {
                topo.node(node).kind.processing_delay_ms()
            };
            for (next, link) in topo.neighbors(node) {
                if disabled.contains(&link) {
                    continue;
                }
                let nd = d + proc + topo.link(link).base_delay_ms;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    prev[next.index()] = Some((node, link));
                    heap.push(QueueItem {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
    }
    targets
        .iter()
        .map(|&to| reconstruct(from, to, &dist, &prev))
        .collect()
}

/// Rebuilds the path to `to` from the predecessor chain of a completed
/// search rooted at `from`.
fn reconstruct(
    from: NodeId,
    to: NodeId,
    dist: &[f64],
    prev: &[Option<(NodeId, LinkId)>],
) -> Option<PathInfo> {
    if to.index() >= dist.len() {
        return None;
    }
    if to == from {
        return Some(PathInfo {
            from,
            to,
            links: Vec::new(),
            nodes: vec![from],
            base_one_way_ms: 0.0,
        });
    }
    if dist[to.index()].is_infinite() {
        return None;
    }
    let mut links = Vec::new();
    let mut nodes = vec![to];
    let mut cur = to;
    while cur != from {
        let (p, l) = prev[cur.index()].expect("prev chain intact");
        links.push(l);
        nodes.push(p);
        cur = p;
    }
    links.reverse();
    nodes.reverse();
    Some(PathInfo {
        from,
        to,
        links,
        nodes,
        base_one_way_ms: dist[to.index()],
    })
}

/// Dijkstra router with a per-source cache.
///
/// The measurement campaign resolves the same probe→DC pairs for every
/// round, so the cache turns routing into a one-time cost. The cache is
/// invalidated by generation: callers that mutate the topology must
/// create a new router (the borrow checker enforces this at compile time
/// since the router borrows the topology).
pub struct Router<'t> {
    topo: &'t Topology,
    cache: HashMap<(NodeId, NodeId), Option<PathInfo>>,
    disabled: HashSet<LinkId>,
}

impl<'t> Router<'t> {
    /// Creates a router over the given (frozen) topology.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            cache: HashMap::new(),
            disabled: HashSet::new(),
        }
    }

    /// Creates a router that treats the given links as failed (cable
    /// cuts, maintenance). Paths route around them or report
    /// disconnection — the failure-injection entry point.
    pub fn with_disabled(topo: &'t Topology, disabled: HashSet<LinkId>) -> Self {
        Self {
            topo,
            cache: HashMap::new(),
            disabled,
        }
    }

    /// Resolves the delay-shortest path from `from` to `to`, or `None`
    /// if the nodes are disconnected. Results are cached; a hit is a
    /// single hash lookup.
    pub fn path(&mut self, from: NodeId, to: NodeId) -> Option<&PathInfo> {
        let Self {
            topo,
            cache,
            disabled,
        } = self;
        cache
            .entry((from, to))
            .or_insert_with(|| {
                shortest_paths(topo, disabled, from, &[to])
                    .pop()
                    .expect("one target yields one result")
            })
            .as_ref()
    }

    /// Number of cached (source, target) entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// A frozen table of precomputed routes, shareable read-only across
/// threads.
///
/// [`RouteTable::build`] resolves all requested source→target routes up
/// front — one shortest-path-tree Dijkstra per source instead of one
/// search per pair — optionally fanning the sources out over worker
/// threads. The result is assembled in request order, so the table's
/// contents (and memory layout) are invariant to the build thread count.
///
/// Storage is a flat CSR-style arena: one concatenated `Vec<NodeId>`,
/// one concatenated `Vec<LinkId>` and an offset table, instead of
/// per-path heap `Vec`s. [`RouteTable::path`] hands out [`PathRef`]
/// slices borrowed straight from the arena — the probing hot path never
/// clones a route.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTable {
    /// Concatenated node sequences of all routes.
    nodes: Vec<NodeId>,
    /// Concatenated link sequences of all routes.
    links: Vec<LinkId>,
    /// Per-route one-way delay floors, ms.
    base: Vec<f64>,
    /// Link offsets: route `r` owns `links[offsets[r]..offsets[r + 1]]`
    /// and (since every route has one more node than links)
    /// `nodes[offsets[r] + r..offsets[r + 1] + r + 1]`.
    offsets: Vec<u32>,
    /// (source, target) → route index, connected pairs only.
    index: HashMap<(NodeId, NodeId), u32>,
}

impl RouteTable {
    /// Resolves every `(source, targets)` request and freezes the
    /// results. `threads` ≥ 2 shards the *sources* over that many worker
    /// threads (the per-source searches are independent); the assembled
    /// table is identical for every thread count. Disconnected pairs are
    /// simply absent from the table.
    pub fn build(topo: &Topology, wants: &[(NodeId, Vec<NodeId>)], threads: usize) -> Self {
        let no_disabled = HashSet::new();
        let threads = threads.clamp(1, wants.len().max(1));
        let resolved: Vec<Vec<Option<PathInfo>>> = if threads <= 1 {
            wants
                .iter()
                .map(|(src, targets)| shortest_paths(topo, &no_disabled, *src, targets))
                .collect()
        } else {
            let chunk = wants.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let no_disabled = &no_disabled;
                let handles: Vec<_> = wants
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(src, targets)| {
                                    shortest_paths(topo, no_disabled, *src, targets)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("route table build worker panicked"))
                    .collect()
            })
        };
        // Deterministic assembly: arena layout follows request order, so
        // the table is bit-identical regardless of build parallelism.
        let total_links: usize = resolved
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.links.len())
            .sum();
        let route_upper: usize = wants.iter().map(|(_, t)| t.len()).sum();
        let mut table = Self {
            nodes: Vec::with_capacity(total_links + route_upper),
            links: Vec::with_capacity(total_links),
            base: Vec::with_capacity(route_upper),
            offsets: Vec::with_capacity(route_upper + 1),
            index: HashMap::with_capacity(route_upper),
        };
        table.offsets.push(0);
        for ((source, targets), paths) in wants.iter().zip(resolved) {
            for (target, path) in targets.iter().zip(paths) {
                let Some(p) = path else { continue };
                use std::collections::hash_map::Entry;
                let Entry::Vacant(slot) = table.index.entry((*source, *target)) else {
                    continue; // duplicate request: first resolution wins
                };
                let route = u32::try_from(table.base.len()).expect("route table route limit");
                slot.insert(route);
                table.nodes.extend_from_slice(&p.nodes);
                table.links.extend_from_slice(&p.links);
                table.base.push(p.base_one_way_ms);
                let end = u32::try_from(table.links.len()).expect("route table arena limit");
                table.offsets.push(end);
            }
        }
        table
    }

    /// The precomputed route from `from` to `to`, or `None` if the pair
    /// was not requested at build time or is disconnected. A lookup is
    /// one hash probe; the returned [`PathRef`] borrows the arena.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<PathRef<'_>> {
        let route = *self.index.get(&(from, to))? as usize;
        let l0 = self.offsets[route] as usize;
        let l1 = self.offsets[route + 1] as usize;
        Some(PathRef {
            links: &self.links[l0..l1],
            nodes: &self.nodes[l0 + route..l1 + route + 1],
            base_one_way_ms: self.base[route],
        })
    }

    /// Whether the table holds a route for the pair.
    pub fn contains(&self, from: NodeId, to: NodeId) -> bool {
        self.index.contains_key(&(from, to))
    }

    /// Number of stored routes.
    pub fn route_count(&self) -> usize {
        self.base.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Total number of link entries in the arena (a size diagnostic for
    /// benches and capacity planning).
    pub fn arena_link_count(&self) -> usize {
        self.links.len()
    }
}

/// Where a prober gets its routes: a private incremental [`Router`]
/// (dynamic topologies, failure injection) or a shared read-only
/// [`RouteTable`] (frozen campaign hot path).
pub enum RouteSource<'t> {
    /// Per-prober cached Dijkstra; supports disabled links.
    Dynamic(Router<'t>),
    /// Borrowed precomputed table; zero per-lookup allocation.
    Shared(&'t RouteTable),
    /// Time-aware routing over a fault plan: one cached router per
    /// link-cut epoch (see [`crate::fault::FaultRouter`]).
    Faulty(crate::fault::FaultRouter<'t>),
}

impl RouteSource<'_> {
    /// Resolves a route, if one exists (and, for the shared table, was
    /// requested at build time). Fault-aware sources resolve at the start
    /// of time; use [`RouteSource::path_at`] for scheduled measurements.
    pub fn path(&mut self, from: NodeId, to: NodeId) -> Option<PathRef<'_>> {
        self.path_at(from, to, SimTime::ZERO)
    }

    /// Resolves the route in effect at simulation time `t`. The time only
    /// matters for the `Faulty` source, whose link-cut schedule swaps the
    /// topology between epochs; `Dynamic` and `Shared` routes are static.
    pub fn path_at(&mut self, from: NodeId, to: NodeId, t: SimTime) -> Option<PathRef<'_>> {
        match self {
            RouteSource::Dynamic(router) => router.path(from, to).map(PathInfo::as_path_ref),
            RouteSource::Shared(table) => table.path(from, to),
            RouteSource::Faulty(faulty) => {
                faulty.path_at(from, to, t).map(PathInfo::as_path_ref)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkClass, NodeKind};
    use shears_geo::GeoPoint;

    /// Line topology A—B—C—D at 1° longitude spacing on the equator.
    fn line() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, i as f64), "XX"))
            .collect();
        for w in ids.windows(2) {
            t.connect(w[0], w[1], LinkClass::TerrestrialBackbone, 1.0);
        }
        (t, ids)
    }

    #[test]
    fn direct_path_on_line() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let p = r.path(ids[0], ids[3]).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.nodes.first(), Some(&ids[0]));
        assert_eq!(p.nodes.last(), Some(&ids[3]));
    }

    #[test]
    fn path_to_self_is_empty() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let p = r.path(ids[1], ids[1]).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.base_one_way_ms, 0.0);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 1.0), "XX");
        let mut r = Router::new(&t);
        assert!(r.path(a, b).is_none());
    }

    #[test]
    fn prefers_faster_detour_over_slow_direct() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 10.0), "XX");
        let via = t.add_node(NodeKind::BackbonePop, GeoPoint::new(0.0, 5.0), "XX");
        // Direct link heavily inflated; two-hop detour nearly geodesic.
        t.connect(a, b, LinkClass::TerrestrialBackbone, 3.0);
        t.connect(a, via, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(via, b, LinkClass::TerrestrialBackbone, 1.0);
        let mut r = Router::new(&t);
        let p = r.path(a, b).unwrap();
        assert_eq!(p.hop_count(), 2, "should route via the middle node");
        assert_eq!(p.nodes, vec![a, via, b]);
    }

    #[test]
    fn intermediate_processing_counts_endpoints_do_not() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "XX");
        let m = t.add_node(NodeKind::IxpHub, GeoPoint::new(0.0, 1.0), "XX");
        let b = t.add_node(NodeKind::Datacenter, GeoPoint::new(0.0, 2.0), "XX");
        let l1 = t.connect(a, m, LinkClass::TerrestrialBackbone, 1.0);
        let l2 = t.connect(m, b, LinkClass::TerrestrialBackbone, 1.0);
        let mut r = Router::new(&t);
        let p = r.path(a, b).unwrap();
        let want = t.link(l1).base_delay_ms
            + NodeKind::IxpHub.processing_delay_ms()
            + t.link(l2).base_delay_ms;
        assert!((p.base_one_way_ms - want).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_return_same_path() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let first = r.path(ids[0], ids[3]).unwrap().clone();
        assert_eq!(r.cache_len(), 1);
        let second = r.path(ids[0], ids[3]).unwrap().clone();
        assert_eq!(first, second);
        assert_eq!(r.cache_len(), 1);
    }

    #[test]
    fn disabled_links_force_detours_or_disconnect() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 10.0), "XX");
        let via = t.add_node(NodeKind::BackbonePop, GeoPoint::new(5.0, 5.0), "XX");
        let direct = t.connect(a, b, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(a, via, LinkClass::TerrestrialBackbone, 1.0);
        let l2 = t.connect(via, b, LinkClass::TerrestrialBackbone, 1.0);
        // Healthy: direct link wins.
        let mut healthy = Router::new(&t);
        assert_eq!(healthy.path(a, b).unwrap().hop_count(), 1);
        // Direct cut: detour via the middle node.
        let mut cut = Router::with_disabled(&t, [direct].into_iter().collect());
        let detour = cut.path(a, b).unwrap().clone();
        assert_eq!(detour.hop_count(), 2);
        assert!(detour.base_one_way_ms > healthy.path(a, b).unwrap().base_one_way_ms);
        // Both cut: disconnected.
        let mut dead = Router::with_disabled(&t, [direct, l2].into_iter().collect());
        assert!(dead.path(a, b).is_none());
    }

    #[test]
    fn symmetric_delay_on_undirected_graph() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let fwd = r.path(ids[0], ids[3]).unwrap().base_one_way_ms;
        let rev = r.path(ids[3], ids[0]).unwrap().base_one_way_ms;
        assert!((fwd - rev).abs() < 1e-9);
    }

    #[test]
    fn table_matches_router_bit_for_bit() {
        let (t, ids) = line();
        // All-pairs table from both line ends plus the self pair.
        let wants = vec![
            (ids[0], vec![ids[1], ids[2], ids[3], ids[0]]),
            (ids[3], vec![ids[0], ids[2]]),
        ];
        let table = RouteTable::build(&t, &wants, 1);
        let mut router = Router::new(&t);
        for (src, targets) in &wants {
            for &to in targets {
                let via_table = table.path(*src, to).expect("pair resolved").to_path_info();
                let via_router = router.path(*src, to).expect("connected").clone();
                assert_eq!(via_table, via_router, "{src:?} -> {to:?}");
            }
        }
        assert_eq!(table.route_count(), 6);
        assert!(!table.is_empty());
        assert!(table.arena_link_count() >= 6);
    }

    #[test]
    fn table_build_is_thread_invariant() {
        let (t, ids) = line();
        let wants: Vec<(NodeId, Vec<NodeId>)> = ids
            .iter()
            .map(|&s| (s, ids.iter().copied().filter(|&x| x != s).collect()))
            .collect();
        let reference = RouteTable::build(&t, &wants, 1);
        for threads in [2usize, 3, 8] {
            assert_eq!(RouteTable::build(&t, &wants, threads), reference);
        }
    }

    #[test]
    fn table_self_route_is_empty_path() {
        let (t, ids) = line();
        let table = RouteTable::build(&t, &[(ids[2], vec![ids[2]])], 1);
        let p = table.path(ids[2], ids[2]).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.nodes, &[ids[2]]);
        assert_eq!(p.base_one_way_ms, 0.0);
        assert_eq!(p.source(), ids[2]);
        assert_eq!(p.dest(), ids[2]);
    }

    #[test]
    fn table_omits_disconnected_and_unrequested_pairs() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 1.0), "XX");
        let c = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 2.0), "XX");
        t.connect(a, b, LinkClass::TerrestrialBackbone, 1.0);
        // c is isolated; (b, a) is never requested.
        let table = RouteTable::build(&t, &[(a, vec![b, c])], 2);
        assert!(table.contains(a, b));
        assert!(table.path(a, c).is_none(), "disconnected pair");
        assert!(table.path(b, a).is_none(), "unrequested pair");
        assert_eq!(table.route_count(), 1);
    }

    #[test]
    fn multi_target_tree_matches_per_pair_runs() {
        // A diamond with a tie: two equal-cost two-hop routes a→d force
        // the node-id tie-break; the tree and per-pair searches must
        // agree on which one wins.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let up = t.add_node(NodeKind::BackbonePop, GeoPoint::new(1.0, 1.0), "XX");
        let down = t.add_node(NodeKind::BackbonePop, GeoPoint::new(-1.0, 1.0), "XX");
        let d = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 2.0), "XX");
        t.connect(a, up, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(a, down, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(up, d, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(down, d, LinkClass::TerrestrialBackbone, 1.0);
        let table = RouteTable::build(&t, &[(a, vec![up, down, d])], 1);
        let mut router = Router::new(&t);
        for to in [up, down, d] {
            assert_eq!(
                table.path(a, to).unwrap().to_path_info(),
                router.path(a, to).unwrap().clone(),
            );
        }
    }

    #[test]
    fn route_source_dynamic_and_shared_agree() {
        let (t, ids) = line();
        let table = RouteTable::build(&t, &[(ids[0], vec![ids[3]])], 1);
        let mut dynamic = RouteSource::Dynamic(Router::new(&t));
        let mut shared = RouteSource::Shared(&table);
        let a = dynamic.path(ids[0], ids[3]).unwrap().to_path_info();
        let b = shared.path(ids[0], ids[3]).unwrap().to_path_info();
        assert_eq!(a, b);
    }
}
