//! Shortest-path routing with a path cache.
//!
//! Routes are computed by Dijkstra over the link base delays plus
//! per-node processing delays — i.e. the *uncongested* floor. Real
//! interdomain routing is not delay-optimal, but the detours BGP
//! introduces are already encoded structurally in the topology (probes
//! can only exit a country through its PoPs and hubs), so delay-shortest
//! paths over that graph reproduce the inflation the paper observes
//! without simulating BGP itself.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::topology::{LinkId, NodeId, Topology};

/// A resolved route between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Endpoints, in order.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Links traversed, in order from `from` to `to`.
    pub links: Vec<LinkId>,
    /// Nodes visited, `from` first, `to` last (`links.len() + 1` entries).
    pub nodes: Vec<NodeId>,
    /// One-way delay floor in ms: link base delays plus processing at
    /// every intermediate node (endpoints excluded).
    pub base_one_way_ms: f64,
}

impl PathInfo {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// Dijkstra router with a per-source cache.
///
/// The measurement campaign resolves the same probe→DC pairs for every
/// round, so the cache turns routing into a one-time cost. The cache is
/// invalidated by generation: callers that mutate the topology must
/// create a new router (the borrow checker enforces this at compile time
/// since the router borrows the topology).
pub struct Router<'t> {
    topo: &'t Topology,
    cache: HashMap<(NodeId, NodeId), Option<PathInfo>>,
    disabled: HashSet<LinkId>,
}

#[derive(PartialEq)]
struct QueueItem {
    dist: f64,
    node: NodeId,
}

impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; tie-break on node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl<'t> Router<'t> {
    /// Creates a router over the given (frozen) topology.
    pub fn new(topo: &'t Topology) -> Self {
        Self {
            topo,
            cache: HashMap::new(),
            disabled: HashSet::new(),
        }
    }

    /// Creates a router that treats the given links as failed (cable
    /// cuts, maintenance). Paths route around them or report
    /// disconnection — the failure-injection entry point.
    pub fn with_disabled(topo: &'t Topology, disabled: HashSet<LinkId>) -> Self {
        Self {
            topo,
            cache: HashMap::new(),
            disabled,
        }
    }

    /// Resolves the delay-shortest path from `from` to `to`, or `None`
    /// if the nodes are disconnected. Results are cached.
    pub fn path(&mut self, from: NodeId, to: NodeId) -> Option<&PathInfo> {
        // Entry-or-insert keeps the borrow simple at the cost of a clone
        // on first miss; paths are short (≤ ~12 hops) so this is cheap.
        if !self.cache.contains_key(&(from, to)) {
            let computed = self.dijkstra(from, to);
            self.cache.insert((from, to), computed);
        }
        self.cache.get(&(from, to)).and_then(|p| p.as_ref())
    }

    /// Number of cached (source, target) entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn dijkstra(&self, from: NodeId, to: NodeId) -> Option<PathInfo> {
        let n = self.topo.node_count();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        if from == to {
            return Some(PathInfo {
                from,
                to,
                links: Vec::new(),
                nodes: vec![from],
                base_one_way_ms: 0.0,
            });
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(QueueItem {
            dist: 0.0,
            node: from,
        });
        while let Some(QueueItem { dist: d, node }) = heap.pop() {
            if d > dist[node.index()] {
                continue; // stale entry
            }
            if node == to {
                break;
            }
            // Stub endpoints (probes, datacenters, edge sites) never
            // forward third-party traffic: expanding them as transit
            // would let a multi-homed datacenter act as a wormhole
            // between its peering hubs.
            if node != from && self.topo.node(node).kind.is_stub() {
                continue;
            }
            // Processing cost applies when transiting a node, not at the
            // source; folded into the outgoing edge relaxation.
            let proc = if node == from {
                0.0
            } else {
                self.topo.node(node).kind.processing_delay_ms()
            };
            for (next, link) in self.topo.neighbors(node) {
                if self.disabled.contains(&link) {
                    continue;
                }
                let nd = d + proc + self.topo.link(link).base_delay_ms;
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    prev[next.index()] = Some((node, link));
                    heap.push(QueueItem {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        // Reconstruct.
        let mut links = Vec::new();
        let mut nodes = vec![to];
        let mut cur = to;
        while cur != from {
            let (p, l) = prev[cur.index()].expect("prev chain intact");
            links.push(l);
            nodes.push(p);
            cur = p;
        }
        links.reverse();
        nodes.reverse();
        Some(PathInfo {
            from,
            to,
            links,
            nodes,
            base_one_way_ms: dist[to.index()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkClass, NodeKind};
    use shears_geo::GeoPoint;

    /// Line topology A—B—C—D at 1° longitude spacing on the equator.
    fn line() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, i as f64), "XX"))
            .collect();
        for w in ids.windows(2) {
            t.connect(w[0], w[1], LinkClass::TerrestrialBackbone, 1.0);
        }
        (t, ids)
    }

    #[test]
    fn direct_path_on_line() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let p = r.path(ids[0], ids[3]).unwrap();
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.nodes.first(), Some(&ids[0]));
        assert_eq!(p.nodes.last(), Some(&ids[3]));
    }

    #[test]
    fn path_to_self_is_empty() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let p = r.path(ids[1], ids[1]).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.base_one_way_ms, 0.0);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 1.0), "XX");
        let mut r = Router::new(&t);
        assert!(r.path(a, b).is_none());
    }

    #[test]
    fn prefers_faster_detour_over_slow_direct() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 10.0), "XX");
        let via = t.add_node(NodeKind::BackbonePop, GeoPoint::new(0.0, 5.0), "XX");
        // Direct link heavily inflated; two-hop detour nearly geodesic.
        t.connect(a, b, LinkClass::TerrestrialBackbone, 3.0);
        t.connect(a, via, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(via, b, LinkClass::TerrestrialBackbone, 1.0);
        let mut r = Router::new(&t);
        let p = r.path(a, b).unwrap();
        assert_eq!(p.hop_count(), 2, "should route via the middle node");
        assert_eq!(p.nodes, vec![a, via, b]);
    }

    #[test]
    fn intermediate_processing_counts_endpoints_do_not() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::ProbeHost, GeoPoint::new(0.0, 0.0), "XX");
        let m = t.add_node(NodeKind::IxpHub, GeoPoint::new(0.0, 1.0), "XX");
        let b = t.add_node(NodeKind::Datacenter, GeoPoint::new(0.0, 2.0), "XX");
        let l1 = t.connect(a, m, LinkClass::TerrestrialBackbone, 1.0);
        let l2 = t.connect(m, b, LinkClass::TerrestrialBackbone, 1.0);
        let mut r = Router::new(&t);
        let p = r.path(a, b).unwrap();
        let want = t.link(l1).base_delay_ms
            + NodeKind::IxpHub.processing_delay_ms()
            + t.link(l2).base_delay_ms;
        assert!((p.base_one_way_ms - want).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_return_same_path() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let first = r.path(ids[0], ids[3]).unwrap().clone();
        assert_eq!(r.cache_len(), 1);
        let second = r.path(ids[0], ids[3]).unwrap().clone();
        assert_eq!(first, second);
        assert_eq!(r.cache_len(), 1);
    }

    #[test]
    fn disabled_links_force_detours_or_disconnect() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 0.0), "XX");
        let b = t.add_node(NodeKind::MetroPop, GeoPoint::new(0.0, 10.0), "XX");
        let via = t.add_node(NodeKind::BackbonePop, GeoPoint::new(5.0, 5.0), "XX");
        let direct = t.connect(a, b, LinkClass::TerrestrialBackbone, 1.0);
        t.connect(a, via, LinkClass::TerrestrialBackbone, 1.0);
        let l2 = t.connect(via, b, LinkClass::TerrestrialBackbone, 1.0);
        // Healthy: direct link wins.
        let mut healthy = Router::new(&t);
        assert_eq!(healthy.path(a, b).unwrap().hop_count(), 1);
        // Direct cut: detour via the middle node.
        let mut cut = Router::with_disabled(&t, [direct].into_iter().collect());
        let detour = cut.path(a, b).unwrap().clone();
        assert_eq!(detour.hop_count(), 2);
        assert!(detour.base_one_way_ms > healthy.path(a, b).unwrap().base_one_way_ms);
        // Both cut: disconnected.
        let mut dead = Router::with_disabled(&t, [direct, l2].into_iter().collect());
        assert!(dead.path(a, b).is_none());
    }

    #[test]
    fn symmetric_delay_on_undirected_graph() {
        let (t, ids) = line();
        let mut r = Router::new(&t);
        let fwd = r.path(ids[0], ids[3]).unwrap().base_one_way_ms;
        let rev = r.path(ids[3], ids[0]).unwrap().base_one_way_ms;
        assert!((fwd - rev).abs() < 1e-9);
    }
}
