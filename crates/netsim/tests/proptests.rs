//! Property-based tests for the network simulator's invariants.

use proptest::prelude::*;
use shears_geo::GeoPoint;
use shears_netsim::stochastic::SimRng;
use shears_netsim::wire::{internet_checksum, EchoPacket, WireError};
use shears_netsim::{EventQueue, LinkClass, NodeKind, Router, SimTime, Topology};

proptest! {
    // ---- event queue ------------------------------------------------

    #[test]
    fn events_always_pop_in_time_then_fifo_order(
        times in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt);
                if ev.at == lt {
                    prop_assert!(ev.payload > li, "FIFO violated among ties");
                }
            }
            last = Some((ev.at, ev.payload));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    #[test]
    fn run_until_never_delivers_late_events(
        times in proptest::collection::vec(0u64..1000, 1..100),
        deadline in 0u64..1000,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let deadline_t = SimTime::from_nanos(deadline);
        let mut seen = Vec::new();
        q.run_until(deadline_t, |_, ev| seen.push(ev.at));
        prop_assert!(seen.iter().all(|&t| t <= deadline_t));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(seen.len(), expected);
    }

    // ---- time --------------------------------------------------------

    #[test]
    fn local_hour_is_always_in_range(
        ns in 0u64..u64::MAX / 2,
        lon in -180.0f64..180.0,
    ) {
        let h = SimTime::from_nanos(ns).local_hour_of_day(lon);
        prop_assert!((0.0..24.0).contains(&h), "{h}");
    }

    // ---- wire formats --------------------------------------------------

    #[test]
    fn echo_packets_round_trip(
        ident in any::<u16>(),
        seq in any::<u16>(),
        ttl in 1u8..=255,
        is_request in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
    ) {
        let pkt = EchoPacket { is_request, src, dst, ttl, ident, seq, payload };
        let encoded = pkt.encode();
        let parsed = EchoPacket::parse(&encoded).expect("own encoding parses");
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn corrupting_any_byte_is_detected_or_changes_the_packet(
        ident in any::<u16>(),
        seq in any::<u16>(),
        flip_at in 0usize..76,
        flip_bits in 1u8..=255,
    ) {
        let pkt = EchoPacket::atlas_default(true, ident, seq);
        let mut bytes = pkt.encode().to_vec();
        bytes[flip_at] ^= flip_bits;
        match EchoPacket::parse(&bytes) {
            // Either the checksum/structure catches it…
            Err(
                WireError::BadChecksum
                | WireError::BadHeader
                | WireError::Truncated
                | WireError::WrongProtocol,
            ) => {}
            // …or a flip the checksum algebra cancels slipped through;
            // the Internet checksum is weak against some multi-bit
            // patterns, but then the parsed packet must differ from the
            // original (the flip is visible, never silent).
            Ok(parsed) => {
                prop_assert_ne!(parsed, pkt);
            }
        }
    }

    #[test]
    fn checksum_verifies_to_zero_over_checksummed_block(
        data in proptest::collection::vec(any::<u8>(), 2..256),
    ) {
        // Append the checksum to the data; the checksum of the whole
        // must be zero (the receiver-side verification identity).
        let mut block = data.clone();
        // Pad to even length first (the identity holds for whole words).
        if block.len() % 2 == 1 {
            block.push(0);
        }
        let csum = internet_checksum(&block);
        block.extend_from_slice(&csum.to_be_bytes());
        prop_assert_eq!(internet_checksum(&block), 0);
    }

    // ---- topology & routing -----------------------------------------

    #[test]
    fn random_line_topology_routes_end_to_end(
        lats in proptest::collection::vec(-60.0f64..60.0, 2..30),
        inflation in 1.0f64..2.5,
    ) {
        let mut topo = Topology::new();
        let nodes: Vec<_> = lats
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                topo.add_node(NodeKind::MetroPop, GeoPoint::new(lat, i as f64), "XX")
            })
            .collect();
        for w in nodes.windows(2) {
            topo.connect(w[0], w[1], LinkClass::TerrestrialBackbone, inflation);
        }
        let mut router = Router::new(&topo);
        let path = router.path(nodes[0], *nodes.last().unwrap()).expect("line is connected");
        // The path visits every node exactly once, in order.
        prop_assert_eq!(path.nodes.len(), nodes.len());
        // Its delay equals the sum of link delays plus intermediate
        // processing.
        let link_sum: f64 = path
            .links
            .iter()
            .map(|&l| topo.link(l).base_delay_ms)
            .sum();
        let proc: f64 = path.nodes[1..path.nodes.len() - 1]
            .iter()
            .map(|&n| topo.node(n).kind.processing_delay_ms())
            .sum();
        prop_assert!((path.base_one_way_ms - (link_sum + proc)).abs() < 1e-9);
    }

    #[test]
    fn routing_is_symmetric_on_random_graphs(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 5..40),
    ) {
        let mut topo = Topology::new();
        let nodes: Vec<_> = (0..12)
            .map(|i| {
                topo.add_node(
                    NodeKind::BackbonePop,
                    GeoPoint::new(f64::from(i) * 4.0 - 22.0, f64::from(i) * 7.0),
                    "XX",
                )
            })
            .collect();
        for &(a, b) in &edges {
            if a != b && topo.link_between(nodes[a], nodes[b]).is_none() {
                topo.connect(nodes[a], nodes[b], LinkClass::TerrestrialBackbone, 1.2);
            }
        }
        let mut router = Router::new(&topo);
        for &(a, b) in edges.iter().take(10) {
            let fwd = router.path(nodes[a], nodes[b]).map(|p| p.base_one_way_ms);
            let rev = router.path(nodes[b], nodes[a]).map(|p| p.base_one_way_ms);
            match (fwd, rev) {
                (Some(f), Some(r)) => prop_assert!((f - r).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "asymmetric reachability"),
            }
        }
    }

    // ---- stochastic ----------------------------------------------------

    #[test]
    fn keyed_forks_are_reproducible_and_distinct(
        seed in any::<u64>(),
        stream in any::<u64>(),
        index in any::<u64>(),
    ) {
        let parent = SimRng::new(seed);
        let mut a = parent.fork_keyed(stream, index);
        let mut b = parent.fork_keyed(stream, index);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        let mut c = parent.fork_keyed(stream, index.wrapping_add(1));
        // Distinct keys virtually never collide on the first draw.
        prop_assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn lognormal_is_positive_and_scales_with_median(
        median in 0.1f64..1000.0,
        sigma in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let v = rng.lognormal(median, sigma);
            prop_assert!(v > 0.0);
            prop_assert!(v.is_finite());
        }
    }
}
