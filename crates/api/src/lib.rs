//! # shears-api
//!
//! A RIPE-Atlas-style REST API over the measurement platform — the
//! "HTTP API" substitution the reproduction plan calls for. The real
//! study drove RIPE Atlas through its HTTP/JSON API; this crate serves
//! the same interaction shape against the simulated platform:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /api/v2/probes?country=DE&tag=wired&limit=50` | probe inventory |
//! | `GET /api/v2/probes/{id}` | one probe |
//! | `GET /api/v2/regions` | the cloud catalogue |
//! | `GET /api/v2/measurements` | all measurements, id-ascending |
//! | `POST /api/v2/measurements` | create + run a ping measurement |
//! | `POST /api/v2/measurements/resume` | reload persisted measurements after a restart |
//! | `GET /api/v2/measurements/{id}` | measurement status |
//! | `GET /api/v2/measurements/{id}/results` | its RTT samples |
//! | `DELETE /api/v2/measurements/{id}` | forget a measurement |
//! | `POST /api/v2/traceroutes` | hop-by-hop paths from selected probes |
//! | `GET /api/v2/credits` | remaining credit balance |
//! | `GET /api/v2/metrics` | server + work-queue counters as JSON |
//! | `POST /api/v2/work/{register,poll,heartbeat,frame}` | distributed-execution work protocol (CRC-framed binary, see `shears-dist`) |
//! | raw `SHRSWRK1` stream | the same work protocol pipelined over one long-lived connection ([`transport`]) — a connection that opens with the preamble upgrades out of HTTP parsing into length-prefixed framing |
//!
//! The stack is deliberately std-only: an HTTP/1.1 server ([`server`])
//! with content-length framing and keep-alive on
//! `std::net::TcpListener`. The default engine is a readiness-driven
//! event loop (the `reactor` module behind
//! [`server::ServerMode::Reactor`]): nonblocking sockets multiplexed
//! over a few reactor threads, each connection an explicit state
//! machine, handlers fanned out to a bounded compute pool and 503 shed
//! under overload — so idle keep-alive sessions cost a slab slot, not
//! a thread, and tens of thousands can stay connected. The earlier
//! blocking accept-loop → worker-pool engine survives as
//! [`server::ServerMode::WorkerPool`] for architecture-independence
//! tests. A matching blocking client rides along ([`client`], with a
//! keep-alive [`client::ApiSession`] for high-throughput use). No
//! async runtime anywhere — readiness is emulated with nonblocking
//! sweeps + parked reactors, which is all this workload needs.
//!
//! The read path is built to scale with cores: service state is
//! sharded per measurement (no global lock on any GET) and stats
//! responses are cached per measurement, keyed by a results epoch —
//! see [`service::AtlasService`] and `DESIGN.md` §"API serving data
//! path".
//!
//! ```no_run
//! use shears_api::{server::ApiServer, client::ApiClient, service::AtlasService};
//! use shears_atlas::{Platform, PlatformConfig};
//!
//! let platform = Platform::build(&PlatformConfig::quick(1));
//! let service = AtlasService::new(platform);
//! let server = ApiServer::spawn("127.0.0.1:0", service).unwrap();
//! let client = ApiClient::new(server.local_addr());
//! let probes = client.list_probes(Some("DE"), None, 10).unwrap();
//! println!("{} German probes", probes.len());
//! server.shutdown().unwrap();
//! ```
//!
//! Spawning the service via [`AtlasService::with_durability`] persists
//! measurements and the credit ledger to a directory (binary, CRC'd —
//! the campaign journal's wire format), `POST
//! /api/v2/measurements/resume` reloads them after a restart, and
//! [`server::ApiServer::shutdown`] flushes everything on the way out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dto;
pub mod http;
mod reactor;
pub mod server;
pub mod service;
pub mod transport;
pub mod work;

pub use client::ApiClient;
pub use server::ApiServer;
pub use service::AtlasService;
pub use transport::{StreamDecoder, StreamError, WorkStreamClient, STREAM_PREAMBLE};
pub use work::{WorkQueue, WorkSpec};
